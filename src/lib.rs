#![warn(missing_docs)]
//! # InsightNotes
//!
//! A from-scratch Rust implementation of **InsightNotes**, the
//! summary-based annotation management engine over relational databases
//! (Xiao & Eltabakh, SIGMOD 2014; demo: *"Even Metadata is Getting Big:
//! Annotation Summarization using InsightNotes"*, SIGMOD 2015).
//!
//! Scientific databases accumulate annotations — observations, comments,
//! provenance notes, attached articles — at 30x–250x the volume of the
//! base data. InsightNotes makes the unit of annotation processing not
//! the raw annotation but a compact, typed **summary object** maintained
//! per tuple (classifier label counts, similarity clusters with elected
//! representatives, document snippets). Summary objects travel through
//! query pipelines under extended operator semantics, and an interactive
//! **zoom-in** operation recovers the raw annotations behind any summary
//! component, served by a disk cache with the RCO replacement policy.
//!
//! ## Quickstart
//!
//! ```
//! use insightnotes::Database;
//!
//! let mut db = Database::new();
//! db.execute_sql(
//!     "CREATE TABLE birds (name TEXT, weight FLOAT);
//!      INSERT INTO birds VALUES ('Swan Goose', 3.2), ('Mallard', 1.1);
//!      CREATE SUMMARY INSTANCE ClassBird1 TYPE CLASSIFIER
//!        LABELS ('Behavior', 'Other')
//!        TRAIN ('Behavior': 'eating stonewort diving', 'Other': 'see reference');
//!      LINK SUMMARY ClassBird1 TO birds;
//!      ADD ANNOTATION 'found eating stonewort' ON birds WHERE name = 'Swan Goose';",
//! )
//! .unwrap();
//!
//! let result = db.query("SELECT name FROM birds WHERE weight > 2").unwrap();
//! println!("{}", db.render_result(&result));
//! // → Swan Goose with `ClassBird1 [(Behavior, 1), (Other, 0)]`
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`Database`] | `insightnotes-engine` | the facade: SQL in, annotated results out |
//! | [`engine`] | `insightnotes-engine` | planner, summary-aware operators, zoom-in, RCO cache, raw baseline |
//! | [`summaries`] | `insightnotes-summaries` | summary types / instances / objects and their algebra |
//! | [`annotations`] | `insightnotes-annotations` | the raw-annotation store |
//! | [`storage`] | `insightnotes-storage` | relational substrate |
//! | [`sql`] | `insightnotes-sql` | SQL + InsightNotes-extension parser |
//! | [`text`] | `insightnotes-text` | Naive Bayes, online clustering, extractive summarization |
//! | [`workload`] | `insightnotes-workload` | seeded AKN-style synthetic workloads |
//! | [`common`] | `insightnotes-common` | ids, errors, id-sets, binary codec |

pub use insightnotes_annotations as annotations;
pub use insightnotes_common as common;
pub use insightnotes_engine as engine;
pub use insightnotes_sql as sql;
pub use insightnotes_storage as storage;
pub use insightnotes_summaries as summaries;
pub use insightnotes_text as text;
pub use insightnotes_workload as workload;

pub use insightnotes_common::{Error, Result};
pub use insightnotes_engine::{Database, DbConfig, ExecOutcome, QueryResult, ZoomInResult};
pub use insightnotes_workload::{seed_birds_database, WorkloadConfig};
