#![warn(missing_docs)]
//! # insightnotes-client
//!
//! Blocking TCP client for `insightd`, speaking the
//! [`insightnotes_common::wire`] frame protocol. One [`Client`] is one
//! server session: requests and responses alternate on the connection
//! (the protocol has no pipelining), so methods take `&mut self`.
//!
//! Server-side failures arrive as structured error frames and are
//! re-raised as the same [`enum@Error`] class the engine produced — a
//! catalog error on the server is a catalog error here.
//!
//! ```no_run
//! use insightnotes_client::Client;
//!
//! let mut c = Client::connect("127.0.0.1:7433")?;
//! c.execute("CREATE TABLE birds (id INT, name TEXT)")?;
//! c.execute("INSERT INTO birds VALUES (1, 'Swan Goose')")?;
//! let rows = c.query("SELECT name FROM birds")?;
//! assert_eq!(rows.rows.len(), 1);
//! # Ok::<(), insightnotes_common::Error>(())
//! ```

use insightnotes_common::wire::{
    read_frame, write_frame, BatchItem, Request, Response, RowsPayload, ShardPosition, ZoomPayload,
};
use insightnotes_common::{Error, Result};
use insightnotes_sql::{parse_one, Statement};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One client session on an `insightd` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Connects with a connect timeout, then applies `timeout` to every
    /// request round-trip as both read and write timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// Sends one request and reads one response frame. Error *frames*
    /// come back as `Ok(Response::Error(..))`; transport failures are
    /// `Err`. Most callers want the typed helpers instead.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, req)?;
        read_frame::<Response>(&mut self.stream)?.ok_or_else(|| {
            Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))
        })
    }

    fn expect(&mut self, req: &Request) -> Result<Response> {
        match self.request(req)? {
            Response::Error(e) => Err(e.into_error()),
            other => Ok(other),
        }
    }

    /// Liveness probe; returns the server's protocol version and how
    /// many requests it has served.
    pub fn ping(&mut self) -> Result<(u16, u64)> {
        match self.expect(&Request::Ping)? {
            Response::Pong { version, served } => Ok((version, served)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Runs a single SELECT and returns the structured result set.
    pub fn query(&mut self, sql: &str) -> Result<RowsPayload> {
        let req = Request::Query { sql: sql.into() };
        match self.expect(&req)? {
            Response::Rows(rows) => Ok(rows),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Runs one or more `;`-separated statements of any kind; returns
    /// one rendered outcome per statement. On a WAL-enabled server the
    /// returned ack is a durability promise: the statements were logged
    /// and fsynced before the reply was released.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<String>> {
        let req = Request::Execute { sql: sql.into() };
        match self.expect(&req)? {
            Response::Ack { messages } => Ok(messages),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Runs a single `ADD ANNOTATION` statement.
    pub fn annotate(&mut self, sql: &str) -> Result<String> {
        let req = Request::Annotate { sql: sql.into() };
        match self.expect(&req)? {
            Response::Ack { mut messages } => Ok(messages.pop().unwrap_or_default()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Ships a batch of `ADD ANNOTATION` statements in one
    /// `AnnotateBatch` frame — one round-trip and one server-side group
    /// commit (and, on a WAL-enabled server, one group fsync, after
    /// which each `Ok` ack guarantees the annotation survives a crash)
    /// for the whole batch. Returns one result per statement, in
    /// order; per-item failures (bad statement, no matching rows) come
    /// back as `Err` items without failing their neighbors.
    pub fn annotate_batch(&mut self, statements: Vec<String>) -> Result<Vec<Result<String>>> {
        let req = Request::AnnotateBatch { statements };
        match self.expect(&req)? {
            Response::BatchAck { results } => {
                Ok(results.into_iter().map(BatchItem::into_result).collect())
            }
            other => Err(unexpected("BatchAck", &other)),
        }
    }

    /// Runs a single `ZOOMIN` statement.
    pub fn zoom_in(&mut self, sql: &str) -> Result<ZoomPayload> {
        let req = Request::ZoomIn { sql: sql.into() };
        match self.expect(&req)? {
            Response::Zoomed(z) => Ok(z),
            other => Err(unexpected("Zoomed", &other)),
        }
    }

    /// Asks the server to shut down gracefully (it snapshots and exits
    /// once the request is acknowledged).
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.expect(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// The server's per-shard replication position vector: on a primary
    /// the committed (fsynced) WAL position of each shard, on a replica
    /// the primary position it has applied locally.
    pub fn replica_state(&mut self) -> Result<Vec<ShardPosition>> {
        match self.expect(&Request::ReplicaState)? {
            Response::ReplicaState { shards } => Ok(shards),
            other => Err(unexpected("ReplicaState", &other)),
        }
    }

    /// Read-your-writes handshake: blocks until this server's applied
    /// position covers `target` on every shard (an epoch *beyond* the
    /// target's also counts — the state it tails includes the target's
    /// history), or `timeout` expires.
    ///
    /// The canonical flow: write on the primary, capture its
    /// [`Client::replica_state`], then `wait_for_offset` on the replica
    /// before reading there.
    pub fn wait_for_offset(&mut self, target: &[ShardPosition], timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let applied = self.replica_state()?;
            if applied.len() == target.len() && applied.iter().zip(target).all(|(a, t)| a >= t) {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(Error::Execution(format!(
                    "replica did not reach the target position within {timeout:?} \
                     (applied {applied:?}, wanted {target:?})"
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Routes arbitrary SQL text to its most specific frame kind — a
    /// lone SELECT goes out as `Query`, `ADD ANNOTATION` as `Annotate`,
    /// `ZOOMIN` as `ZoomIn`, everything else (including multi-statement
    /// scripts) as `Execute` — and returns the raw response. This is
    /// what `insight-cli` uses per input line.
    pub fn send_sql(&mut self, sql: &str) -> Result<Response> {
        let req = match parse_one(sql) {
            Ok(Statement::Select(_)) => Request::Query { sql: sql.into() },
            Ok(Statement::AddAnnotation { .. }) => Request::Annotate { sql: sql.into() },
            Ok(Statement::ZoomIn(_)) => Request::ZoomIn { sql: sql.into() },
            // Multi-statement scripts fail parse_one; let the server
            // parse (and report errors for) the full text.
            _ => Request::Execute { sql: sql.into() },
        };
        self.request(&req)
    }
}

fn unexpected(wanted: &str, got: &Response) -> Error {
    Error::Execution(format!(
        "protocol violation: expected a {wanted} frame, got {got:?}"
    ))
}
