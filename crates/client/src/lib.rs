#![warn(missing_docs)]
//! # insightnotes-client
//!
//! Blocking TCP client for `insightd`, speaking the
//! [`insightnotes_common::wire`] frame protocol. One [`Client`] is one
//! server session: requests and responses alternate on the connection
//! (serial v1 framing), so methods take `&mut self`. For many requests
//! in flight on one connection, use [`PipelinedClient`] (v2 framing
//! with sequence ids).
//!
//! Server-side failures arrive as structured error frames and are
//! re-raised as the same [`enum@Error`] class the engine produced — a
//! catalog error on the server is a catalog error here.
//!
//! ```no_run
//! use insightnotes_client::Client;
//!
//! let mut c = Client::connect("127.0.0.1:7433")?;
//! c.execute("CREATE TABLE birds (id INT, name TEXT)")?;
//! c.execute("INSERT INTO birds VALUES (1, 'Swan Goose')")?;
//! let rows = c.query("SELECT name FROM birds")?;
//! assert_eq!(rows.rows.len(), 1);
//! # Ok::<(), insightnotes_common::Error>(())
//! ```

use insightnotes_common::wire::{
    read_frame, write_frame, BatchItem, HistoryPayload, Request, Response, RowsPayload,
    ShardPosition, ZoomPayload,
};
use insightnotes_common::{Error, Result};
use insightnotes_sql::{parse_one, Statement};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One client session on an `insightd` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server address.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Connects with a connect timeout, then applies `timeout` to every
    /// request round-trip as both read and write timeout.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// Sends one request and reads one response frame. Error *frames*
    /// come back as `Ok(Response::Error(..))`; transport failures are
    /// `Err`. Most callers want the typed helpers instead.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, req)?;
        read_frame::<Response>(&mut self.stream)?.ok_or_else(|| {
            Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))
        })
    }

    fn expect(&mut self, req: &Request) -> Result<Response> {
        match self.request(req)? {
            Response::Error(e) => Err(e.into_error()),
            other => Ok(other),
        }
    }

    /// Liveness probe; returns the server's protocol version and how
    /// many requests it has served.
    pub fn ping(&mut self) -> Result<(u16, u64)> {
        match self.expect(&Request::Ping)? {
            Response::Pong { version, served } => Ok((version, served)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Runs a single SELECT and returns the structured result set.
    pub fn query(&mut self, sql: &str) -> Result<RowsPayload> {
        let req = Request::Query { sql: sql.into() };
        match self.expect(&req)? {
            Response::Rows(rows) => Ok(rows),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Runs one or more `;`-separated statements of any kind; returns
    /// one rendered outcome per statement. On a WAL-enabled server the
    /// returned ack is a durability promise: the statements were logged
    /// and fsynced before the reply was released.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<String>> {
        let req = Request::Execute { sql: sql.into() };
        match self.expect(&req)? {
            Response::Ack { messages } => Ok(messages),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Runs a single `ADD ANNOTATION` statement.
    pub fn annotate(&mut self, sql: &str) -> Result<String> {
        let req = Request::Annotate { sql: sql.into() };
        match self.expect(&req)? {
            Response::Ack { mut messages } => Ok(messages.pop().unwrap_or_default()),
            other => Err(unexpected("Ack", &other)),
        }
    }

    /// Ships a batch of `ADD ANNOTATION` statements in one
    /// `AnnotateBatch` frame — one round-trip and one server-side group
    /// commit (and, on a WAL-enabled server, one group fsync, after
    /// which each `Ok` ack guarantees the annotation survives a crash)
    /// for the whole batch. Returns one result per statement, in
    /// order; per-item failures (bad statement, no matching rows) come
    /// back as `Err` items without failing their neighbors.
    pub fn annotate_batch(&mut self, statements: Vec<String>) -> Result<Vec<Result<String>>> {
        let req = Request::AnnotateBatch { statements };
        match self.expect(&req)? {
            Response::BatchAck { results } => {
                Ok(results.into_iter().map(BatchItem::into_result).collect())
            }
            other => Err(unexpected("BatchAck", &other)),
        }
    }

    /// Runs a single `ZOOMIN` statement.
    pub fn zoom_in(&mut self, sql: &str) -> Result<ZoomPayload> {
        let req = Request::ZoomIn { sql: sql.into() };
        match self.expect(&req)? {
            Response::Zoomed(z) => Ok(z),
            other => Err(unexpected("Zoomed", &other)),
        }
    }

    /// Fetches an annotation's lifecycle timeline (`HISTORY <id>`):
    /// creation, flags, and its retraction or correction if any. Serves
    /// from replicas too — the timeline is read-only state.
    pub fn history(&mut self, annotation: u64) -> Result<HistoryPayload> {
        match self.expect(&Request::History { annotation })? {
            Response::History(h) => Ok(h),
            other => Err(unexpected("History", &other)),
        }
    }

    /// Asks the server to shut down gracefully (it snapshots and exits
    /// once the request is acknowledged).
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.expect(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// The server's per-shard replication position vector: on a primary
    /// the committed (fsynced) WAL position of each shard, on a replica
    /// the primary position it has applied locally.
    pub fn replica_state(&mut self) -> Result<Vec<ShardPosition>> {
        match self.expect(&Request::ReplicaState)? {
            Response::ReplicaState { shards } => Ok(shards),
            other => Err(unexpected("ReplicaState", &other)),
        }
    }

    /// Read-your-writes handshake: blocks until this server's applied
    /// position covers `target` on every shard (an epoch *beyond* the
    /// target's also counts — the state it tails includes the target's
    /// history), or `timeout` expires.
    ///
    /// The canonical flow: write on the primary, capture its
    /// [`Client::replica_state`], then `wait_for_offset` on the replica
    /// before reading there.
    pub fn wait_for_offset(&mut self, target: &[ShardPosition], timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            let applied = self.replica_state()?;
            if applied.len() == target.len() && applied.iter().zip(target).all(|(a, t)| a >= t) {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(Error::Execution(format!(
                    "replica did not reach the target position within {timeout:?} \
                     (applied {applied:?}, wanted {target:?})"
                )));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Routes arbitrary SQL text to its most specific frame kind — a
    /// lone SELECT goes out as `Query`, `ADD ANNOTATION` as `Annotate`,
    /// `ZOOMIN` as `ZoomIn`, `HISTORY` as `History`, everything else
    /// (including multi-statement
    /// scripts) as `Execute` — and returns the raw response. This is
    /// what `insight-cli` uses per input line.
    pub fn send_sql(&mut self, sql: &str) -> Result<Response> {
        let req = match parse_one(sql) {
            Ok(Statement::Select(_)) => Request::Query { sql: sql.into() },
            Ok(Statement::AddAnnotation { .. }) => Request::Annotate { sql: sql.into() },
            Ok(Statement::ZoomIn(_)) => Request::ZoomIn { sql: sql.into() },
            Ok(Statement::HistoryAnnotation { id }) => Request::History { annotation: id },
            // Multi-statement scripts fail parse_one; let the server
            // parse (and report errors for) the full text.
            _ => Request::Execute { sql: sql.into() },
        };
        self.request(&req)
    }
}

fn unexpected(wanted: &str, got: &Response) -> Error {
    Error::Execution(format!(
        "protocol violation: expected a {wanted} frame, got {got:?}"
    ))
}

/// A pipelined (wire protocol v2) session: many requests in flight on
/// one connection, responses matched to requests by sequence id.
///
/// [`PipelinedClient::submit`] writes a request and returns immediately
/// with its sequence id; [`PipelinedClient::recv`] blocks for one
/// specific response, stashing any other responses that arrive first
/// (the server completes reads out of order). Keeping a window of
/// requests in flight amortizes network latency and lets the server
/// group-commit writes from the whole window in one fsync:
///
/// ```no_run
/// use insightnotes_client::PipelinedClient;
/// use insightnotes_common::wire::Request;
///
/// let mut c = PipelinedClient::connect("127.0.0.1:7433")?;
/// let seqs: Vec<u64> = (0..16)
///     .map(|i| {
///         c.submit(&Request::Annotate {
///             sql: format!("ADD ANNOTATION 'note {i}' ON birds (id = {i})"),
///         })
///     })
///     .collect::<Result<_, _>>()?;
/// for seq in seqs {
///     c.recv(seq)?; // acks arrive in commit order
/// }
/// # Ok::<(), insightnotes_common::Error>(())
/// ```
#[derive(Debug)]
pub struct PipelinedClient {
    stream: TcpStream,
    /// Bytes read off the socket but not yet parsed into frames, with a
    /// parse cursor. The server releases group-committed responses in
    /// bursts, and one kernel read here hands back many frames. (A
    /// `BufReader` over a [`TcpStream::try_clone`] would do the same
    /// job but costs a second fd per connection — fatal for 10k-session
    /// fleets living under one fd limit.)
    inbuf: Vec<u8>,
    inpos: usize,
    /// Encoded-but-unsent request frames. Submits are corked here and
    /// flushed in one write before any blocking read (or when the
    /// buffer passes [`FLUSH_BYTES`]), so a 16-deep window costs one
    /// syscall and one server wakeup, not sixteen.
    out: Vec<u8>,
    next_seq: u64,
    outstanding: std::collections::HashSet<u64>,
    /// Responses read while waiting for a different sequence id.
    ready: std::collections::HashMap<u64, Response>,
}

/// Corked submits are force-flushed past this many buffered bytes.
const FLUSH_BYTES: usize = 64 * 1024;

impl PipelinedClient {
    /// Connects and verifies the server speaks protocol v2 (one v1
    /// `Ping` round-trip — older servers answer with their version and
    /// get rejected here rather than mis-framing later traffic).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::handshake(stream)
    }

    /// [`PipelinedClient::connect`] with a connect timeout; `timeout`
    /// then also bounds each blocking read/write on the session.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Self::handshake(stream)
    }

    fn handshake(mut stream: TcpStream) -> Result<Self> {
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &Request::Ping)?;
        let pong = read_frame::<Response>(&mut stream)?.ok_or_else(|| {
            Error::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection during the version handshake",
            ))
        })?;
        match pong {
            Response::Pong { version, .. } if version >= 2 => Ok(Self {
                stream,
                inbuf: Vec::new(),
                inpos: 0,
                out: Vec::new(),
                next_seq: 0,
                outstanding: std::collections::HashSet::new(),
                ready: std::collections::HashMap::new(),
            }),
            Response::Pong { version, .. } => Err(Error::Execution(format!(
                "server speaks protocol v{version}; pipelining needs v2"
            ))),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Queues one request without waiting for its response; returns the
    /// sequence id to [`PipelinedClient::recv`] on. The frame is corked
    /// in a local buffer and hits the socket on the next blocking read
    /// (or [`PipelinedClient::flush`], or once enough bytes pile up) —
    /// so a socket-level write error may surface from that later call
    /// rather than from the `submit` that queued the frame.
    pub fn submit(&mut self, req: &Request) -> Result<u64> {
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        self.out
            .extend_from_slice(&insightnotes_common::wire::frame_bytes_seq(seq, req));
        self.outstanding.insert(seq);
        if self.out.len() >= FLUSH_BYTES {
            self.flush()?;
        }
        Ok(seq)
    }

    /// Writes all corked request frames to the socket in one system
    /// call. Every blocking read does this first; call it directly only
    /// when you want submitted requests moving while this thread does
    /// something other than wait on this session.
    pub fn flush(&mut self) -> Result<()> {
        use std::io::Write;
        if !self.out.is_empty() {
            self.stream.write_all(&self.out)?;
            self.out.clear();
        }
        Ok(())
    }

    /// Requests submitted but not yet claimed by a `recv`.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Blocks until the response for `seq` arrives. Responses for other
    /// in-flight requests read along the way are stashed for their own
    /// `recv` calls. Error frames come back as `Ok(Response::Error(..))`;
    /// transport failures are `Err`.
    pub fn recv(&mut self, seq: u64) -> Result<Response> {
        if !self.outstanding.contains(&seq) {
            return Err(Error::Execution(format!(
                "sequence {seq} is not in flight on this session"
            )));
        }
        loop {
            if let Some(resp) = self.ready.remove(&seq) {
                self.outstanding.remove(&seq);
                return Ok(resp);
            }
            let (got, resp) = self.read_one()?;
            if got == seq {
                self.outstanding.remove(&seq);
                return Ok(resp);
            }
            self.ready.insert(got, resp);
        }
    }

    /// Blocks until *any* in-flight response is available and returns
    /// it with its sequence id — the windowed-load pattern: submit up
    /// to the window size, then `recv_any` to free a slot.
    pub fn recv_any(&mut self) -> Result<(u64, Response)> {
        if let Some(&seq) = self.ready.keys().next() {
            if let Some(resp) = self.ready.remove(&seq) {
                self.outstanding.remove(&seq);
                return Ok((seq, resp));
            }
        }
        if self.outstanding.is_empty() {
            return Err(Error::Execution(
                "no requests are in flight on this session".into(),
            ));
        }
        let (seq, resp) = self.read_one()?;
        self.outstanding.remove(&seq);
        Ok((seq, resp))
    }

    /// Waits out every in-flight response, returning them as
    /// `(seq, response)` pairs in arrival order.
    pub fn drain(&mut self) -> Result<Vec<(u64, Response)>> {
        let mut out = Vec::with_capacity(self.outstanding.len() + self.ready.len());
        while !(self.outstanding.is_empty() && self.ready.is_empty()) {
            out.push(self.recv_any()?);
        }
        Ok(out)
    }

    fn read_one(&mut self) -> Result<(u64, Response)> {
        use insightnotes_common::wire;
        use std::io::Read;
        self.flush()?;
        loop {
            let avail = &self.inbuf[self.inpos..];
            if avail.len() >= 4 {
                let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
                if len > wire::MAX_FRAME_BYTES {
                    return Err(Error::Codec(format!(
                        "frame of {len} bytes exceeds the {}-byte limit",
                        wire::MAX_FRAME_BYTES
                    )));
                }
                if avail.len() >= 4 + len {
                    let parsed = wire::decode_frame_any::<Response>(&avail[4..4 + len]);
                    self.inpos += 4 + len;
                    if self.inpos == self.inbuf.len() {
                        self.inbuf.clear();
                        self.inpos = 0;
                    }
                    return match parsed? {
                        (Some(seq), msg) => Ok((seq, msg)),
                        (None, _) => Err(Error::Codec(
                            "server answered a pipelined (v2) request with a serial (v1) \
                             frame"
                                .into(),
                        )),
                    };
                }
            }
            // No complete frame buffered: drop the consumed prefix and
            // pull whatever the socket has in one read.
            if self.inpos > 0 {
                self.inbuf.drain(..self.inpos);
                self.inpos = 0;
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = (&self.stream).read(&mut chunk)?;
            if n == 0 {
                return Err(Error::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection with responses outstanding",
                )));
            }
            self.inbuf.extend_from_slice(&chunk[..n]);
        }
    }
}
