//! `insight-cli` — interactive REPL (and one-shot runner) for `insightd`.
//!
//! ```text
//! insight-cli --addr HOST:PORT                  # REPL on stdin
//! insight-cli --addr HOST:PORT 'SQL' ['SQL'…]   # run statements, exit
//! insight-cli --addr HOST:PORT --batch \
//!     'ADD ANNOTATION …' ['ADD ANNOTATION …'…]  # one group-committed frame
//! insight-cli --addr PRIMARY --replica REPLICA  # route reads to a replica
//! insight-cli --addr HOST:PORT --pipeline 16 \
//!     'SQL' ['SQL'…]                            # pipelined, 16 in flight
//! insight-cli --addr HOST:PORT --flood 1000 \
//!     [--depth 16] ['SQL'…]                     # concurrency smoke load
//! ```
//!
//! Each input line is routed to its most specific wire frame (SELECT →
//! Query, ADD ANNOTATION → Annotate, ZOOMIN → ZoomIn, anything else →
//! Execute). With `--batch`, every argument must be one `ADD ANNOTATION`
//! statement; they ship in a single `AnnotateBatch` frame and ingest
//! under one server-side group commit, with per-item results printed in
//! order. Meta commands: `.help`, `.ping`, `.shutdown`, `.quit`.
//!
//! With `--replica HOST:PORT`, read statements (SELECT and ZOOMIN) are
//! served by that replica while everything else still goes to the
//! primary at `--addr`; after each write the CLI captures the primary's
//! committed positions and waits for the replica to apply them before
//! the next read — read-your-writes across the two connections.
//!
//! With `--pipeline DEPTH`, the statement arguments ship over one
//! pipelined (protocol v2) connection with up to DEPTH requests in
//! flight; results print in submission order once all are in. With
//! `--flood CONNS`, the CLI opens CONNS simultaneous pipelined
//! connections, puts `--depth` requests in flight on every one (the
//! statement arguments round-robin; plain pings when none are given),
//! and reports the ack/failure tally — the high-concurrency smoke
//! check `scripts/check.sh` runs against a live server.

use insightnotes_client::{Client, PipelinedClient};
use insightnotes_common::wire::{HistoryPayload, Request, Response, RowsPayload, ZoomPayload};
use insightnotes_sql::{parse_one, Statement, StatementClass};
use std::io::{BufRead, IsTerminal, Write};
use std::time::Duration;

/// The CLI's connection(s): the primary, plus an optional read replica.
struct Session {
    primary: Client,
    replica: Option<Client>,
}

impl Session {
    /// Sends one line, routing reads to the replica (when configured)
    /// and everything else to the primary. A write refreshes the
    /// replica's view first — read-your-writes for the next SELECT.
    fn send(&mut self, line: &str) -> insightnotes_common::Result<Response> {
        let is_read = parse_one(line).is_ok_and(|s| s.class() == StatementClass::Read);
        match (&mut self.replica, is_read) {
            (Some(replica), true) => replica.send_sql(line),
            (Some(replica), false) => {
                let response = self.primary.send_sql(line)?;
                // Best effort: a WAL-less primary has no positions to
                // wait for, and the read still serves (just possibly
                // stale).
                if let Ok(target) = self.primary.replica_state() {
                    let _ = replica.wait_for_offset(&target, Duration::from_secs(5));
                }
                Ok(response)
            }
            (None, _) => self.primary.send_sql(line),
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("insight-cli: {e}");
        std::process::exit(1);
    }
}

fn run() -> insightnotes_common::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7433".to_string();
    let mut replica_addr: Option<String> = None;
    let mut batch = false;
    let mut pipeline: Option<usize> = None;
    let mut flood: Option<usize> = None;
    let mut depth = 16usize;
    let mut statements = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args
                    .get(i + 1)
                    .ok_or_else(|| {
                        insightnotes_common::Error::Execution("--addr needs a value".into())
                    })?
                    .clone();
                i += 2;
            }
            "--replica" => {
                replica_addr = Some(
                    args.get(i + 1)
                        .ok_or_else(|| {
                            insightnotes_common::Error::Execution("--replica needs a value".into())
                        })?
                        .clone(),
                );
                i += 2;
            }
            "--batch" => {
                batch = true;
                i += 1;
            }
            "--pipeline" => {
                pipeline = Some(parse_count(args.get(i + 1), "--pipeline")?);
                i += 2;
            }
            "--flood" => {
                flood = Some(parse_count(args.get(i + 1), "--flood")?);
                i += 2;
            }
            "--depth" => {
                depth = parse_count(args.get(i + 1), "--depth")?;
                i += 2;
            }
            "--help" | "-h" => {
                println!(
                    "usage: insight-cli [--addr HOST:PORT] [--replica HOST:PORT] \
                     [--batch] [--pipeline DEPTH] [--flood CONNS [--depth N]] ['SQL'…]"
                );
                return Ok(());
            }
            other => {
                statements.push(other.to_string());
                i += 1;
            }
        }
    }

    if let Some(window) = pipeline {
        return run_pipeline(&addr, window, &statements);
    }
    if let Some(conns) = flood {
        return run_flood(&addr, conns, depth, &statements);
    }

    let mut client = Session {
        primary: Client::connect(addr.as_str())?,
        replica: match &replica_addr {
            Some(r) => Some(Client::connect(r.as_str())?),
            None => None,
        },
    };

    if batch {
        if statements.is_empty() {
            return Err(insightnotes_common::Error::Execution(
                "--batch needs at least one ADD ANNOTATION statement argument".into(),
            ));
        }
        let mut failures = 0usize;
        for (i, result) in client
            .primary
            .annotate_batch(statements)?
            .into_iter()
            .enumerate()
        {
            match result {
                Ok(message) => println!("[{i}] {message}"),
                Err(e) => {
                    failures += 1;
                    println!("[{i}] error: {e}");
                }
            }
        }
        if failures > 0 {
            std::process::exit(1);
        }
        return Ok(());
    }

    if !statements.is_empty() {
        // One-shot mode: run each argument, fail fast on errors.
        for sql in &statements {
            match dispatch(&mut client, sql)? {
                LineResult::Continue => {}
                LineResult::Quit => break,
            }
        }
        return Ok(());
    }

    let interactive = std::io::stdin().is_terminal();
    if interactive {
        println!("connected to insightd at {addr} — .help for commands");
    }
    let stdin = std::io::stdin();
    loop {
        if interactive {
            print!("insight> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match dispatch(&mut client, line) {
            Ok(LineResult::Continue) => {}
            Ok(LineResult::Quit) => break,
            // Engine/protocol errors are printed by dispatch; a hard Err
            // here is a transport failure — give up on the session.
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

enum LineResult {
    Continue,
    Quit,
}

fn dispatch(client: &mut Session, line: &str) -> insightnotes_common::Result<LineResult> {
    match line {
        ".quit" | ".exit" => return Ok(LineResult::Quit),
        ".help" => {
            println!(
                ".ping      probe the server\n\
                 .shutdown  stop the server (writes its snapshot)\n\
                 .quit      leave the REPL\n\
                 anything else is sent as SQL (`;` separates statements)"
            );
            return Ok(LineResult::Continue);
        }
        ".ping" => {
            let (version, served) = client.primary.ping()?;
            println!("pong: protocol v{version}, {served} request(s) served");
            return Ok(LineResult::Continue);
        }
        ".shutdown" => {
            client.primary.shutdown_server()?;
            println!("server is shutting down");
            return Ok(LineResult::Quit);
        }
        _ => {}
    }
    print_response(client.send(line)?);
    Ok(LineResult::Continue)
}

/// Prints any request/response-cycle frame the way the REPL renders it.
fn print_response(response: Response) {
    match response {
        Response::Rows(rows) => print_rows(&rows),
        Response::Zoomed(z) => print_zoom(&z),
        Response::History(h) => print_history(&h),
        Response::Ack { messages } => {
            for m in messages {
                println!("{m}");
            }
        }
        Response::BatchAck { results } => {
            for (i, item) in results.into_iter().enumerate() {
                match item.into_result() {
                    Ok(message) => println!("[{i}] {message}"),
                    Err(e) => println!("[{i}] error: {e}"),
                }
            }
        }
        Response::Error(e) => println!("error: {}", e.into_error()),
        Response::Pong { version, served } => {
            println!("pong: protocol v{version}, {served} request(s) served");
        }
        Response::ShuttingDown => println!("server is shutting down"),
        Response::ReplicaState { shards } => {
            for (k, p) in shards.iter().enumerate() {
                println!("shard {k}: epoch {} offset {}", p.epoch, p.offset);
            }
        }
        // Streaming frames never answer a request frame.
        Response::SubscribeAck { .. }
        | Response::SnapshotChunk { .. }
        | Response::WalFrame { .. } => {
            println!("error: unexpected replication frame outside a subscription");
        }
    }
}

/// Routes one SQL line to its most specific frame kind — the pipelined
/// twin of [`Client::send_sql`].
fn request_for(sql: &str) -> Request {
    match parse_one(sql) {
        Ok(Statement::Select(_)) => Request::Query { sql: sql.into() },
        Ok(Statement::AddAnnotation { .. }) => Request::Annotate { sql: sql.into() },
        Ok(Statement::ZoomIn(_)) => Request::ZoomIn { sql: sql.into() },
        Ok(Statement::HistoryAnnotation { id }) => Request::History { annotation: id },
        _ => Request::Execute { sql: sql.into() },
    }
}

fn parse_count(value: Option<&String>, flag: &str) -> insightnotes_common::Result<usize> {
    let value = value
        .ok_or_else(|| insightnotes_common::Error::Execution(format!("{flag} needs a value")))?;
    let n: usize = value
        .parse()
        .map_err(|_| insightnotes_common::Error::Execution(format!("{flag}: bad count {value}")))?;
    if n == 0 {
        return Err(insightnotes_common::Error::Execution(format!(
            "{flag} must be at least 1"
        )));
    }
    Ok(n)
}

/// `--pipeline DEPTH`: ships the statement arguments over one pipelined
/// connection with up to DEPTH requests in flight, then prints every
/// result in submission order.
fn run_pipeline(
    addr: &str,
    window: usize,
    statements: &[String],
) -> insightnotes_common::Result<()> {
    if statements.is_empty() {
        return Err(insightnotes_common::Error::Execution(
            "--pipeline needs at least one SQL statement argument".into(),
        ));
    }
    let mut client = PipelinedClient::connect(addr)?;
    let mut index_of = std::collections::HashMap::new();
    let mut results: Vec<Option<Response>> = Vec::new();
    results.resize_with(statements.len(), || None);
    let stash = |results: &mut Vec<Option<Response>>,
                 index_of: &std::collections::HashMap<u64, usize>,
                 seq: u64,
                 resp: Response| {
        if let Some(slot) = index_of.get(&seq).and_then(|&i| results.get_mut(i)) {
            *slot = Some(resp);
        }
    };
    for (i, sql) in statements.iter().enumerate() {
        while client.in_flight() >= window {
            let (seq, resp) = client.recv_any()?;
            stash(&mut results, &index_of, seq, resp);
        }
        let seq = client.submit(&request_for(sql))?;
        index_of.insert(seq, i);
    }
    for (seq, resp) in client.drain()? {
        stash(&mut results, &index_of, seq, resp);
    }
    let mut failures = 0usize;
    for (i, slot) in results.into_iter().enumerate() {
        match slot {
            Some(resp) => {
                if matches!(resp, Response::Error(_)) {
                    failures += 1;
                }
                print!("[{i}] ");
                print_response(resp);
            }
            None => {
                failures += 1;
                println!("[{i}] error: no response arrived for this statement");
            }
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    Ok(())
}

/// `--flood CONNS`: holds CONNS pipelined connections open at once with
/// `depth` requests in flight on each, then drains and tallies.
fn run_flood(
    addr: &str,
    conns: usize,
    depth: usize,
    statements: &[String],
) -> insightnotes_common::Result<()> {
    let mut sessions = Vec::with_capacity(conns);
    for c in 0..conns {
        match PipelinedClient::connect(addr) {
            Ok(s) => sessions.push(s),
            Err(e) => {
                return Err(insightnotes_common::Error::Execution(format!(
                    "flood: connection {c} of {conns} failed to open: {e}"
                )))
            }
        }
    }
    // Every connection is open simultaneously from here on; load the
    // full window on each before draining any so the server holds
    // conns × depth requests in flight at peak.
    for (c, client) in sessions.iter_mut().enumerate() {
        for d in 0..depth {
            let req = match statements.get((c + d) % statements.len().max(1)) {
                Some(sql) => request_for(sql),
                None => Request::Ping,
            };
            client.submit(&req)?;
        }
    }
    // Submits are corked client-side; push every window onto the wire
    // before draining anything, or earlier connections would complete
    // before later ones even transmit.
    for client in &mut sessions {
        client.flush()?;
    }
    let mut acked = 0u64;
    let mut failures = 0u64;
    for client in &mut sessions {
        for (_seq, resp) in client.drain()? {
            match resp {
                Response::Error(e) => {
                    failures += 1;
                    eprintln!("flood: request failed: {}", e.into_error());
                }
                _ => acked += 1,
            }
        }
    }
    println!("flood: {conns} connection(s) × {depth} in flight: {acked} acked, {failures} failed");
    if failures > 0 {
        std::process::exit(1);
    }
    Ok(())
}

fn print_rows(rows: &RowsPayload) {
    println!("QID {} | {}", rows.qid, rows.columns.join(", "));
    for row in &rows.rows {
        let values: Vec<String> = row
            .values
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let mut line = format!("({})", values.join(", "));
        for s in &row.summaries {
            line.push_str("  ");
            line.push_str(s);
        }
        println!("{line}");
    }
    println!("{} row(s)", rows.rows.len());
}

fn print_history(h: &HistoryPayload) {
    for e in &h.events {
        let mut line = format!("t={} {}", e.at, e.kind);
        if let Some(s) = e.successor {
            line.push_str(&format!(" -> #{s}"));
        }
        if let Some(note) = &e.note {
            line.push_str(&format!(" ({note})"));
        }
        println!("{line}");
    }
    println!("annotation #{}: {} event(s)", h.annotation, h.events.len());
}

fn print_zoom(z: &ZoomPayload) {
    for a in &z.annotations {
        let doc = a
            .document
            .as_ref()
            .map(|d| format!(" [doc: {} bytes]", d.len()))
            .unwrap_or_default();
        println!("#{} {} — {}{doc}", a.id, a.author, a.text);
    }
    println!(
        "{} annotation(s) from {} matching row(s){}",
        z.annotations.len(),
        z.matched_rows,
        if z.from_cache {
            " [cache]"
        } else {
            " [re-executed]"
        }
    );
}
