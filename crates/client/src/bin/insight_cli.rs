//! `insight-cli` — interactive REPL (and one-shot runner) for `insightd`.
//!
//! ```text
//! insight-cli --addr HOST:PORT                  # REPL on stdin
//! insight-cli --addr HOST:PORT 'SQL' ['SQL'…]   # run statements, exit
//! insight-cli --addr HOST:PORT --batch \
//!     'ADD ANNOTATION …' ['ADD ANNOTATION …'…]  # one group-committed frame
//! insight-cli --addr PRIMARY --replica REPLICA  # route reads to a replica
//! ```
//!
//! Each input line is routed to its most specific wire frame (SELECT →
//! Query, ADD ANNOTATION → Annotate, ZOOMIN → ZoomIn, anything else →
//! Execute). With `--batch`, every argument must be one `ADD ANNOTATION`
//! statement; they ship in a single `AnnotateBatch` frame and ingest
//! under one server-side group commit, with per-item results printed in
//! order. Meta commands: `.help`, `.ping`, `.shutdown`, `.quit`.
//!
//! With `--replica HOST:PORT`, read statements (SELECT and ZOOMIN) are
//! served by that replica while everything else still goes to the
//! primary at `--addr`; after each write the CLI captures the primary's
//! committed positions and waits for the replica to apply them before
//! the next read — read-your-writes across the two connections.

use insightnotes_client::Client;
use insightnotes_common::wire::{Response, RowsPayload, ZoomPayload};
use insightnotes_sql::{parse_one, StatementClass};
use std::io::{BufRead, IsTerminal, Write};
use std::time::Duration;

/// The CLI's connection(s): the primary, plus an optional read replica.
struct Session {
    primary: Client,
    replica: Option<Client>,
}

impl Session {
    /// Sends one line, routing reads to the replica (when configured)
    /// and everything else to the primary. A write refreshes the
    /// replica's view first — read-your-writes for the next SELECT.
    fn send(&mut self, line: &str) -> insightnotes_common::Result<Response> {
        let is_read = parse_one(line).is_ok_and(|s| s.class() == StatementClass::Read);
        match (&mut self.replica, is_read) {
            (Some(replica), true) => replica.send_sql(line),
            (Some(replica), false) => {
                let response = self.primary.send_sql(line)?;
                // Best effort: a WAL-less primary has no positions to
                // wait for, and the read still serves (just possibly
                // stale).
                if let Ok(target) = self.primary.replica_state() {
                    let _ = replica.wait_for_offset(&target, Duration::from_secs(5));
                }
                Ok(response)
            }
            (None, _) => self.primary.send_sql(line),
        }
    }
}

fn main() {
    if let Err(e) = run() {
        eprintln!("insight-cli: {e}");
        std::process::exit(1);
    }
}

fn run() -> insightnotes_common::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = "127.0.0.1:7433".to_string();
    let mut replica_addr: Option<String> = None;
    let mut batch = false;
    let mut statements = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                addr = args
                    .get(i + 1)
                    .ok_or_else(|| {
                        insightnotes_common::Error::Execution("--addr needs a value".into())
                    })?
                    .clone();
                i += 2;
            }
            "--replica" => {
                replica_addr = Some(
                    args.get(i + 1)
                        .ok_or_else(|| {
                            insightnotes_common::Error::Execution("--replica needs a value".into())
                        })?
                        .clone(),
                );
                i += 2;
            }
            "--batch" => {
                batch = true;
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: insight-cli [--addr HOST:PORT] [--replica HOST:PORT] \
                     [--batch] ['SQL'…]"
                );
                return Ok(());
            }
            other => {
                statements.push(other.to_string());
                i += 1;
            }
        }
    }

    let mut client = Session {
        primary: Client::connect(addr.as_str())?,
        replica: match &replica_addr {
            Some(r) => Some(Client::connect(r.as_str())?),
            None => None,
        },
    };

    if batch {
        if statements.is_empty() {
            return Err(insightnotes_common::Error::Execution(
                "--batch needs at least one ADD ANNOTATION statement argument".into(),
            ));
        }
        let mut failures = 0usize;
        for (i, result) in client
            .primary
            .annotate_batch(statements)?
            .into_iter()
            .enumerate()
        {
            match result {
                Ok(message) => println!("[{i}] {message}"),
                Err(e) => {
                    failures += 1;
                    println!("[{i}] error: {e}");
                }
            }
        }
        if failures > 0 {
            std::process::exit(1);
        }
        return Ok(());
    }

    if !statements.is_empty() {
        // One-shot mode: run each argument, fail fast on errors.
        for sql in &statements {
            match dispatch(&mut client, sql)? {
                LineResult::Continue => {}
                LineResult::Quit => break,
            }
        }
        return Ok(());
    }

    let interactive = std::io::stdin().is_terminal();
    if interactive {
        println!("connected to insightd at {addr} — .help for commands");
    }
    let stdin = std::io::stdin();
    loop {
        if interactive {
            print!("insight> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match dispatch(&mut client, line) {
            Ok(LineResult::Continue) => {}
            Ok(LineResult::Quit) => break,
            // Engine/protocol errors are printed by dispatch; a hard Err
            // here is a transport failure — give up on the session.
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

enum LineResult {
    Continue,
    Quit,
}

fn dispatch(client: &mut Session, line: &str) -> insightnotes_common::Result<LineResult> {
    match line {
        ".quit" | ".exit" => return Ok(LineResult::Quit),
        ".help" => {
            println!(
                ".ping      probe the server\n\
                 .shutdown  stop the server (writes its snapshot)\n\
                 .quit      leave the REPL\n\
                 anything else is sent as SQL (`;` separates statements)"
            );
            return Ok(LineResult::Continue);
        }
        ".ping" => {
            let (version, served) = client.primary.ping()?;
            println!("pong: protocol v{version}, {served} request(s) served");
            return Ok(LineResult::Continue);
        }
        ".shutdown" => {
            client.primary.shutdown_server()?;
            println!("server is shutting down");
            return Ok(LineResult::Quit);
        }
        _ => {}
    }
    match client.send(line)? {
        Response::Rows(rows) => print_rows(&rows),
        Response::Zoomed(z) => print_zoom(&z),
        Response::Ack { messages } => {
            for m in messages {
                println!("{m}");
            }
        }
        Response::BatchAck { results } => {
            for (i, item) in results.into_iter().enumerate() {
                match item.into_result() {
                    Ok(message) => println!("[{i}] {message}"),
                    Err(e) => println!("[{i}] error: {e}"),
                }
            }
        }
        Response::Error(e) => println!("error: {}", e.into_error()),
        Response::Pong { version, served } => {
            println!("pong: protocol v{version}, {served} request(s) served");
        }
        Response::ShuttingDown => println!("server is shutting down"),
        Response::ReplicaState { shards } => {
            for (k, p) in shards.iter().enumerate() {
                println!("shard {k}: epoch {} offset {}", p.epoch, p.offset);
            }
        }
        // Streaming frames never answer a request frame.
        Response::SubscribeAck { .. }
        | Response::SnapshotChunk { .. }
        | Response::WalFrame { .. } => {
            println!("error: unexpected replication frame outside a subscription");
        }
    }
    Ok(LineResult::Continue)
}

fn print_rows(rows: &RowsPayload) {
    println!("QID {} | {}", rows.qid, rows.columns.join(", "));
    for row in &rows.rows {
        let values: Vec<String> = row
            .values
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let mut line = format!("({})", values.join(", "));
        for s in &row.summaries {
            line.push_str("  ");
            line.push_str(s);
        }
        println!("{line}");
    }
    println!("{} row(s)", rows.rows.len());
}

fn print_zoom(z: &ZoomPayload) {
    for a in &z.annotations {
        let doc = a
            .document
            .as_ref()
            .map(|d| format!(" [doc: {} bytes]", d.len()))
            .unwrap_or_default();
        println!("#{} {} — {}{doc}", a.id, a.author, a.text);
    }
    println!(
        "{} annotation(s) from {} matching row(s){}",
        z.annotations.len(),
        z.matched_rows,
        if z.from_cache {
            " [cache]"
        } else {
            " [re-executed]"
        }
    );
}
