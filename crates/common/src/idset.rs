//! Compact sorted sets of 64-bit ids.
//!
//! `IdSet` is the backbone of InsightNotes' exact summary algebra: every
//! summary-object component carries the set of annotation ids that
//! contribute to it (~8 bytes per annotation, versus hundreds of bytes of
//! raw content). Set operations implement the paper's operator semantics
//! exactly:
//!
//! - **projection** subtracts the ids attached only to projected-out columns
//!   (`difference` / `retain`),
//! - **join merge** unions the two sides *without double counting* ids
//!   common to both (`union` over sets is duplicate-free by construction),
//! - **zoom-in** resolves the ids back to raw annotations.
//!
//! The representation is a sorted `Vec<u64>`. Annotation ids are dense and
//! allocated in insertion order, so sets built during maintenance are
//! appended to in nearly sorted order, and merges of sorted runs are linear.

use std::fmt;

/// A sorted, duplicate-free set of `u64` ids.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct IdSet {
    // Invariant: strictly increasing.
    ids: Vec<u64>,
}

impl IdSet {
    /// Creates an empty set.
    #[inline]
    pub fn new() -> Self {
        Self { ids: Vec::new() }
    }

    /// Creates an empty set with room for `cap` ids.
    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            ids: Vec::with_capacity(cap),
        }
    }

    /// Builds a set from an arbitrary iterator of ids (sorts + dedups).
    pub fn from_iter_unsorted<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut ids: Vec<u64> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// Builds a set from a slice that is already strictly increasing.
    ///
    /// # Panics
    /// Panics in debug builds if the slice is not strictly increasing.
    pub fn from_sorted(ids: Vec<u64>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "ids must be strictly increasing"
        );
        Self { ids }
    }

    /// Number of ids in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the set holds no ids.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test (binary search).
    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Inserts an id, returning `true` if it was not already present.
    ///
    /// Appending ids in increasing order (the common maintenance path) is
    /// O(1); out-of-order inserts are O(n).
    pub fn insert(&mut self, id: u64) -> bool {
        match self.ids.last() {
            Some(&last) if last < id => {
                self.ids.push(id);
                true
            }
            Some(&last) if last == id => false,
            _ => match self.ids.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    self.ids.insert(pos, id);
                    true
                }
            },
        }
    }

    /// Removes an id, returning `true` if it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Smallest id, if any.
    #[inline]
    pub fn first(&self) -> Option<u64> {
        self.ids.first().copied()
    }

    /// Largest id, if any.
    #[inline]
    pub fn last(&self) -> Option<u64> {
        self.ids.last().copied()
    }

    /// Iterates ids in increasing order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.ids.iter().copied()
    }

    /// Borrow the underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.ids
    }

    /// Duplicate-free union (linear merge of the sorted runs).
    pub fn union(&self, other: &IdSet) -> IdSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            let (a, b) = (self.ids[i], other.ids[j]);
            if a < b {
                out.push(a);
                i += 1;
            } else if b < a {
                out.push(b);
                j += 1;
            } else {
                out.push(a);
                i += 1;
                j += 1;
            }
        }
        out.extend_from_slice(&self.ids[i..]);
        out.extend_from_slice(&other.ids[j..]);
        IdSet { ids: out }
    }

    /// Ids present in both sets.
    pub fn intersect(&self, other: &IdSet) -> IdSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            let (a, b) = (self.ids[i], other.ids[j]);
            if a < b {
                i += 1;
            } else if b < a {
                j += 1;
            } else {
                out.push(a);
                i += 1;
                j += 1;
            }
        }
        IdSet { ids: out }
    }

    /// Ids of `self` not present in `other`.
    pub fn difference(&self, other: &IdSet) -> IdSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() {
            if j >= other.ids.len() {
                out.extend_from_slice(&self.ids[i..]);
                break;
            }
            let (a, b) = (self.ids[i], other.ids[j]);
            if a < b {
                out.push(a);
                i += 1;
            } else if b < a {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        IdSet { ids: out }
    }

    /// In-place removal of every id present in `other`.
    pub fn subtract(&mut self, other: &IdSet) {
        if other.is_empty() || self.is_empty() {
            return;
        }
        let mut j = 0;
        self.ids.retain(|&id| {
            while j < other.ids.len() && other.ids[j] < id {
                j += 1;
            }
            !(j < other.ids.len() && other.ids[j] == id)
        });
    }

    /// Number of ids the two sets share, without materializing the
    /// intersection. This is what the join merge uses to avoid double
    /// counting common annotations.
    pub fn overlap_count(&self, other: &IdSet) -> usize {
        let mut n = 0;
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            let (a, b) = (self.ids[i], other.ids[j]);
            if a < b {
                i += 1;
            } else if b < a {
                j += 1;
            } else {
                n += 1;
                i += 1;
                j += 1;
            }
        }
        n
    }

    /// True when the sets share at least one id.
    pub fn overlaps(&self, other: &IdSet) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            let (a, b) = (self.ids[i], other.ids[j]);
            if a < b {
                i += 1;
            } else if b < a {
                j += 1;
            } else {
                return true;
            }
        }
        false
    }

    /// True when every id of `self` is in `other`.
    pub fn is_subset(&self, other: &IdSet) -> bool {
        self.overlap_count(other) == self.len()
    }

    /// Keeps only ids satisfying the predicate.
    pub fn retain(&mut self, mut f: impl FnMut(u64) -> bool) {
        self.ids.retain(|&id| f(id));
    }

    /// Approximate heap footprint in bytes: counts live elements, not
    /// reserved capacity (used by compression reports).
    pub fn heap_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<u64>()
    }
}

impl fmt::Debug for IdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.ids.iter()).finish()
    }
}

impl FromIterator<u64> for IdSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Self::from_iter_unsorted(iter)
    }
}

impl<'a> IntoIterator for &'a IdSet {
    type Item = u64;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u64>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u64]) -> IdSet {
        IdSet::from_iter_unsorted(ids.iter().copied())
    }

    #[test]
    fn insert_keeps_sorted_and_dedups() {
        let mut s = IdSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(s.insert(9));
        assert!(!s.insert(5));
        assert_eq!(s.as_slice(), &[1, 5, 9]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn append_fast_path_matches_general_path() {
        let mut a = IdSet::new();
        let mut b = IdSet::new();
        for id in 0..100u64 {
            a.insert(id);
        }
        for id in (0..100u64).rev() {
            b.insert(id);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn remove_and_contains() {
        let mut s = set(&[1, 2, 3]);
        assert!(s.contains(2));
        assert!(s.remove(2));
        assert!(!s.remove(2));
        assert!(!s.contains(2));
        assert_eq!(s.as_slice(), &[1, 3]);
    }

    #[test]
    fn union_is_duplicate_free() {
        let a = set(&[1, 3, 5, 7]);
        let b = set(&[3, 4, 7, 9]);
        assert_eq!(a.union(&b).as_slice(), &[1, 3, 4, 5, 7, 9]);
    }

    #[test]
    fn intersect_difference_overlap_agree() {
        let a = set(&[1, 2, 3, 4, 5]);
        let b = set(&[2, 4, 6]);
        assert_eq!(a.intersect(&b).as_slice(), &[2, 4]);
        assert_eq!(a.difference(&b).as_slice(), &[1, 3, 5]);
        assert_eq!(a.overlap_count(&b), 2);
        assert!(a.overlaps(&b));
        assert!(!set(&[1]).overlaps(&set(&[2])));
    }

    #[test]
    fn subtract_in_place_equals_difference() {
        let mut a = set(&[1, 2, 3, 4, 5, 10, 11]);
        let b = set(&[2, 4, 11, 20]);
        let expect = a.difference(&b);
        a.subtract(&b);
        assert_eq!(a, expect);
    }

    #[test]
    fn subset_and_bounds() {
        let a = set(&[2, 4]);
        let b = set(&[1, 2, 3, 4]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert_eq!(b.first(), Some(1));
        assert_eq!(b.last(), Some(4));
        assert_eq!(IdSet::new().first(), None);
    }

    #[test]
    fn union_with_double_count_avoidance_matches_paper_example() {
        // Figure 2: 5 annotations common to both sides classified as
        // "Comment"; merged count must be 22 (= 20 + 7 - 5), not 27.
        let r: IdSet = (0..20u64).collect();
        let s: IdSet = (15..22u64).collect(); // 5 shared: 15..20
        assert_eq!(r.len() + s.len(), 27);
        assert_eq!(r.union(&s).len(), 22);
        assert_eq!(r.overlap_count(&s), 5);
    }
}
