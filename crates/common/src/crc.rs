//! CRC-32 (IEEE 802.3) checksums.
//!
//! The write-ahead log frames every record with a checksum so that
//! recovery can distinguish a torn tail (a crash mid-append) from a
//! complete record. The polynomial is the ubiquitous reflected
//! `0xEDB88320` used by zlib, Ethernet, and PNG, computed byte-at-a-time
//! over a lazily built 256-entry table.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (IEEE polynomial, reflected, init/final `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in bytes {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for this polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"annotation payload bytes".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
