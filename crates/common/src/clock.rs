//! Logical clock.
//!
//! Cache replacement (recency in the RCO policy) and QID assignment need a
//! monotonically increasing tick that is cheap, deterministic, and
//! independent of wall-clock time so that benchmarks and tests are
//! reproducible.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter. `tick` returns a fresh value on each
/// call; `now` peeks at the latest issued value.
#[derive(Debug, Default)]
pub struct LogicalClock {
    counter: AtomicU64,
}

impl LogicalClock {
    /// Creates a clock starting at zero.
    pub const fn new() -> Self {
        Self {
            counter: AtomicU64::new(0),
        }
    }

    /// Advances the clock and returns the new tick (first call returns 1).
    #[inline]
    pub fn tick(&self) -> u64 {
        self.counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Returns the most recently issued tick without advancing.
    #[inline]
    pub fn now(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Advances the clock to at least `value` (snapshot restore: the next
    /// `tick` after recovery must continue where the saved session left
    /// off, or recovered `created` stamps would collide with new ones).
    /// Never moves the clock backwards.
    pub fn advance_to(&self, value: u64) {
        self.counter.fetch_max(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = LogicalClock::new();
        c.advance_to(10);
        assert_eq!(c.now(), 10);
        assert_eq!(c.tick(), 11);
        // Never moves backwards.
        c.advance_to(5);
        assert_eq!(c.now(), 11);
        c.advance_to(11);
        assert_eq!(c.tick(), 12);
    }

    #[test]
    fn ticks_are_unique_across_threads() {
        let c = std::sync::Arc::new(LogicalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
    }
}
