//! Strongly-typed identifiers used across the workspace.
//!
//! Each id is a thin newtype over an unsigned integer. The newtypes prevent
//! accidentally crossing id spaces (e.g. passing a row id where an
//! annotation id is expected), which matters here because summary objects
//! juggle several id spaces at once.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident($repr:ty), $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> $repr {
                self.0
            }

            /// Constructs the id from a raw integer value.
            #[inline]
            pub const fn new(raw: $repr) -> Self {
                Self(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(raw: $repr) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of a raw annotation in the annotation store.
    ///
    /// Annotation ids are dense and monotonically increasing, which keeps
    /// the sorted [`IdSet`](crate::IdSet) representation compact and makes
    /// "newest annotation" queries trivial.
    AnnotationId(u64),
    "a"
);

define_id!(
    /// Identifier of a base-table row. Row ids are stable for the lifetime
    /// of the row (they are not reused after deletion), so annotations can
    /// reference rows without indirection.
    RowId(u64),
    "r"
);

define_id!(
    /// Identifier of a table in the catalog.
    TableId(u32),
    "t"
);

define_id!(
    /// Zero-based ordinal of a column within its table schema.
    ColumnId(u16),
    "c"
);

define_id!(
    /// Identifier of a summary instance (level 2 of the summarization
    /// hierarchy): a configured Classifier / Cluster / Snippet.
    InstanceId(u32),
    "i"
);

define_id!(
    /// Query identifier assigned to a materialized result set; `ZOOMIN`
    /// commands reference results through their QID.
    Qid(u64),
    "q"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(AnnotationId(7).to_string(), "a7");
        assert_eq!(RowId(1).to_string(), "r1");
        assert_eq!(TableId(2).to_string(), "t2");
        assert_eq!(ColumnId(3).to_string(), "c3");
        assert_eq!(InstanceId(4).to_string(), "i4");
        assert_eq!(Qid(101).to_string(), "q101");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(AnnotationId(1) < AnnotationId(2));
        assert_eq!(AnnotationId::new(9).raw(), 9);
    }

    #[test]
    fn ids_do_not_cross_spaces() {
        // Compile-time property, but keep a witness that From works.
        let a: AnnotationId = 5u64.into();
        let r: RowId = 5u64.into();
        assert_eq!(a.raw(), r.raw());
    }
}
