//! The `insightd` wire protocol.
//!
//! Client and server exchange **length-prefixed binary frames** over a
//! byte stream (TCP in practice; the functions here only require
//! `Read`/`Write`, which keeps them trivially testable over in-memory
//! buffers). Two frame layouts are live, distinguished by the version
//! word that follows the magic:
//!
//! ```text
//! u32 LE   frame length N (bytes that follow, bounded by MAX_FRAME_BYTES)
//! [u8; 4]  magic  "INWP"         ─┐
//! u16 LE   protocol version       │ N bytes, decoded strictly:
//! u64 LE   sequence id (v2 only)  │ unknown tags, truncation and
//! u8       message kind tag       │ trailing bytes are codec errors
//! …        kind-specific body    ─┘
//! ```
//!
//! **Version 1 (serial)** has no sequence id: one request, one response,
//! in lock step. **Version 2 (pipelined)** inserts a client-assigned
//! `u64` sequence id between the version word and the kind tag, and the
//! contract changes to *many requests in flight per connection*:
//!
//! - the client stamps every request frame with a sequence id of its
//!   choosing (unique among its own in-flight requests);
//! - the server echoes that id on the matching response frame, and on
//!   **every** frame of a streaming answer (`SubscribeAck` /
//!   `SnapshotChunk` / `WalFrame` all repeat the `Subscribe` seq);
//! - read-only requests may be answered **out of order**; write
//!   requests are acknowledged in commit (fsync) order.
//!
//! Version negotiation is per-frame and implicit: the server answers a
//! frame in the version it arrived in, so v1 and v2 clients coexist on
//! one listener with no handshake. A client discovers v2 support by
//! sending a v1 [`Request::Ping`] and checking
//! [`Response::Pong`]`::version` (the server's *maximum* supported
//! version) before switching to v2 frames. Decoders reject any other
//! version outright, so a v2 frame reaching a v1-only peer (an old
//! replica, say) fails fast instead of being half-parsed.
//!
//! Requests carry SQL text ([`Request::Query`], [`Request::Execute`],
//! [`Request::Annotate`], [`Request::ZoomIn`]), a statement batch
//! ([`Request::AnnotateBatch`], capped at [`MAX_BATCH_ITEMS`] items), or
//! are control frames ([`Request::Ping`], [`Request::Shutdown`]).
//! Responses carry either structured payloads ([`RowsPayload`],
//! [`ZoomPayload`], per-item [`BatchItem`] results) or a
//! structured error frame ([`WireError`]) that round-trips
//! [`enum@Error`] across the connection: the client re-raises the same
//! error class the server-side engine produced.
//!
//! The payload types are deliberately self-contained (plain strings and
//! scalars, no engine types) so that a client needs only this crate to
//! speak the protocol; summary objects travel in their rendered paper
//! notation (`ClassBird1 [(Behavior, 14), …]`).

use crate::codec::{Decoder, Encodable, Encoder};
use crate::error::{Error, Result};
use std::io::{Read, Write};

/// Frame magic: **I**nsight**N**otes **W**ire **P**rotocol.
pub const WIRE_MAGIC: [u8; 4] = *b"INWP";

/// Maximum protocol version this build speaks (the pipelined layout).
/// Advertised in [`Response::Pong`]; decoders accept exactly the
/// versions listed here and reject everything else so a future frame
/// layout can never be half-parsed by an old peer.
pub const WIRE_VERSION: u16 = 2;

/// The serial (one request, one response) frame layout. Still fully
/// supported: [`frame_bytes`] / [`read_frame`] speak it, and the server
/// answers a v1 frame with a v1 frame.
pub const WIRE_VERSION_SERIAL: u16 = 1;

/// Byte length of a v2 frame header inside the payload (after the u32
/// length prefix): magic + version word + sequence id. A frame whose
/// declared length is at least this long carries a recoverable header
/// even when the body is oversized or garbage — the reactor uses this
/// to answer oversized frames with a seq-addressed error instead of
/// dropping the connection.
pub const V2_HEADER_BYTES: usize = 4 + 2 + 8;

/// Upper bound on a single frame's payload. A corrupt or hostile length
/// prefix fails fast instead of triggering an allocation of its claimed
/// size.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Upper bound on the statement count of one [`Request::AnnotateBatch`],
/// mirroring [`MAX_FRAME_BYTES`]: a batch above this limit is a codec
/// error at decode time (the server answers with a structured error
/// frame, the connection stays usable).
pub const MAX_BATCH_ITEMS: usize = 64 << 10;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// A single `SELECT`; answered with [`Response::Rows`].
    Query {
        /// The SELECT text.
        sql: String,
    },
    /// One or more `;`-separated statements of any kind; answered with
    /// [`Response::Ack`] listing one rendered outcome per statement.
    Execute {
        /// The statement text.
        sql: String,
    },
    /// A single `ADD ANNOTATION`; answered with [`Response::Ack`].
    Annotate {
        /// The statement text.
        sql: String,
    },
    /// Up to [`MAX_BATCH_ITEMS`] `ADD ANNOTATION` statements ingested as
    /// one group; answered with [`Response::BatchAck`] carrying one
    /// structured result per statement (partial failure allowed — a bad
    /// item does not abort its neighbours).
    AnnotateBatch {
        /// One `ADD ANNOTATION` statement per entry, in batch order.
        statements: Vec<String>,
    },
    /// A single `ZOOMIN`; answered with [`Response::Zoomed`].
    ZoomIn {
        /// The statement text.
        sql: String,
    },
    /// Asks the server to shut down gracefully (final snapshot included);
    /// answered with [`Response::ShuttingDown`].
    Shutdown,
    /// Switches the connection into replication streaming mode for one
    /// shard. `epoch`/`offset` name the subscriber's position in that
    /// shard's WAL ((0, 0) = no local state); the server answers with
    /// [`Response::SubscribeAck`], optionally a [`Response::SnapshotChunk`]
    /// bootstrap stream, then an unbounded sequence of
    /// [`Response::WalFrame`]s. No further requests are read on the
    /// connection.
    Subscribe {
        /// Shard index to tail (`0..shards`).
        shard: u32,
        /// WAL epoch of the subscriber's last applied frame, 0 if none.
        epoch: u64,
        /// Byte offset *after* the last applied record frame in that
        /// epoch's WAL (file offset, header included), 0 if none.
        offset: u64,
    },
    /// Asks for the per-shard replication position vector; answered with
    /// [`Response::ReplicaState`]. On a primary the vector holds each
    /// shard's committed (fsynced) WAL position; on a replica, the
    /// primary position it has applied locally.
    ReplicaState,
    /// `HISTORY <annotation-id>`: asks for one annotation's lifecycle
    /// timeline; answered with [`Response::History`]. Read-only, so
    /// replicas serve it too.
    History {
        /// The annotation id whose timeline is requested.
        annotation: u64,
    },
}

impl Request {
    /// The SQL text carried by this request, if any. Batch requests
    /// carry many statements and return `None` here; read them from
    /// [`Request::AnnotateBatch`] directly.
    pub fn sql(&self) -> Option<&str> {
        match self {
            Request::Query { sql }
            | Request::Execute { sql }
            | Request::Annotate { sql }
            | Request::ZoomIn { sql } => Some(sql),
            Request::Ping
            | Request::Shutdown
            | Request::AnnotateBatch { .. }
            | Request::Subscribe { .. }
            | Request::ReplicaState
            | Request::History { .. } => None,
        }
    }
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong {
        /// The server's protocol version.
        version: u16,
        /// Number of requests the connection has served so far.
        served: u64,
    },
    /// Statement(s) executed; one rendered outcome line each.
    Ack {
        /// Rendered [`ExecOutcome`]-style messages, in statement order.
        messages: Vec<String>,
    },
    /// Answer to [`Request::AnnotateBatch`]: one result per statement,
    /// in batch order. Failed items carry the engine error; successful
    /// neighbours committed regardless.
    BatchAck {
        /// Per-statement outcomes, in batch order.
        results: Vec<BatchItem>,
    },
    /// A query result set.
    Rows(RowsPayload),
    /// A zoom-in result.
    Zoomed(ZoomPayload),
    /// The request failed; carries the engine error.
    Error(WireError),
    /// The server acknowledged a shutdown request and will close the
    /// connection after this frame.
    ShuttingDown,
    /// First answer to [`Request::Subscribe`]: the position the stream
    /// will continue from. When `snapshot` is true the subscriber's
    /// position was unusable (no state, stale epoch, or truncated
    /// history) and a [`Response::SnapshotChunk`] bootstrap stream
    /// follows before the first [`Response::WalFrame`]; the subscriber
    /// must discard its local shard state. A new `SubscribeAck` may
    /// arrive mid-stream when the primary checkpoints (epoch rotation).
    SubscribeAck {
        /// WAL epoch the following frames belong to.
        epoch: u64,
        /// WAL byte offset the first following frame starts at.
        offset: u64,
        /// Whether a snapshot bootstrap stream precedes the WAL frames.
        snapshot: bool,
    },
    /// One chunk of a snapshot bootstrap stream (serialized shard state,
    /// chunked to bound frame sizes). `last` marks the final chunk.
    SnapshotChunk {
        /// Raw snapshot bytes; concatenate chunks in arrival order.
        data: Vec<u8>,
        /// Whether this is the final chunk of the snapshot.
        last: bool,
    },
    /// A slice of committed (fsynced and acked) WAL record frames,
    /// verbatim bytes from the primary's log. Empty `data` is a
    /// heartbeat carrying the current committed position.
    WalFrame {
        /// WAL epoch these bytes belong to.
        epoch: u64,
        /// File offset of the first byte in `data`.
        offset: u64,
        /// Raw record-frame bytes (`u32 len | u32 crc | payload`…).
        data: Vec<u8>,
    },
    /// Answer to [`Request::ReplicaState`]: one position per shard, in
    /// shard order.
    ReplicaState {
        /// Per-shard committed/applied WAL positions.
        shards: Vec<ShardPosition>,
    },
    /// Answer to [`Request::History`]: the annotation's lifecycle
    /// timeline, oldest event first.
    History(HistoryPayload),
}

/// The payload of [`Response::History`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryPayload {
    /// The annotation id the timeline belongs to.
    pub annotation: u64,
    /// Lifecycle events, oldest first (creation always leads).
    pub events: Vec<WireLifecycleEvent>,
}

/// One event of an annotation's lifecycle timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireLifecycleEvent {
    /// What happened.
    pub kind: WireLifecycleKind,
    /// Logical-clock tick of the event.
    pub at: u64,
    /// Reviewer note attached to a flag, if any.
    pub note: Option<String>,
    /// Successor annotation id of a correction, if any.
    pub successor: Option<u64>,
}

/// The event kinds a [`WireLifecycleEvent`] can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireLifecycleKind {
    /// The annotation was added.
    Created,
    /// The annotation was flagged as disputed.
    Flagged,
    /// The annotation was retracted (tombstoned, no successor).
    Retracted,
    /// The annotation was corrected (tombstoned with a successor).
    Corrected,
}

impl std::fmt::Display for WireLifecycleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WireLifecycleKind::Created => "created",
            WireLifecycleKind::Flagged => "flagged",
            WireLifecycleKind::Retracted => "retracted",
            WireLifecycleKind::Corrected => "corrected",
        })
    }
}

/// One shard's replication position inside [`Response::ReplicaState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardPosition {
    /// WAL epoch of the position.
    pub epoch: u64,
    /// Byte offset after the last committed/applied record frame.
    pub offset: u64,
}

/// One value in a result row, mirroring the storage value space.
#[derive(Debug, Clone, PartialEq)]
pub enum WireValue {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl std::fmt::Display for WireValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireValue::Null => write!(f, "NULL"),
            WireValue::Int(v) => write!(f, "{v}"),
            WireValue::Float(v) => write!(f, "{v}"),
            WireValue::Text(s) => write!(f, "{s}"),
            WireValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// One result tuple: values plus its summary objects rendered in the
/// paper's notation (`Instance [(Component, count), …]`).
#[derive(Debug, Clone, PartialEq)]
pub struct WireRow {
    /// The data values, in output-schema order.
    pub values: Vec<WireValue>,
    /// Rendered summary objects, sorted by instance name.
    pub summaries: Vec<String>,
}

/// The payload of [`Response::Rows`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowsPayload {
    /// The result's QID (zoom-in reference).
    pub qid: u64,
    /// Output column display names.
    pub columns: Vec<String>,
    /// The result tuples.
    pub rows: Vec<WireRow>,
}

/// One raw annotation inside a [`ZoomPayload`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireAnnotation {
    /// Annotation id.
    pub id: u64,
    /// Free text.
    pub text: String,
    /// Attached document, if any.
    pub document: Option<String>,
    /// Curator.
    pub author: String,
}

/// The payload of [`Response::Zoomed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoomPayload {
    /// The raw annotations behind the expanded component.
    pub annotations: Vec<WireAnnotation>,
    /// Whether the referenced result came from the disk cache.
    pub from_cache: bool,
    /// Result tuples matching the refinement predicate.
    pub matched_rows: u64,
}

/// One statement's outcome inside a [`Response::BatchAck`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchItem {
    /// The statement committed; carries its rendered outcome line.
    Ok(String),
    /// The statement failed; the rest of the batch was unaffected.
    Err(WireError),
}

impl BatchItem {
    /// Converts into a plain `Result`, re-raising the engine error class.
    pub fn into_result(self) -> Result<String> {
        match self {
            BatchItem::Ok(m) => Ok(m),
            BatchItem::Err(e) => Err(e.into_error()),
        }
    }

    /// Whether the item committed.
    pub fn is_ok(&self) -> bool {
        matches!(self, BatchItem::Ok(_))
    }
}

/// A structured error frame: `class` is [`Error::class`], `message` the
/// display text. [`WireError::into_error`] reconstructs the matching
/// [`enum@Error`] variant on the client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable error class (`parse`, `catalog`, …).
    pub class: String,
    /// Human-readable message.
    pub message: String,
}

impl From<&Error> for WireError {
    fn from(e: &Error) -> Self {
        Self {
            class: e.class().to_string(),
            message: match e {
                // Display prefixes the class; keep only the message so the
                // reconstructed error does not double it.
                Error::Io(io) => io.to_string(),
                Error::Parse(m)
                | Error::Catalog(m)
                | Error::Type(m)
                | Error::Execution(m)
                | Error::Annotation(m)
                | Error::Summary(m)
                | Error::ZoomIn(m)
                | Error::Codec(m)
                | Error::ReadOnlyReplica(m) => m.clone(),
            },
        }
    }
}

impl WireError {
    /// Reconstructs the engine error this frame was built from. Unknown
    /// classes (a newer server) degrade to [`Error::Execution`].
    pub fn into_error(self) -> Error {
        let m = self.message;
        match self.class.as_str() {
            "parse" => Error::Parse(m),
            "catalog" => Error::Catalog(m),
            "type" => Error::Type(m),
            "execution" => Error::Execution(m),
            "annotation" => Error::Annotation(m),
            "summary" => Error::Summary(m),
            "zoomin" => Error::ZoomIn(m),
            "codec" => Error::Codec(m),
            "read_only_replica" => Error::ReadOnlyReplica(m),
            "io" => Error::Io(std::io::Error::other(m)),
            _ => Error::Execution(format!("[{}] {m}", self.class)),
        }
    }
}

// -- encodings ------------------------------------------------------------

const REQ_PING: u8 = 1;
const REQ_QUERY: u8 = 2;
const REQ_EXECUTE: u8 = 3;
const REQ_ANNOTATE: u8 = 4;
const REQ_ZOOMIN: u8 = 5;
const REQ_SHUTDOWN: u8 = 6;
const REQ_ANNOTATE_BATCH: u8 = 7;
const REQ_SUBSCRIBE: u8 = 8;
const REQ_REPLICA_STATE: u8 = 9;
const REQ_HISTORY: u8 = 10;

impl Encodable for Request {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Request::Ping => enc.u8(REQ_PING),
            Request::Query { sql } => {
                enc.u8(REQ_QUERY);
                enc.str(sql);
            }
            Request::Execute { sql } => {
                enc.u8(REQ_EXECUTE);
                enc.str(sql);
            }
            Request::Annotate { sql } => {
                enc.u8(REQ_ANNOTATE);
                enc.str(sql);
            }
            Request::ZoomIn { sql } => {
                enc.u8(REQ_ZOOMIN);
                enc.str(sql);
            }
            Request::Shutdown => enc.u8(REQ_SHUTDOWN),
            Request::AnnotateBatch { statements } => {
                enc.u8(REQ_ANNOTATE_BATCH);
                enc.seq(statements, |e, s| e.str(s));
            }
            Request::Subscribe {
                shard,
                epoch,
                offset,
            } => {
                enc.u8(REQ_SUBSCRIBE);
                enc.u32(*shard);
                enc.u64(*epoch);
                enc.u64(*offset);
            }
            Request::ReplicaState => enc.u8(REQ_REPLICA_STATE),
            Request::History { annotation } => {
                enc.u8(REQ_HISTORY);
                enc.varint(*annotation);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.u8()? {
            REQ_PING => Request::Ping,
            REQ_QUERY => Request::Query { sql: dec.str()? },
            REQ_EXECUTE => Request::Execute { sql: dec.str()? },
            REQ_ANNOTATE => Request::Annotate { sql: dec.str()? },
            REQ_ZOOMIN => Request::ZoomIn { sql: dec.str()? },
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_ANNOTATE_BATCH => {
                let statements: Vec<String> = dec.seq(super::codec::Decoder::str)?;
                if statements.len() > MAX_BATCH_ITEMS {
                    return Err(Error::Codec(format!(
                        "annotation batch of {} statements exceeds the \
                         {MAX_BATCH_ITEMS}-item limit",
                        statements.len()
                    )));
                }
                Request::AnnotateBatch { statements }
            }
            REQ_SUBSCRIBE => Request::Subscribe {
                shard: dec.u32()?,
                epoch: dec.u64()?,
                offset: dec.u64()?,
            },
            REQ_REPLICA_STATE => Request::ReplicaState,
            REQ_HISTORY => Request::History {
                annotation: dec.varint()?,
            },
            tag => return Err(Error::Codec(format!("unknown request tag {tag}"))),
        })
    }
}

const RESP_PONG: u8 = 1;
const RESP_ACK: u8 = 2;
const RESP_ROWS: u8 = 3;
const RESP_ZOOMED: u8 = 4;
const RESP_ERROR: u8 = 5;
const RESP_SHUTTING_DOWN: u8 = 6;
const RESP_BATCH_ACK: u8 = 7;
const RESP_SUBSCRIBE_ACK: u8 = 8;
const RESP_SNAPSHOT_CHUNK: u8 = 9;
const RESP_WAL_FRAME: u8 = 10;
const RESP_REPLICA_STATE: u8 = 11;
const RESP_HISTORY: u8 = 12;

const ITEM_OK: u8 = 0;
const ITEM_ERR: u8 = 1;

impl Encodable for BatchItem {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            BatchItem::Ok(m) => {
                enc.u8(ITEM_OK);
                enc.str(m);
            }
            BatchItem::Err(e) => {
                enc.u8(ITEM_ERR);
                enc.str(&e.class);
                enc.str(&e.message);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.u8()? {
            ITEM_OK => BatchItem::Ok(dec.str()?),
            ITEM_ERR => BatchItem::Err(WireError {
                class: dec.str()?,
                message: dec.str()?,
            }),
            tag => return Err(Error::Codec(format!("unknown batch item tag {tag}"))),
        })
    }
}

impl Encodable for Response {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Response::Pong { version, served } => {
                enc.u8(RESP_PONG);
                enc.u16(*version);
                enc.u64(*served);
            }
            Response::Ack { messages } => {
                enc.u8(RESP_ACK);
                enc.seq(messages, |e, m| e.str(m));
            }
            Response::Rows(p) => {
                enc.u8(RESP_ROWS);
                p.encode(enc);
            }
            Response::Zoomed(p) => {
                enc.u8(RESP_ZOOMED);
                p.encode(enc);
            }
            Response::Error(e) => {
                enc.u8(RESP_ERROR);
                enc.str(&e.class);
                enc.str(&e.message);
            }
            Response::ShuttingDown => enc.u8(RESP_SHUTTING_DOWN),
            Response::BatchAck { results } => {
                enc.u8(RESP_BATCH_ACK);
                results.encode(enc);
            }
            Response::SubscribeAck {
                epoch,
                offset,
                snapshot,
            } => {
                enc.u8(RESP_SUBSCRIBE_ACK);
                enc.u64(*epoch);
                enc.u64(*offset);
                enc.bool(*snapshot);
            }
            Response::SnapshotChunk { data, last } => {
                enc.u8(RESP_SNAPSHOT_CHUNK);
                enc.bytes(data);
                enc.bool(*last);
            }
            Response::WalFrame {
                epoch,
                offset,
                data,
            } => {
                enc.u8(RESP_WAL_FRAME);
                enc.u64(*epoch);
                enc.u64(*offset);
                enc.bytes(data);
            }
            Response::ReplicaState { shards } => {
                enc.u8(RESP_REPLICA_STATE);
                enc.seq(shards, |e, s| {
                    e.u64(s.epoch);
                    e.u64(s.offset);
                });
            }
            Response::History(p) => {
                enc.u8(RESP_HISTORY);
                p.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.u8()? {
            RESP_PONG => Response::Pong {
                version: dec.u16()?,
                served: dec.u64()?,
            },
            RESP_ACK => Response::Ack {
                messages: dec.seq(super::codec::Decoder::str)?,
            },
            RESP_BATCH_ACK => Response::BatchAck {
                results: Vec::<BatchItem>::decode(dec)?,
            },
            RESP_ROWS => Response::Rows(RowsPayload::decode(dec)?),
            RESP_ZOOMED => Response::Zoomed(ZoomPayload::decode(dec)?),
            RESP_ERROR => Response::Error(WireError {
                class: dec.str()?,
                message: dec.str()?,
            }),
            RESP_SHUTTING_DOWN => Response::ShuttingDown,
            RESP_SUBSCRIBE_ACK => Response::SubscribeAck {
                epoch: dec.u64()?,
                offset: dec.u64()?,
                snapshot: dec.bool()?,
            },
            RESP_SNAPSHOT_CHUNK => Response::SnapshotChunk {
                data: dec.bytes()?.to_vec(),
                last: dec.bool()?,
            },
            RESP_WAL_FRAME => Response::WalFrame {
                epoch: dec.u64()?,
                offset: dec.u64()?,
                data: dec.bytes()?.to_vec(),
            },
            RESP_REPLICA_STATE => Response::ReplicaState {
                shards: dec.seq(|d| {
                    Ok(ShardPosition {
                        epoch: d.u64()?,
                        offset: d.u64()?,
                    })
                })?,
            },
            RESP_HISTORY => Response::History(HistoryPayload::decode(dec)?),
            tag => return Err(Error::Codec(format!("unknown response tag {tag}"))),
        })
    }
}

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_FLOAT: u8 = 2;
const VAL_TEXT: u8 = 3;
const VAL_BOOL: u8 = 4;

impl Encodable for WireValue {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            WireValue::Null => enc.u8(VAL_NULL),
            WireValue::Int(v) => {
                enc.u8(VAL_INT);
                enc.i64(*v);
            }
            WireValue::Float(v) => {
                enc.u8(VAL_FLOAT);
                enc.f64(*v);
            }
            WireValue::Text(s) => {
                enc.u8(VAL_TEXT);
                enc.str(s);
            }
            WireValue::Bool(b) => {
                enc.u8(VAL_BOOL);
                enc.bool(*b);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.u8()? {
            VAL_NULL => WireValue::Null,
            VAL_INT => WireValue::Int(dec.i64()?),
            VAL_FLOAT => WireValue::Float(dec.f64()?),
            VAL_TEXT => WireValue::Text(dec.str()?),
            VAL_BOOL => WireValue::Bool(dec.bool()?),
            tag => return Err(Error::Codec(format!("unknown value tag {tag}"))),
        })
    }
}

impl Encodable for WireRow {
    fn encode(&self, enc: &mut Encoder) {
        self.values.encode(enc);
        enc.seq(&self.summaries, |e, s| e.str(s));
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Self {
            values: Vec::<WireValue>::decode(dec)?,
            summaries: dec.seq(super::codec::Decoder::str)?,
        })
    }
}

impl Encodable for RowsPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.qid);
        enc.seq(&self.columns, |e, c| e.str(c));
        self.rows.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Self {
            qid: dec.varint()?,
            columns: dec.seq(super::codec::Decoder::str)?,
            rows: Vec::<WireRow>::decode(dec)?,
        })
    }
}

impl Encodable for WireAnnotation {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.id);
        enc.str(&self.text);
        enc.option(&self.document, |e, d| e.str(d));
        enc.str(&self.author);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Self {
            id: dec.varint()?,
            text: dec.str()?,
            document: dec.option(super::codec::Decoder::str)?,
            author: dec.str()?,
        })
    }
}

const LIFECYCLE_CREATED: u8 = 0;
const LIFECYCLE_FLAGGED: u8 = 1;
const LIFECYCLE_RETRACTED: u8 = 2;
const LIFECYCLE_CORRECTED: u8 = 3;

impl Encodable for WireLifecycleKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.u8(match self {
            WireLifecycleKind::Created => LIFECYCLE_CREATED,
            WireLifecycleKind::Flagged => LIFECYCLE_FLAGGED,
            WireLifecycleKind::Retracted => LIFECYCLE_RETRACTED,
            WireLifecycleKind::Corrected => LIFECYCLE_CORRECTED,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.u8()? {
            LIFECYCLE_CREATED => WireLifecycleKind::Created,
            LIFECYCLE_FLAGGED => WireLifecycleKind::Flagged,
            LIFECYCLE_RETRACTED => WireLifecycleKind::Retracted,
            LIFECYCLE_CORRECTED => WireLifecycleKind::Corrected,
            tag => return Err(Error::Codec(format!("unknown lifecycle kind tag {tag}"))),
        })
    }
}

impl Encodable for WireLifecycleEvent {
    fn encode(&self, enc: &mut Encoder) {
        self.kind.encode(enc);
        enc.varint(self.at);
        enc.option(&self.note, |e, n| e.str(n));
        enc.option(&self.successor, |e, s| e.varint(*s));
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Self {
            kind: WireLifecycleKind::decode(dec)?,
            at: dec.varint()?,
            note: dec.option(super::codec::Decoder::str)?,
            successor: dec.option(super::codec::Decoder::varint)?,
        })
    }
}

impl Encodable for HistoryPayload {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.annotation);
        self.events.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Self {
            annotation: dec.varint()?,
            events: Vec::<WireLifecycleEvent>::decode(dec)?,
        })
    }
}

impl Encodable for ZoomPayload {
    fn encode(&self, enc: &mut Encoder) {
        self.annotations.encode(enc);
        enc.bool(self.from_cache);
        enc.varint(self.matched_rows);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Self {
            annotations: Vec::<WireAnnotation>::decode(dec)?,
            from_cache: dec.bool()?,
            matched_rows: dec.varint()?,
        })
    }
}

// -- frame I/O ------------------------------------------------------------

/// Serializes one message into a complete **v1 (serial)** frame, length
/// prefix included.
pub fn frame_bytes<T: Encodable>(msg: &T) -> Vec<u8> {
    frame_bytes_versioned(None, msg)
}

/// Serializes one message into a complete **v2 (pipelined)** frame
/// carrying `seq`, length prefix included.
pub fn frame_bytes_seq<T: Encodable>(seq: u64, msg: &T) -> Vec<u8> {
    frame_bytes_versioned(Some(seq), msg)
}

fn frame_bytes_versioned<T: Encodable>(seq: Option<u64>, msg: &T) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(64);
    enc.u8(WIRE_MAGIC[0]);
    enc.u8(WIRE_MAGIC[1]);
    enc.u8(WIRE_MAGIC[2]);
    enc.u8(WIRE_MAGIC[3]);
    match seq {
        None => enc.u16(WIRE_VERSION_SERIAL),
        Some(seq) => {
            enc.u16(WIRE_VERSION);
            enc.u64(seq);
        }
    }
    msg.encode(&mut enc);
    let payload = enc.finish();
    let mut out = Vec::with_capacity(payload.len() + 4);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one **v1** message from a frame payload (the bytes after the
/// length prefix): validates magic and version, then decodes strictly.
/// Serial-only callers (the blocking client, replication subscribers)
/// use this so an unexpected v2 frame is a clean codec error.
pub fn decode_frame<T: Encodable>(payload: &[u8]) -> Result<T> {
    match decode_frame_any(payload)? {
        (None, msg) => Ok(msg),
        (Some(_), _) => Err(Error::Codec(
            "unexpected pipelined (v2) frame on a serial (v1) connection".into(),
        )),
    }
}

/// Decodes one message from a frame payload in **either live version**:
/// returns `(None, msg)` for a v1 frame and `(Some(seq), msg)` for a
/// v2 frame. This is the server-side entry point — the reactor answers
/// in whichever version the request arrived in.
pub fn decode_frame_any<T: Encodable>(payload: &[u8]) -> Result<(Option<u64>, T)> {
    let mut dec = Decoder::new(payload);
    let magic = [dec.u8()?, dec.u8()?, dec.u8()?, dec.u8()?];
    if magic != WIRE_MAGIC {
        return Err(Error::Codec("not an InsightNotes wire frame".into()));
    }
    let seq = match dec.u16()? {
        WIRE_VERSION_SERIAL => None,
        WIRE_VERSION => Some(dec.u64()?),
        version => {
            return Err(Error::Codec(format!(
                "unsupported wire protocol version {version} (expected \
                 {WIRE_VERSION_SERIAL} or {WIRE_VERSION})"
            )))
        }
    };
    let msg = T::decode(&mut dec)?;
    dec.expect_end()?;
    Ok((seq, msg))
}

/// Best-effort peek at the sequence id of a frame payload *prefix*:
/// `Some(seq)` when the first [`V2_HEADER_BYTES`] bytes parse as a v2
/// header, `None` otherwise (v1 frame, foreign bytes, or a prefix too
/// short to tell). Used to address error responses for frames whose
/// bodies were discarded (oversized declared length) — the header
/// streams in first, so the seq is usually recoverable even when the
/// body never is.
pub fn peek_seq(prefix: &[u8]) -> Option<u64> {
    let (magic, rest) = (prefix.get(..4)?, prefix.get(4..)?);
    if magic != WIRE_MAGIC {
        return None;
    }
    let version = u16::from_le_bytes([*rest.first()?, *rest.get(1)?]);
    if version != WIRE_VERSION {
        return None;
    }
    let seq_bytes: [u8; 8] = rest.get(2..10)?.try_into().ok()?;
    Some(u64::from_le_bytes(seq_bytes))
}

/// Writes one message as a **v1** frame and flushes.
pub fn write_frame<T: Encodable>(w: &mut impl Write, msg: &T) -> Result<()> {
    w.write_all(&frame_bytes(msg))?;
    w.flush()?;
    Ok(())
}

/// Writes one message as a **v2** frame carrying `seq` and flushes.
pub fn write_frame_seq<T: Encodable>(w: &mut impl Write, seq: u64, msg: &T) -> Result<()> {
    w.write_all(&frame_bytes_seq(seq, msg))?;
    w.flush()?;
    Ok(())
}

/// Reads one **v1** message frame. Returns `Ok(None)` on clean
/// end-of-stream (the peer closed before starting another frame);
/// errors on mid-frame EOF, oversized lengths, and every decode
/// failure.
pub fn read_frame<T: Encodable>(r: &mut impl Read) -> Result<Option<T>> {
    match read_frame_payload(r)? {
        None => Ok(None),
        Some(payload) => decode_frame(&payload).map(Some),
    }
}

/// Reads one **v2** message frame, returning its sequence id alongside
/// the message. A v1 frame here is a codec error — a pipelined client
/// never receives unnumbered frames once it has switched to v2.
pub fn read_frame_seq<T: Encodable>(r: &mut impl Read) -> Result<Option<(u64, T)>> {
    match read_frame_payload(r)? {
        None => Ok(None),
        Some(payload) => match decode_frame_any(&payload)? {
            (Some(seq), msg) => Ok(Some((seq, msg))),
            (None, _) => Err(Error::Codec(
                "server answered a pipelined (v2) request with a serial (v1) frame".into(),
            )),
        },
    }
}

/// Reads one frame's payload bytes (everything after the length
/// prefix), or `None` on clean end-of-stream.
fn read_frame_payload(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match read_full(r, &mut len_buf)? {
        0 => return Ok(None),
        4 => {}
        n => {
            return Err(Error::Codec(format!(
                "connection closed mid-frame ({n} of 4 length bytes)"
            )))
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(Error::Codec(format!(
            "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got != len {
        return Err(Error::Codec(format!(
            "connection closed mid-frame ({got} of {len} payload bytes)"
        )));
    }
    Ok(Some(payload))
}

/// Reads until `buf` is full or EOF; returns the bytes read. Unlike
/// `read_exact`, a clean EOF at offset 0 is distinguishable from a
/// partial frame.
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    loop {
        let Some(rest) = buf.get_mut(filled..) else {
            return Err(Error::Codec("frame read cursor out of range".into()));
        };
        if rest.is_empty() {
            break;
        }
        match r.read(rest) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encodable + PartialEq + std::fmt::Debug>(msg: &T) {
        let bytes = frame_bytes(msg);
        let mut cursor = &bytes[..];
        let got: T = read_frame(&mut cursor).unwrap().expect("one frame");
        assert_eq!(&got, msg);
        assert!(cursor.is_empty());

        // Every message also survives the pipelined layout, with its
        // sequence id intact.
        let seq = 0x0102_0304_0506_0708;
        let bytes = frame_bytes_seq(seq, msg);
        let mut cursor = &bytes[..];
        let (got_seq, got): (u64, T) = read_frame_seq(&mut cursor).unwrap().expect("one frame");
        assert_eq!(got_seq, seq);
        assert_eq!(&got, msg);
        assert!(cursor.is_empty());
    }

    #[test]
    fn requests_round_trip() {
        round_trip(&Request::Ping);
        round_trip(&Request::Query {
            sql: "SELECT name FROM birds".into(),
        });
        round_trip(&Request::Execute {
            sql: "CREATE TABLE t (x INT); INSERT INTO t VALUES (1)".into(),
        });
        round_trip(&Request::Annotate {
            sql: "ADD ANNOTATION 'seen diving' ON birds WHERE id = 3".into(),
        });
        round_trip(&Request::ZoomIn {
            sql: "ZOOMIN REFERENCE QID 101 ON C LABEL 'Behavior'".into(),
        });
        round_trip(&Request::Shutdown);
        round_trip(&Request::AnnotateBatch {
            statements: vec![
                "ADD ANNOTATION 'seen diving' ON birds WHERE id = 3".into(),
                "ADD ANNOTATION 'lesions on wing' ON birds WHERE id = 4".into(),
            ],
        });
        round_trip(&Request::AnnotateBatch { statements: vec![] });
        round_trip(&Request::Subscribe {
            shard: 3,
            epoch: 7,
            offset: 4096,
        });
        round_trip(&Request::Subscribe {
            shard: 0,
            epoch: 0,
            offset: 0,
        });
        round_trip(&Request::ReplicaState);
        round_trip(&Request::History { annotation: 42 });
    }

    #[test]
    fn history_round_trips_every_lifecycle_kind() {
        // Request::History / Response::History carry the full timeline:
        // every WireLifecycleKind survives the codec, with and without
        // the optional note/successor payloads.
        round_trip(&Response::History(HistoryPayload {
            annotation: 7,
            events: vec![
                WireLifecycleEvent {
                    kind: WireLifecycleKind::Created,
                    at: 3,
                    note: None,
                    successor: None,
                },
                WireLifecycleEvent {
                    kind: WireLifecycleKind::Flagged,
                    at: 5,
                    note: Some("disputed by reviewer".into()),
                    successor: None,
                },
                WireLifecycleEvent {
                    kind: WireLifecycleKind::Corrected,
                    at: 9,
                    note: None,
                    successor: Some(12),
                },
                WireLifecycleEvent {
                    kind: WireLifecycleKind::Retracted,
                    at: 11,
                    note: None,
                    successor: None,
                },
            ],
        }));
        round_trip(&Response::History(HistoryPayload {
            annotation: 1,
            events: vec![],
        }));
        // An unknown kind tag is a structured codec error, not a panic.
        for kind in [
            WireLifecycleKind::Created,
            WireLifecycleKind::Flagged,
            WireLifecycleKind::Retracted,
            WireLifecycleKind::Corrected,
        ] {
            assert!(!kind.to_string().is_empty());
        }
        let mut enc = Encoder::with_capacity(8);
        enc.u8(99);
        let bytes = enc.finish();
        let err = WireLifecycleKind::decode(&mut Decoder::new(&bytes)).unwrap_err();
        assert_eq!(err.class(), "codec");
    }

    #[test]
    fn replication_responses_round_trip() {
        round_trip(&Response::SubscribeAck {
            epoch: 2,
            offset: 16,
            snapshot: true,
        });
        round_trip(&Response::SubscribeAck {
            epoch: 9,
            offset: 88_124,
            snapshot: false,
        });
        round_trip(&Response::SnapshotChunk {
            data: vec![0xDE, 0xAD, 0xBE, 0xEF],
            last: false,
        });
        round_trip(&Response::SnapshotChunk {
            data: vec![],
            last: true,
        });
        round_trip(&Response::WalFrame {
            epoch: 2,
            offset: 16,
            data: vec![1, 2, 3, 4, 5],
        });
        // Empty data is the heartbeat form.
        round_trip(&Response::WalFrame {
            epoch: 2,
            offset: 1024,
            data: vec![],
        });
        round_trip(&Response::ReplicaState {
            shards: vec![
                ShardPosition {
                    epoch: 1,
                    offset: 16,
                },
                ShardPosition {
                    epoch: 3,
                    offset: 9999,
                },
            ],
        });
        round_trip(&Response::ReplicaState { shards: vec![] });
    }

    #[test]
    fn batch_ack_round_trips_mixed_results() {
        round_trip(&Response::BatchAck {
            results: vec![
                BatchItem::Ok("annotation 1 attached to 2 row(s)".into()),
                BatchItem::Err(WireError {
                    class: "annotation".into(),
                    message: "annotation matched no rows; nothing attached".into(),
                }),
                BatchItem::Ok("annotation 2 attached to 1 row(s)".into()),
            ],
        });
        round_trip(&Response::BatchAck { results: vec![] });
        assert!(BatchItem::Ok("x".into()).is_ok());
        assert_eq!(
            BatchItem::Err(WireError {
                class: "catalog".into(),
                message: "unknown table `t`".into(),
            })
            .into_result()
            .unwrap_err()
            .class(),
            "catalog"
        );
    }

    #[test]
    fn batch_item_cap_is_a_codec_error_at_the_boundary() {
        // Exactly MAX_BATCH_ITEMS decodes fine.
        let at_cap = Request::AnnotateBatch {
            statements: vec![String::new(); MAX_BATCH_ITEMS],
        };
        let bytes = frame_bytes(&at_cap);
        let got: Request = read_frame(&mut &bytes[..]).unwrap().expect("one frame");
        assert_eq!(got, at_cap);

        // One past the cap is rejected as a structured codec error — the
        // frame itself is well-delimited, so a server answers with an
        // error frame instead of dropping the connection.
        let over = Request::AnnotateBatch {
            statements: vec![String::new(); MAX_BATCH_ITEMS + 1],
        };
        let bytes = frame_bytes(&over);
        let err = read_frame::<Request>(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.class(), "codec");
        assert!(err.to_string().contains("item limit"), "{err}");
    }

    #[test]
    fn responses_round_trip() {
        round_trip(&Response::Pong {
            version: WIRE_VERSION,
            served: 17,
        });
        round_trip(&Response::Ack {
            messages: vec!["table `t` created".into(), "1 row(s) inserted".into()],
        });
        round_trip(&Response::Rows(RowsPayload {
            qid: 104,
            columns: vec!["name".into(), "weight".into()],
            rows: vec![WireRow {
                values: vec![WireValue::Text("Swan Goose".into()), WireValue::Float(3.25)],
                summaries: vec!["ClassBird1 [(Behavior, 2), (Other, 0)]".into()],
            }],
        }));
        round_trip(&Response::Zoomed(ZoomPayload {
            annotations: vec![WireAnnotation {
                id: 9,
                text: "found eating stonewort".into(),
                document: Some("survey.pdf".into()),
                author: "curator".into(),
            }],
            from_cache: true,
            matched_rows: 3,
        }));
        round_trip(&Response::ShuttingDown);
        round_trip(&Response::Rows(RowsPayload {
            qid: 0,
            columns: vec![],
            rows: vec![WireRow {
                values: vec![WireValue::Null, WireValue::Int(-5), WireValue::Bool(true)],
                summaries: vec![],
            }],
        }));
    }

    #[test]
    fn errors_round_trip_the_engine_error() {
        for e in [
            Error::Parse("unexpected token".into()),
            Error::Catalog("unknown table `t`".into()),
            Error::ZoomIn("unknown QID 7".into()),
            Error::Io(std::io::Error::other("disk gone")),
        ] {
            let wire = WireError::from(&e);
            round_trip(&Response::Error(wire.clone()));
            let back = wire.into_error();
            assert_eq!(back.class(), e.class());
            assert_eq!(back.to_string(), e.to_string());
        }
    }

    #[test]
    fn unknown_error_class_degrades_gracefully() {
        let back = WireError {
            class: "quantum".into(),
            message: "flux".into(),
        }
        .into_error();
        assert_eq!(back.class(), "execution");
        assert!(back.to_string().contains("quantum"));
    }

    #[test]
    fn clean_eof_is_none_and_mid_frame_eof_is_an_error() {
        let mut empty: &[u8] = &[];
        assert!(read_frame::<Request>(&mut empty).unwrap().is_none());

        let bytes = frame_bytes(&Request::Ping);
        for cut in 1..bytes.len() {
            let mut partial = &bytes[..cut];
            assert!(
                read_frame::<Request>(&mut partial).is_err(),
                "cut at {cut} must error"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = frame_bytes(&Request::Ping);
        bytes[4] = b'X';
        assert!(read_frame::<Request>(&mut &bytes[..]).is_err());

        let mut bytes = frame_bytes(&Request::Ping);
        bytes[8] = 99; // version low byte
        let err = read_frame::<Request>(&mut &bytes[..]).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");

        // A hypothetical v3 is rejected by the any-version decoder too.
        let mut bytes = frame_bytes_seq(7, &Request::Ping);
        bytes[8] = 3;
        assert!(decode_frame_any::<Request>(&bytes[4..]).is_err());
    }

    #[test]
    fn versions_stay_in_their_lanes() {
        // The serial reader refuses a pipelined frame…
        let v2 = frame_bytes_seq(42, &Request::Ping);
        let err = read_frame::<Request>(&mut &v2[..]).unwrap_err();
        assert!(err.to_string().contains("pipelined"), "{err}");

        // …and the pipelined reader refuses a serial frame.
        let v1 = frame_bytes(&Request::Ping);
        let err = read_frame_seq::<Request>(&mut &v1[..]).unwrap_err();
        assert!(err.to_string().contains("serial"), "{err}");

        // The server-side decoder accepts both and reports which.
        let (seq, _) = decode_frame_any::<Request>(&v1[4..]).unwrap();
        assert_eq!(seq, None);
        let (seq, _) = decode_frame_any::<Request>(&v2[4..]).unwrap();
        assert_eq!(seq, Some(42));
    }

    #[test]
    fn seq_ids_round_trip_across_the_full_u64_range() {
        for seq in [0u64, 1, u64::MAX, 0xDEAD_BEEF_CAFE_F00D] {
            let bytes = frame_bytes_seq(seq, &Request::Ping);
            let (got, msg) = read_frame_seq::<Request>(&mut &bytes[..])
                .unwrap()
                .expect("one frame");
            assert_eq!(got, seq);
            assert_eq!(msg, Request::Ping);
        }
    }

    #[test]
    fn peek_seq_recovers_the_header_from_a_prefix() {
        let bytes = frame_bytes_seq(0xABCD, &Request::Ping);
        let payload = &bytes[4..];
        // The full payload and any prefix long enough to hold the
        // header both recover the seq…
        assert_eq!(peek_seq(payload), Some(0xABCD));
        assert_eq!(peek_seq(&payload[..V2_HEADER_BYTES]), Some(0xABCD));
        // …shorter prefixes, v1 frames, and foreign bytes do not.
        assert_eq!(peek_seq(&payload[..V2_HEADER_BYTES - 1]), None);
        let v1 = frame_bytes(&Request::Ping);
        assert_eq!(peek_seq(&v1[4..]), None);
        assert_eq!(peek_seq(b"not a frame at all"), None);
    }

    #[test]
    fn oversized_length_prefix_fails_without_allocating() {
        let mut bytes = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        let err = read_frame::<Request>(&mut &bytes[..]).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
    }

    #[test]
    fn trailing_bytes_inside_a_frame_are_rejected() {
        let inner = frame_bytes(&Request::Ping);
        // Rebuild the frame with one junk byte appended to the payload.
        let mut payload = inner[4..].to_vec();
        payload.push(0xAA);
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        assert_eq!(
            read_frame::<Request>(&mut &bytes[..]).unwrap_err().class(),
            "codec"
        );
    }
}
