#![warn(missing_docs)]
//! # insightnotes-common
//!
//! Shared substrate for the InsightNotes workspace: strongly-typed
//! identifiers, the workspace-wide error type, the compact sorted
//! [`IdSet`] that backs exact summary algebra, a hand-written
//! binary codec used for the disk result cache, a logical clock used by
//! cache replacement policies, and the [`wire`] frame protocol spoken
//! between `insightd` and its clients.
//!
//! Everything in this crate is dependency-free (std only) so that every
//! other crate can build on it without pulling anything else in.

pub mod clock;
pub mod codec;
pub mod crc;
pub mod error;
pub mod ids;
pub mod idset;
pub mod wire;

pub use clock::LogicalClock;
pub use codec::{Decoder, Encodable, Encoder};
pub use crc::crc32;
pub use error::{Error, Result};
pub use ids::{AnnotationId, ColumnId, InstanceId, Qid, RowId, TableId};
pub use idset::IdSet;
