//! The workspace-wide error type.
//!
//! One error enum keeps the public API surface small: every fallible
//! operation in the workspace returns [`Result<T>`]. Variants are grouped by
//! subsystem so callers can match on the class of failure without string
//! inspection.

use std::fmt;

/// Convenience alias used across all InsightNotes crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Error raised by any InsightNotes subsystem.
#[derive(Debug)]
pub enum Error {
    /// SQL lexing / parsing failure. Carries a human-readable message with
    /// the offending position already embedded.
    Parse(String),
    /// Unknown table / column / instance, duplicate definition, or other
    /// catalog-level inconsistency.
    Catalog(String),
    /// Type mismatch during planning or expression evaluation.
    Type(String),
    /// Runtime failure inside the executor (e.g. arity mismatch, overflow).
    Execution(String),
    /// Annotation-store failure (unknown annotation id, bad attachment).
    Annotation(String),
    /// Summarization-framework failure (unknown summary type, instance
    /// misconfiguration, algebra violation).
    Summary(String),
    /// Zoom-in failure (unknown QID, evicted result, bad component index).
    ZoomIn(String),
    /// Binary codec failure (truncated or corrupt buffer).
    Codec(String),
    /// The statement mutates state but was sent to a read-only replica.
    /// Carries a hint naming the primary to retry against.
    ReadOnlyReplica(String),
    /// Underlying I/O failure (result-cache disk operations).
    Io(std::io::Error),
}

impl Error {
    /// Short machine-readable class name, used by the shell and in tests.
    pub fn class(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::Catalog(_) => "catalog",
            Error::Type(_) => "type",
            Error::Execution(_) => "execution",
            Error::Annotation(_) => "annotation",
            Error::Summary(_) => "summary",
            Error::ZoomIn(_) => "zoomin",
            Error::Codec(_) => "codec",
            Error::ReadOnlyReplica(_) => "read_only_replica",
            Error::Io(_) => "io",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Catalog(m) => write!(f, "catalog error: {m}"),
            Error::Type(m) => write!(f, "type error: {m}"),
            Error::Execution(m) => write!(f, "execution error: {m}"),
            Error::Annotation(m) => write!(f, "annotation error: {m}"),
            Error::Summary(m) => write!(f, "summary error: {m}"),
            Error::ZoomIn(m) => write!(f, "zoom-in error: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::ReadOnlyReplica(m) => write!(f, "read-only replica: {m}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_class_and_message() {
        let e = Error::Parse("unexpected token `)` at 12".into());
        assert_eq!(e.to_string(), "parse error: unexpected token `)` at 12");
        assert_eq!(e.class(), "parse");
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert_eq!(e.class(), "io");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn every_class_is_distinct() {
        let classes = [
            Error::Parse(String::new()).class(),
            Error::Catalog(String::new()).class(),
            Error::Type(String::new()).class(),
            Error::Execution(String::new()).class(),
            Error::Annotation(String::new()).class(),
            Error::Summary(String::new()).class(),
            Error::ZoomIn(String::new()).class(),
            Error::Codec(String::new()).class(),
            Error::ReadOnlyReplica(String::new()).class(),
        ];
        let unique: std::collections::HashSet<_> = classes.iter().collect();
        assert_eq!(unique.len(), classes.len());
    }
}
