//! Hand-written binary codec.
//!
//! The zoom-in result cache serializes whole result sets (tuples plus their
//! summary objects) to disk, and the workload tooling snapshots generated
//! databases. Rather than pulling in `serde` + a format crate, the workspace
//! uses this small, explicit codec: little-endian fixed-width primitives,
//! LEB128 varints for lengths and ids, and length-prefixed UTF-8 strings.
//!
//! Types participate by implementing [`Encodable`]. Decoding is strict:
//! truncated or trailing bytes produce [`Error::Codec`].

use crate::error::{Error, Result};
use crate::idset::IdSet;

/// Byte sink with primitive write helpers.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an encoder with a pre-sized buffer.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Finishes encoding and returns the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a single byte.
    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    #[inline]
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `i64`.
    #[inline]
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an IEEE-754 `f64`.
    #[inline]
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a LEB128 varint (lengths, dense ids).
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Writes a bool as one byte.
    #[inline]
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) {
        self.varint(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes an id set as a varint count followed by delta-encoded ids.
    /// Delta encoding exploits the sorted invariant: consecutive dense ids
    /// encode in one byte each.
    pub fn idset(&mut self, set: &IdSet) {
        self.varint(set.len() as u64);
        let mut prev = 0u64;
        for id in set.iter() {
            self.varint(id - prev);
            prev = id;
        }
    }

    /// Writes `Some`/`None` followed by the payload when present.
    pub fn option<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            Some(x) => {
                self.bool(true);
                f(self, x);
            }
            None => self.bool(false),
        }
    }

    /// Writes a varint length followed by each element.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.varint(items.len() as u64);
        for item in items {
            f(self, item);
        }
    }
}

/// Byte source with primitive read helpers. Tracks its position; all reads
/// bounds-check and fail with [`Error::Codec`] on truncation.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless the whole buffer was consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(Error::Codec(format!("{} trailing bytes", self.remaining())))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::Codec(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an IEEE-754 `f64`.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(Error::Codec("varint overflow".into()));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a bool (rejects values other than 0/1).
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::Codec(format!("invalid bool byte {b}"))),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.varint()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|e| Error::Codec(format!("invalid utf-8: {e}")))
    }

    /// Reads a delta-encoded id set (inverse of [`Encoder::idset`]).
    pub fn idset(&mut self) -> Result<IdSet> {
        let len = self.varint()? as usize;
        let mut ids = Vec::with_capacity(len.min(1 << 16));
        let mut prev = 0u64;
        for i in 0..len {
            let delta = self.varint()?;
            if i > 0 && delta == 0 {
                return Err(Error::Codec("idset not strictly increasing".into()));
            }
            prev = prev
                .checked_add(delta)
                .ok_or_else(|| Error::Codec("idset delta overflow".into()))?;
            ids.push(prev);
        }
        Ok(IdSet::from_sorted(ids))
    }

    /// Reads an `Option` written by [`Encoder::option`].
    pub fn option<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<Option<T>> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence written by [`Encoder::seq`].
    pub fn seq<T>(&mut self, mut f: impl FnMut(&mut Self) -> Result<T>) -> Result<Vec<T>> {
        let len = self.varint()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

/// Implemented by every type that round-trips through the binary codec.
pub trait Encodable: Sized {
    /// Appends this value's encoding to `enc`.
    fn encode(&self, enc: &mut Encoder);
    /// Decodes one value from `dec`.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.finish()
    }

    /// Decodes from a buffer, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        dec.expect_end()?;
        Ok(v)
    }
}

impl Encodable for IdSet {
    fn encode(&self, enc: &mut Encoder) {
        enc.idset(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.idset()
    }
}

impl Encodable for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.str()
    }
}

impl Encodable for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        dec.u64()
    }
}

impl<T: Encodable> Encodable for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.len() as u64);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let len = dec.varint()? as usize;
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u16(300);
        e.u32(70_000);
        e.u64(u64::MAX);
        e.i64(-42);
        e.f64(3.5);
        e.bool(true);
        e.str("héllo");
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u16().unwrap(), 300);
        assert_eq!(d.u32().unwrap(), 70_000);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap(), 3.5);
        assert!(d.bool().unwrap());
        assert_eq!(d.str().unwrap(), "héllo");
        d.expect_end().unwrap();
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut e = Encoder::new();
            e.varint(v);
            let buf = e.finish();
            let mut d = Decoder::new(&buf);
            assert_eq!(d.varint().unwrap(), v, "value {v}");
            d.expect_end().unwrap();
        }
    }

    #[test]
    fn idset_round_trip_and_compression() {
        let set: IdSet = (1000..2000u64).collect();
        let bytes = set.to_bytes();
        // Dense ids delta-encode to ~1 byte each plus the base.
        assert!(bytes.len() < 1024 + 16, "got {} bytes", bytes.len());
        assert_eq!(IdSet::from_bytes(&bytes).unwrap(), set);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let set: IdSet = (0..10u64).collect();
        let bytes = set.to_bytes();
        let err = IdSet::from_bytes(&bytes[..bytes.len() - 1]).unwrap_err();
        assert_eq!(err.class(), "codec");
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = String::from("x").to_bytes();
        bytes.push(0);
        assert_eq!(String::from_bytes(&bytes).unwrap_err().class(), "codec");
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut d = Decoder::new(&[2]);
        assert!(d.bool().is_err());
    }

    #[test]
    fn option_and_seq_round_trip() {
        let mut e = Encoder::new();
        e.option(&Some(5u64), |e, v| e.u64(*v));
        e.option(&None::<u64>, |e, v| e.u64(*v));
        e.seq(&[1u64, 2, 3], |e, v| e.varint(*v));
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.option(super::Decoder::u64).unwrap(), Some(5));
        assert_eq!(d.option(super::Decoder::u64).unwrap(), None);
        assert_eq!(d.seq(super::Decoder::varint).unwrap(), vec![1, 2, 3]);
        d.expect_end().unwrap();
    }

    #[test]
    fn vec_of_strings_round_trips() {
        let v = vec!["a".to_string(), "".to_string(), "ccc".to_string()];
        assert_eq!(Vec::<String>::from_bytes(&v.to_bytes()).unwrap(), v);
    }
}
