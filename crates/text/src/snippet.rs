//! Extractive text summarization.
//!
//! Snippet summary instances compress large-object annotations (attached
//! articles, long observations) into short snippets. The method is the
//! classic frequency-based extractive scheme surveyed by Nenkova & McKeown
//! \[24\]: score each sentence by the mean document-frequency weight of its
//! content words, add a small position prior (leading sentences of an
//! article are disproportionately informative), pick the top sentences and
//! emit them in document order.

use crate::token::{sentences, Tokenizer};
use std::collections::HashMap;

/// Tuning knobs for extractive summarization.
#[derive(Debug, Clone)]
pub struct SnippetConfig {
    /// Maximum number of sentences in the snippet.
    pub max_sentences: usize,
    /// Hard cap on snippet length in characters (applied after sentence
    /// selection; the snippet is truncated at a char boundary with `…`).
    pub max_chars: usize,
    /// Weight of the position prior in `[0, 1]`.
    pub position_weight: f32,
}

impl Default for SnippetConfig {
    fn default() -> Self {
        Self {
            max_sentences: 3,
            max_chars: 280,
            position_weight: 0.2,
        }
    }
}

/// Produces an extractive snippet of `text`.
///
/// Returns the original text (possibly char-truncated) when it has at most
/// `max_sentences` sentences — short annotations pass through unchanged.
pub fn summarize_extractive(text: &str, config: &SnippetConfig) -> String {
    let sents = sentences(text);
    if sents.is_empty() {
        return String::new();
    }
    if sents.len() <= config.max_sentences {
        return truncate_chars(text.trim(), config.max_chars);
    }

    let tokenizer = Tokenizer::default();
    // Document-level term frequencies.
    let mut tf: HashMap<String, f32> = HashMap::new();
    let tokenized: Vec<Vec<String>> = sents.iter().map(|s| tokenizer.tokenize(s)).collect();
    for toks in &tokenized {
        for t in toks {
            *tf.entry(t.clone()).or_insert(0.0) += 1.0;
        }
    }
    let max_tf = tf.values().copied().fold(1.0f32, f32::max);

    // Score = mean normalized tf of content words + position prior.
    let n = sents.len() as f32;
    let mut scored: Vec<(usize, f32)> = tokenized
        .iter()
        .enumerate()
        .map(|(i, toks)| {
            let content = if toks.is_empty() {
                0.0
            } else {
                toks.iter().map(|t| tf[t] / max_tf).sum::<f32>() / toks.len() as f32
            };
            let position = 1.0 - (i as f32 / n);
            (
                i,
                (1.0 - config.position_weight) * content + config.position_weight * position,
            )
        })
        .collect();

    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    let mut chosen: Vec<usize> = scored
        .iter()
        .take(config.max_sentences)
        .map(|&(i, _)| i)
        .collect();
    chosen.sort_unstable();

    let snippet = chosen
        .into_iter()
        .map(|i| sents[i])
        .collect::<Vec<_>>()
        .join(" ");
    truncate_chars(&snippet, config.max_chars)
}

/// Truncates at a char boundary, appending `…` when shortened.
fn truncate_chars(s: &str, max_chars: usize) -> String {
    if s.chars().count() <= max_chars {
        return s.to_string();
    }
    let mut out: String = s.chars().take(max_chars.saturating_sub(1)).collect();
    out.push('…');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn article() -> String {
        let mut s = String::from(
            "The swan goose is a large goose with a natural breeding range in Mongolia. \
             It winters mainly in central and eastern China. ",
        );
        let fillers = [
            "Rainfall varied across the basin yesterday.",
            "Several hikers reported muddy trails upstream.",
            "Wind gusts reached notable speeds overnight.",
            "Cloud cover limited visibility at the ridge.",
            "Temperatures dipped sharply before sunrise.",
            "Barometric readings fluctuated through midday.",
            "Fog settled densely along the valley floor.",
            "Humidity climbed steadily toward the evening.",
            "Thunder rumbled faintly beyond the foothills.",
            "Drizzle persisted intermittently until dusk.",
        ];
        for f in fillers {
            s.push_str(f);
            s.push(' ');
        }
        s.push_str("The swan goose population is declining due to habitat loss in China.");
        s
    }

    #[test]
    fn short_text_passes_through() {
        let cfg = SnippetConfig::default();
        let text = "Seen at dawn. Eating stonewort.";
        assert_eq!(summarize_extractive(text, &cfg), text);
    }

    #[test]
    fn empty_text_yields_empty_snippet() {
        assert_eq!(summarize_extractive("", &SnippetConfig::default()), "");
    }

    #[test]
    fn long_text_is_compressed() {
        let cfg = SnippetConfig::default();
        let art = article();
        let snip = summarize_extractive(&art, &cfg);
        assert!(snip.len() < art.len());
        assert!(snip.chars().count() <= cfg.max_chars);
    }

    #[test]
    fn snippet_prefers_topical_sentences() {
        let cfg = SnippetConfig {
            max_sentences: 2,
            max_chars: 1000,
            position_weight: 0.2,
        };
        let snip = summarize_extractive(&article(), &cfg);
        // "swan goose" and "China" recur; filler sentences each introduce
        // unique low-frequency terms, so topical sentences win.
        assert!(
            snip.to_lowercase().contains("swan goose"),
            "snippet: {snip}"
        );
    }

    #[test]
    fn sentences_appear_in_document_order() {
        let cfg = SnippetConfig {
            max_sentences: 2,
            max_chars: 1000,
            position_weight: 1.0, // pure position → first two sentences
        };
        let snip = summarize_extractive(&article(), &cfg);
        assert!(snip.starts_with("The swan goose is a large goose"));
    }

    #[test]
    fn truncation_is_char_safe() {
        let s = "é".repeat(100);
        let out = truncate_chars(&s, 10);
        assert_eq!(out.chars().count(), 10);
        assert!(out.ends_with('…'));
    }
}
