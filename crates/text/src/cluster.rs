//! Online leader–follower clustering over sparse vectors.
//!
//! The Cluster summary type groups a tuple's annotations by content
//! similarity and reports one representative per group. Because annotations
//! arrive as a stream, clustering must be *online*: each new vector is
//! assigned to the nearest existing cluster if its cosine similarity to the
//! centroid reaches the instance's threshold, otherwise it seeds a new
//! cluster — the classic leader–follower scheme used in text-stream
//! clustering \[23\].
//!
//! Centroids are unnormalized sums truncated to a bounded number of terms,
//! so a cluster's memory stays O(1) regardless of how many members it
//! absorbs. The `merge` operation — needed by the join operator's summary
//! merge — combines clusters from two clusterings whose centroids are
//! mutually similar and keeps the rest separate, exactly the behavior
//! Figure 2 of the paper illustrates (groups A1/B5 combine; A5 and B7
//! propagate separately).

use crate::vector::SparseVector;

/// Tuning knobs for the online clusterer.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Cosine similarity required to join an existing cluster.
    pub threshold: f32,
    /// Maximum number of centroid terms retained (top-k by weight).
    pub centroid_terms: usize,
    /// Cluster-count budget. Once reached, a vector that matches no
    /// existing cluster joins its *nearest* cluster instead of founding a
    /// new one — the standard bounded-budget move in stream clustering,
    /// and what keeps summary objects O(1) in size and pairwise merge
    /// cost O(budget²) regardless of how many annotations a tuple
    /// accumulates.
    pub max_groups: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            threshold: 0.4,
            centroid_terms: 16,
            max_groups: 16,
        }
    }
}

/// One cluster: bounded centroid plus member bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Unnormalized centroid (sum of member vectors, truncated).
    pub centroid: SparseVector,
    /// Member payload ids with their similarity-at-insert score, sorted
    /// by id (so overlap checks during merges are linear two-pointer
    /// scans). The score orders representative election: highest score =
    /// most central member.
    pub members: Vec<(u64, f32)>,
}

impl Cluster {
    /// Reassembles a cluster from its parts (codec decode path).
    pub fn from_parts(centroid: SparseVector, mut members: Vec<(u64, f32)>) -> Self {
        members.sort_by_key(|&(id, _)| id);
        Self { centroid, members }
    }

    /// Inserts a member keeping the by-id sort; ignores duplicate ids.
    fn insert_member(&mut self, id: u64, score: f32) {
        if let Err(pos) = self.members.binary_search_by_key(&id, |&(m, _)| m) {
            self.members.insert(pos, (id, score));
        }
    }

    /// True when the two clusters share any member id (linear merge scan
    /// over the sorted lists).
    fn shares_member(&self, other: &Cluster) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.members.len() && j < other.members.len() {
            match self.members[i].0.cmp(&other.members[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    fn new(id: u64, vector: SparseVector) -> Self {
        Self {
            centroid: vector,
            members: vec![(id, 1.0)],
        }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member id with the highest centrality score (ties → smaller id),
    /// i.e. the cluster's representative.
    pub fn representative(&self) -> Option<u64> {
        self.members
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.0.cmp(&a.0))
            })
            .map(|&(id, _)| id)
    }
}

/// An incremental clustering of payload ids (annotation ids in practice).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineClusterer {
    config: ClusterConfig,
    clusters: Vec<Cluster>,
}

impl OnlineClusterer {
    /// Creates an empty clustering.
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            config,
            clusters: Vec::new(),
        }
    }

    /// Reassembles a clustering from its parts (codec decode path).
    pub fn from_parts(config: ClusterConfig, clusters: Vec<Cluster>) -> Self {
        Self { config, clusters }
    }

    /// The clusters, in creation order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// True when no clusters exist.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Adds `(id, vector)`, returning the index of the cluster it joined.
    pub fn add(&mut self, id: u64, vector: SparseVector) -> usize {
        let mut best: Option<(usize, f32)> = None;
        for (i, c) in self.clusters.iter().enumerate() {
            let sim = c.centroid.cosine(&vector);
            if sim >= self.config.threshold && best.is_none_or(|(_, s)| sim > s) {
                best = Some((i, sim));
            }
        }
        match best {
            Some((i, sim)) => {
                let c = &mut self.clusters[i];
                c.insert_member(id, sim);
                c.centroid.add_scaled(&vector, 1.0);
                c.centroid.truncate_top_k(self.config.centroid_terms);
                i
            }
            None if self.clusters.len() < self.config.max_groups => {
                self.clusters.push(Cluster::new(id, vector));
                self.clusters.len() - 1
            }
            None => {
                // Budget reached: join the nearest cluster regardless of
                // the threshold (smallest index wins ties, so the choice
                // is deterministic).
                let i = self.nearest_cluster(&vector).expect("budget ≥ 1 cluster");
                let c = &mut self.clusters[i];
                let sim = c.centroid.cosine(&vector);
                c.insert_member(id, sim);
                c.centroid.add_scaled(&vector, 1.0);
                c.centroid.truncate_top_k(self.config.centroid_terms);
                i
            }
        }
    }

    /// Index of the cluster with the most-similar centroid.
    fn nearest_cluster(&self, vector: &SparseVector) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, c) in self.clusters.iter().enumerate() {
            let sim = c.centroid.cosine(vector);
            if best.is_none_or(|(_, s)| sim > s) {
                best = Some((i, sim));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Absorbs one foreign cluster into cluster `i`, deduplicating shared
    /// member ids (linear merge of the sorted member lists).
    fn absorb(&mut self, i: usize, other: &Cluster) {
        let host = &mut self.clusters[i];
        let mut merged = Vec::with_capacity(host.members.len() + other.members.len());
        let (mut a, mut b) = (0, 0);
        while a < host.members.len() && b < other.members.len() {
            match host.members[a].0.cmp(&other.members[b].0) {
                std::cmp::Ordering::Less => {
                    merged.push(host.members[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.members[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push(host.members[a]);
                    a += 1;
                    b += 1;
                }
            }
        }
        merged.extend_from_slice(&host.members[a..]);
        merged.extend_from_slice(&other.members[b..]);
        host.members = merged;
        host.centroid.add_scaled(&other.centroid, 1.0);
        host.centroid.truncate_top_k(self.config.centroid_terms);
    }

    /// Removes a set of member ids everywhere, dropping emptied clusters.
    /// Centroids are *not* rebuilt (raw vectors are gone by design); they
    /// remain a bounded sketch of everything the cluster has absorbed,
    /// which is the trade the paper's summaries make.
    pub fn remove_members(&mut self, ids: &dyn Fn(u64) -> bool) {
        for c in &mut self.clusters {
            c.members.retain(|&(id, _)| !ids(id));
        }
        self.clusters.retain(|c| !c.is_empty());
    }

    /// Merges another clustering into this one. A cluster that shares a
    /// member id with (or whose centroid is similar to) an existing
    /// cluster combines with it, deduplicating shared members; otherwise
    /// it is appended — or, at the budget, absorbed by its nearest
    /// cluster.
    pub fn merge(&mut self, other: &OnlineClusterer) {
        // Centroid norms are consulted O(|self| × |other|) times; cache
        // them and refresh only the absorbing cluster's entry.
        let mut norms: Vec<f32> = self.clusters.iter().map(|c| c.centroid.norm()).collect();
        'outer: for oc in &other.clusters {
            let oc_norm = oc.centroid.norm();
            for (i, sc) in self.clusters.iter().enumerate() {
                if sc.shares_member(oc)
                    || sc
                        .centroid
                        .cosine_with_norms(norms[i], &oc.centroid, oc_norm)
                        >= self.config.threshold
                {
                    self.absorb(i, oc);
                    norms[i] = self.clusters[i].centroid.norm();
                    continue 'outer;
                }
            }
            if self.clusters.len() < self.config.max_groups {
                self.clusters.push(oc.clone());
                norms.push(oc_norm);
            } else {
                let i = self
                    .nearest_cluster_with_norms(&oc.centroid, oc_norm, &norms)
                    .expect("non-empty");
                self.absorb(i, oc);
                norms[i] = self.clusters[i].centroid.norm();
            }
        }
    }

    /// Nearest cluster using cached norms.
    fn nearest_cluster_with_norms(
        &self,
        vector: &SparseVector,
        vector_norm: f32,
        norms: &[f32],
    ) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, c) in self.clusters.iter().enumerate() {
            let sim = c.centroid.cosine_with_norms(norms[i], vector, vector_norm);
            if best.is_none_or(|(_, s)| sim > s) {
                best = Some((i, sim));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Total members across clusters.
    pub fn total_members(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocabulary;

    fn vector(vocab: &mut Vocabulary, terms: &[&str]) -> SparseVector {
        let ids: Vec<_> = terms.iter().map(|t| vocab.intern(t)).collect();
        SparseVector::from_term_ids(&ids)
    }

    #[test]
    fn similar_vectors_share_a_cluster() {
        let mut vocab = Vocabulary::new();
        let mut cl = OnlineClusterer::new(ClusterConfig::default());
        let a = cl.add(1, vector(&mut vocab, &["eating", "stonewort", "shore"]));
        let b = cl.add(2, vector(&mut vocab, &["eating", "stonewort", "lake"]));
        let c = cl.add(3, vector(&mut vocab, &["wing", "span", "measured"]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(cl.len(), 2);
    }

    #[test]
    fn representative_is_most_central_member() {
        let mut vocab = Vocabulary::new();
        let mut cl = OnlineClusterer::new(ClusterConfig::default());
        cl.add(10, vector(&mut vocab, &["eating", "stonewort"]));
        cl.add(11, vector(&mut vocab, &["eating", "stonewort"]));
        // The founder has score 1.0; an identical follower also scores
        // highly. Representative must be deterministic.
        let rep = cl.clusters()[0].representative().unwrap();
        assert!(rep == 10 || rep == 11);
        let rep2 = cl.clusters()[0].representative().unwrap();
        assert_eq!(rep, rep2);
    }

    #[test]
    fn remove_members_drops_empty_clusters_and_reelects() {
        let mut vocab = Vocabulary::new();
        let mut cl = OnlineClusterer::new(ClusterConfig::default());
        cl.add(1, vector(&mut vocab, &["eating", "stonewort"]));
        cl.add(2, vector(&mut vocab, &["eating", "stonewort", "shore"]));
        cl.add(3, vector(&mut vocab, &["wing", "span"]));
        let before_rep = cl.clusters()[0].representative().unwrap();
        cl.remove_members(&|id| id == before_rep);
        // Representative re-elected from survivors; singleton cluster for 3
        // survives; no empty clusters remain.
        assert!(cl.clusters().iter().all(|c| !c.is_empty()));
        assert_eq!(cl.total_members(), 2);
        let new_rep = cl.clusters()[0].representative().unwrap();
        assert_ne!(new_rep, before_rep);
    }

    #[test]
    fn merge_combines_overlapping_groups_and_keeps_disjoint_ones() {
        let mut vocab = Vocabulary::new();
        let mut left = OnlineClusterer::new(ClusterConfig::default());
        left.add(1, vector(&mut vocab, &["eating", "stonewort"]));
        left.add(5, vector(&mut vocab, &["banding", "station", "record"]));

        let mut right = OnlineClusterer::new(ClusterConfig::default());
        right.add(2, vector(&mut vocab, &["eating", "stonewort", "shore"]));
        right.add(7, vector(&mut vocab, &["migration", "route", "gps"]));

        left.merge(&right);
        // "eating stonewort" groups combine; banding / migration stay apart.
        assert_eq!(left.len(), 3);
        assert_eq!(left.total_members(), 4);
    }

    #[test]
    fn merge_deduplicates_shared_member_ids() {
        let mut vocab = Vocabulary::new();
        let v = vector(&mut vocab, &["eating", "stonewort"]);
        let mut left = OnlineClusterer::new(ClusterConfig::default());
        left.add(1, v.clone());
        let mut right = OnlineClusterer::new(ClusterConfig::default());
        right.add(1, v); // same annotation attached to both tuples
        left.merge(&right);
        assert_eq!(
            left.total_members(),
            1,
            "shared member must not double-count"
        );
    }

    #[test]
    fn centroid_stays_bounded() {
        let mut vocab = Vocabulary::new();
        let cfg = ClusterConfig {
            threshold: 0.0,
            centroid_terms: 8,
            max_groups: 200,
        };
        let mut cl = OnlineClusterer::new(cfg);
        for i in 0..100u64 {
            let terms: Vec<String> = (0..5).map(|j| format!("term{i}{j}")).collect();
            let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
            cl.add(i, vector(&mut vocab, &refs));
        }
        for c in cl.clusters() {
            assert!(c.centroid.nnz() <= 8);
        }
    }
}
