//! Sparse term vectors.
//!
//! Cluster summary objects carry centroids as sparse vectors; cosine
//! similarity over them decides (a) which cluster an incoming annotation
//! joins during incremental maintenance and (b) which groups from two join
//! sides overlap and must be combined during summary merge.
//!
//! Representation: parallel-sorted `(TermId, f32)` pairs. Vectors support
//! in-place accumulation (centroid updates), scaling, and top-k truncation
//! so centroids stay bounded no matter how many annotations a group absorbs.

use crate::vocab::{TermId, Vocabulary};

/// A sparse vector over interned terms, sorted by term id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    // Invariant: strictly increasing term ids.
    entries: Vec<(TermId, f32)>,
}

impl SparseVector {
    /// Creates an empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a term-frequency vector from token ids (duplicates counted).
    pub fn from_term_ids(ids: &[TermId]) -> Self {
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        let mut entries: Vec<(TermId, f32)> = Vec::new();
        for id in sorted {
            match entries.last_mut() {
                Some((last, w)) if *last == id => *w += 1.0,
                _ => entries.push((id, 1.0)),
            }
        }
        Self { entries }
    }

    /// Builds a TF-IDF vector: term frequency reweighted by the
    /// vocabulary's smoothed IDF.
    pub fn tf_idf(ids: &[TermId], vocab: &Vocabulary) -> Self {
        let mut v = Self::from_term_ids(ids);
        for (id, w) in &mut v.entries {
            *w *= vocab.idf(*id);
        }
        v
    }

    /// Builds from pre-sorted entries.
    ///
    /// # Panics
    /// Debug-asserts that ids are strictly increasing.
    pub fn from_sorted_entries(entries: Vec<(TermId, f32)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        Self { entries }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True when the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(TermId, f32)] {
        &self.entries
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|(_, w)| (*w as f64) * (*w as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Dot product (linear merge over the sorted entries).
    pub fn dot(&self, other: &SparseVector) -> f32 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0f64;
        while i < self.entries.len() && j < other.entries.len() {
            let (a, wa) = self.entries[i];
            let (b, wb) = other.entries[j];
            if a < b {
                i += 1;
            } else if b < a {
                j += 1;
            } else {
                acc += (wa as f64) * (wb as f64);
                i += 1;
                j += 1;
            }
        }
        acc as f32
    }

    /// Cosine similarity in `[0, 1]` for non-negative vectors; 0 when either
    /// vector is empty or zero.
    pub fn cosine(&self, other: &SparseVector) -> f32 {
        let denom = self.norm() * other.norm();
        if denom <= f32::EPSILON {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// Adds `other * scale` into `self` (centroid accumulation).
    pub fn add_scaled(&mut self, other: &SparseVector, scale: f32) {
        if other.is_empty() || scale == 0.0 {
            return;
        }
        let mut out = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() && j < other.entries.len() {
            let (a, wa) = self.entries[i];
            let (b, wb) = other.entries[j];
            if a < b {
                out.push((a, wa));
                i += 1;
            } else if b < a {
                out.push((b, wb * scale));
                j += 1;
            } else {
                out.push((a, wa + wb * scale));
                i += 1;
                j += 1;
            }
        }
        out.extend_from_slice(&self.entries[i..]);
        out.extend(other.entries[j..].iter().map(|&(id, w)| (id, w * scale)));
        out.retain(|&(_, w)| w != 0.0);
        self.entries = out;
    }

    /// Multiplies every weight by `scale`.
    pub fn scale(&mut self, scale: f32) {
        if scale == 0.0 {
            self.entries.clear();
            return;
        }
        for (_, w) in &mut self.entries {
            *w *= scale;
        }
    }

    /// Keeps only the `k` highest-weight entries (ties broken by term id),
    /// preserving the sorted-by-id invariant. Bounds centroid size.
    /// In-place: selection partition plus a sort of the k survivors.
    pub fn truncate_top_k(&mut self, k: usize) {
        if self.entries.len() <= k || k == 0 {
            return;
        }
        self.entries.select_nth_unstable_by(k - 1, |a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        self.entries.truncate(k);
        self.entries.sort_unstable_by_key(|&(id, _)| id);
    }

    /// Cosine similarity using externally cached norms (hot path of the
    /// cluster merge, where each centroid is compared many times).
    pub fn cosine_with_norms(&self, self_norm: f32, other: &SparseVector, other_norm: f32) -> f32 {
        let denom = self_norm * other_norm;
        if denom <= f32::EPSILON {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// Approximate heap footprint in bytes (live elements, not reserved
    /// capacity).
    pub fn heap_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(TermId, f32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_sorted_entries(pairs.to_vec())
    }

    #[test]
    fn from_term_ids_counts_frequencies() {
        let v = SparseVector::from_term_ids(&[3, 1, 3, 3]);
        assert_eq!(v.entries(), &[(1, 1.0), (3, 3.0)]);
        assert_eq!(v.nnz(), 2);
    }

    #[test]
    fn dot_and_norm() {
        let a = vec_of(&[(0, 1.0), (2, 2.0)]);
        let b = vec_of(&[(2, 3.0), (5, 1.0)]);
        assert_eq!(a.dot(&b), 6.0);
        assert!((a.norm() - 5.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn cosine_identical_is_one_disjoint_is_zero() {
        let a = vec_of(&[(1, 2.0), (4, 1.0)]);
        let b = vec_of(&[(7, 3.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-6);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(SparseVector::new().cosine(&a), 0.0);
    }

    #[test]
    fn add_scaled_merges_and_drops_zeros() {
        let mut a = vec_of(&[(1, 1.0), (3, 2.0)]);
        let b = vec_of(&[(1, 1.0), (2, 4.0), (3, -2.0)]);
        a.add_scaled(&b, 1.0);
        assert_eq!(a.entries(), &[(1, 2.0), (2, 4.0)]);
    }

    #[test]
    fn scale_by_zero_clears() {
        let mut a = vec_of(&[(1, 1.0)]);
        a.scale(0.0);
        assert!(a.is_empty());
    }

    #[test]
    fn truncate_top_k_keeps_heaviest_sorted_by_id() {
        let mut a = vec_of(&[(1, 0.5), (2, 3.0), (3, 1.0), (9, 2.0)]);
        a.truncate_top_k(2);
        assert_eq!(a.entries(), &[(2, 3.0), (9, 2.0)]);
        // No-op when already within bounds.
        let mut b = vec_of(&[(1, 1.0)]);
        b.truncate_top_k(5);
        assert_eq!(b.nnz(), 1);
    }

    #[test]
    fn tf_idf_downweights_common_terms() {
        let mut vocab = Vocabulary::new();
        let common = vocab.intern("bird");
        let rare = vocab.intern("stonewort");
        for _ in 0..9 {
            vocab.observe_doc(&[common]);
        }
        vocab.observe_doc(&[common, rare]);
        let v = SparseVector::tf_idf(&[common, rare], &vocab);
        let w_common = v.entries().iter().find(|e| e.0 == common).unwrap().1;
        let w_rare = v.entries().iter().find(|e| e.0 == rare).unwrap().1;
        assert!(w_rare > w_common);
    }
}
