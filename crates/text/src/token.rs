//! Tokenization and sentence splitting.
//!
//! Annotations are short free-text observations ("found eating stonewort
//! near the lake shore") or long attached articles. Both flow through the
//! same tokenizer: Unicode-aware lowercasing, alphanumeric token extraction,
//! a small English stopword list, and a minimum token length. The sentence
//! splitter feeds the extractive snippet summarizer.

/// English stopwords. Deliberately small: the classifier benefits from
/// function-word removal but domain terms must survive untouched.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "had", "has", "have",
    "he", "her", "his", "i", "in", "is", "it", "its", "my", "near", "no", "not", "of", "on", "or",
    "our", "she", "so", "that", "the", "their", "them", "then", "there", "these", "they", "this",
    "to", "up", "was", "we", "were", "which", "who", "will", "with", "you",
];

/// Configurable tokenizer. The default configuration (stopword filtering on,
/// minimum length 2) is what every summary type uses.
#[derive(Debug, Clone)]
pub struct Tokenizer {
    /// Drop tokens found in the stopword list.
    pub filter_stopwords: bool,
    /// Drop tokens shorter than this many characters.
    pub min_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self {
            filter_stopwords: true,
            min_len: 2,
        }
    }
}

impl Tokenizer {
    /// Tokenizes `text` into lowercase terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        for ch in text.chars() {
            if ch.is_alphanumeric() {
                for lc in ch.to_lowercase() {
                    cur.push(lc);
                }
            } else if !cur.is_empty() {
                self.push_token(&mut out, std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            self.push_token(&mut out, cur);
        }
        out
    }

    fn push_token(&self, out: &mut Vec<String>, tok: String) {
        if tok.chars().count() < self.min_len {
            return;
        }
        if self.filter_stopwords && STOPWORDS.binary_search(&tok.as_str()).is_ok() {
            return;
        }
        out.push(tok);
    }
}

/// Tokenizes with the default configuration.
pub fn tokenize(text: &str) -> Vec<String> {
    Tokenizer::default().tokenize(text)
}

/// Splits text into sentences on `.`, `!`, `?` followed by whitespace or
/// end-of-text. Abbreviation handling is intentionally minimal — annotation
/// prose is informal and the summarizer is robust to occasional
/// over-splitting.
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'.' || b == b'!' || b == b'?' {
            let end = i + 1;
            let next_is_break = end >= bytes.len() || bytes[end].is_ascii_whitespace();
            if next_is_break {
                let s = text[start..end].trim();
                if !s.is_empty() {
                    out.push(s);
                }
                start = end;
            }
        }
        i += 1;
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopword_list_is_sorted_for_binary_search() {
        assert!(STOPWORDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn tokenize_lowercases_and_splits_on_punctuation() {
        assert_eq!(
            tokenize("Large one, having size..."),
            vec!["large", "one", "having", "size"]
        );
    }

    #[test]
    fn tokenize_filters_stopwords_and_short_tokens() {
        assert_eq!(
            tokenize("found eating stonewort and a grub"),
            vec!["found", "eating", "stonewort", "grub"]
        );
    }

    #[test]
    fn tokenize_keeps_digits_and_unicode() {
        assert_eq!(tokenize("Weight 3kg à côté"), vec!["weight", "3kg", "côté"]);
    }

    #[test]
    fn tokenizer_can_disable_filtering() {
        let t = Tokenizer {
            filter_stopwords: false,
            min_len: 1,
        };
        assert_eq!(t.tokenize("a b and"), vec!["a", "b", "and"]);
    }

    #[test]
    fn empty_text_yields_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("  ,,, !!").is_empty());
    }

    #[test]
    fn sentences_split_on_terminators() {
        let s = sentences("One. Two! Three? Four");
        assert_eq!(s, vec!["One.", "Two!", "Three?", "Four"]);
    }

    #[test]
    fn sentences_ignore_interior_dots() {
        let s = sentences("Weighs 3.5 kg. Seen at dawn.");
        assert_eq!(s, vec!["Weighs 3.5 kg.", "Seen at dawn."]);
    }

    #[test]
    fn sentences_of_empty_text() {
        assert!(sentences("").is_empty());
        assert!(sentences("   ").is_empty());
    }
}
