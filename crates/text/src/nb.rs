//! Multinomial Naive Bayes text classification.
//!
//! Classifier summary instances (e.g. `ClassBird1` with labels Behavior /
//! Disease / Anatomy / Other) are backed by this model. Training happens
//! once at `CREATE SUMMARY INSTANCE` time from a labeled corpus supplied by
//! the domain expert (in this reproduction: the workload generator's seed
//! corpus); classification of each incoming annotation is a single pass
//! over its tokens.
//!
//! The implementation follows the standard multinomial model with Laplace
//! (add-one) smoothing: `argmax_c [ log P(c) + Σ_t log P(t | c) ]`.
//! Training is incremental — documents can be added at any time — which is
//! what the paper's extensibility story expects of integrated mining
//! techniques.

use crate::token::Tokenizer;
use crate::vocab::{TermId, Vocabulary};

/// A trained (or training) multinomial Naive Bayes classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    labels: Vec<String>,
    vocab: Vocabulary,
    tokenizer: Tokenizer,
    /// Per-label document counts (the prior).
    doc_counts: Vec<u64>,
    /// Per-label total token counts.
    token_totals: Vec<u64>,
    /// `term_counts[label][term]` token counts, grown lazily.
    term_counts: Vec<Vec<u32>>,
}

impl NaiveBayes {
    /// Creates an untrained classifier over the given output labels.
    ///
    /// Labels are fixed at construction: they are part of the summary
    /// instance definition and the zoom-in `INDEX` addresses them by
    /// position.
    pub fn new(labels: Vec<String>) -> Self {
        let n = labels.len();
        Self {
            labels,
            vocab: Vocabulary::new(),
            tokenizer: Tokenizer::default(),
            doc_counts: vec![0; n],
            token_totals: vec![0; n],
            term_counts: vec![Vec::new(); n],
        }
    }

    /// The output labels, in index order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Index of a label by name.
    pub fn label_index(&self, name: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == name)
    }

    /// Total training documents seen.
    pub fn num_documents(&self) -> u64 {
        self.doc_counts.iter().sum()
    }

    /// Adds one labeled training document.
    ///
    /// # Panics
    /// Panics if `label` is out of range (caller bug: labels are fixed).
    pub fn train(&mut self, label: usize, text: &str) {
        assert!(label < self.labels.len(), "label index out of range");
        let tokens = self.tokenizer.tokenize(text);
        let ids = self.vocab.intern_all(&tokens);
        self.vocab.observe_doc(&ids);
        self.doc_counts[label] += 1;
        self.token_totals[label] += ids.len() as u64;
        let counts = &mut self.term_counts[label];
        for id in ids {
            let idx = id as usize;
            if counts.len() <= idx {
                counts.resize(idx + 1, 0);
            }
            counts[idx] += 1;
        }
    }

    /// Classifies `text`, returning the winning label index.
    ///
    /// Untrained classifiers (or empty token streams) fall back to the last
    /// label, by convention the catch-all (e.g. "Other").
    pub fn classify(&self, text: &str) -> usize {
        self.classify_scores(text)
            .into_iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map_or(0, |(i, _)| i)
    }

    /// Log-posterior (up to a constant) per label. Ties and degenerate
    /// inputs resolve toward the last label via a tiny index-scaled epsilon,
    /// keeping classification deterministic.
    pub fn classify_scores(&self, text: &str) -> Vec<f64> {
        let n = self.labels.len();
        let total_docs: u64 = self.doc_counts.iter().sum();
        let vocab_size = self.vocab.len() as f64;
        let tokens = self.tokenizer.tokenize(text);
        let ids: Vec<Option<TermId>> = tokens.iter().map(|t| self.vocab.get(t)).collect();

        (0..n)
            .map(|label| {
                // Laplace-smoothed prior.
                let prior =
                    ((self.doc_counts[label] as f64 + 1.0) / (total_docs as f64 + n as f64)).ln();
                let denom = self.token_totals[label] as f64 + vocab_size + 1.0;
                let mut score = prior;
                for id in ids.iter().flatten() {
                    let count = self.term_counts[label]
                        .get(*id as usize)
                        .copied()
                        .unwrap_or(0) as f64;
                    score += ((count + 1.0) / denom).ln();
                }
                // Deterministic tie-break toward higher indices (catch-all).
                score + label as f64 * 1e-12
            })
            .collect()
    }

    /// Classifies and returns the label name.
    pub fn classify_label(&self, text: &str) -> &str {
        &self.labels[self.classify(text)]
    }

    /// Internal state view for persistence:
    /// `(labels, vocab, doc_counts, token_totals, term_counts)`.
    #[allow(clippy::type_complexity)]
    pub fn parts(&self) -> (&[String], &Vocabulary, &[u64], &[u64], &[Vec<u32>]) {
        (
            &self.labels,
            &self.vocab,
            &self.doc_counts,
            &self.token_totals,
            &self.term_counts,
        )
    }

    /// Reassembles a trained model from persisted parts. Validates that
    /// every per-label table matches the label count.
    pub fn from_parts(
        labels: Vec<String>,
        vocab: Vocabulary,
        doc_counts: Vec<u64>,
        token_totals: Vec<u64>,
        term_counts: Vec<Vec<u32>>,
    ) -> std::result::Result<Self, insightnotes_common::Error> {
        let n = labels.len();
        if doc_counts.len() != n || token_totals.len() != n || term_counts.len() != n {
            return Err(insightnotes_common::Error::Codec(
                "naive bayes label arity mismatch".into(),
            ));
        }
        Ok(Self {
            labels,
            vocab,
            tokenizer: Tokenizer::default(),
            doc_counts,
            token_totals,
            term_counts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> NaiveBayes {
        let mut nb = NaiveBayes::new(vec![
            "Behavior".into(),
            "Disease".into(),
            "Anatomy".into(),
            "Other".into(),
        ]);
        nb.train(0, "found eating stonewort near the shore");
        nb.train(0, "observed diving for fish repeatedly");
        nb.train(0, "aggressive nesting display toward intruders");
        nb.train(1, "lesions on the beak suggest avian pox");
        nb.train(1, "infected wing with visible parasites");
        nb.train(1, "suspected avian influenza outbreak in flock");
        nb.train(2, "wing span measured at 180cm");
        nb.train(2, "large beak and long neck proportions");
        nb.train(2, "plumage coloration dark with white patches");
        nb.train(3, "see attached reference for details");
        nb
    }

    #[test]
    fn classifies_into_trained_classes() {
        let nb = trained();
        assert_eq!(nb.classify_label("seen eating fish near shore"), "Behavior");
        assert_eq!(nb.classify_label("wing lesions and parasites"), "Disease");
        assert_eq!(nb.classify_label("beak and neck span measured"), "Anatomy");
    }

    #[test]
    fn untrained_classifier_falls_back_to_last_label() {
        let nb = NaiveBayes::new(vec!["A".into(), "B".into(), "Other".into()]);
        assert_eq!(nb.classify_label("anything at all"), "Other");
    }

    #[test]
    fn unknown_tokens_do_not_crash() {
        let nb = trained();
        let _ = nb.classify("zzzz qqqq never-seen-term");
    }

    #[test]
    fn scores_have_one_entry_per_label() {
        let nb = trained();
        assert_eq!(nb.classify_scores("eating fish").len(), 4);
    }

    #[test]
    fn label_index_lookup() {
        let nb = trained();
        assert_eq!(nb.label_index("Disease"), Some(1));
        assert_eq!(nb.label_index("Nope"), None);
        assert_eq!(nb.num_documents(), 10);
    }

    #[test]
    fn training_shifts_decisions() {
        let mut nb = NaiveBayes::new(vec!["refute".into(), "approve".into()]);
        nb.train(0, "value is wrong needs verification invalid");
        nb.train(1, "confirmed correct verified by experiment");
        assert_eq!(nb.classify_label("this value is wrong"), "refute");
        assert_eq!(nb.classify_label("experiment confirmed correct"), "approve");
    }
}
