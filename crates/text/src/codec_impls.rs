//! Binary-codec implementations for the text-mining types.
//!
//! Database persistence snapshots trained classifier models, instance
//! vocabularies, and clustering state. The encodings are
//! version-agnostic field dumps; compatibility is governed by the
//! database file's top-level version tag.

use crate::cluster::{Cluster, ClusterConfig, OnlineClusterer};
use crate::nb::NaiveBayes;
use crate::snippet::SnippetConfig;
use crate::vector::SparseVector;
use crate::vocab::Vocabulary;
use insightnotes_common::codec::{Decoder, Encodable, Encoder};
use insightnotes_common::{Error, Result};

impl Encodable for Vocabulary {
    fn encode(&self, enc: &mut Encoder) {
        let (terms, doc_freq, num_docs) = self.parts();
        enc.varint(terms.len() as u64);
        for t in terms {
            enc.str(t);
        }
        enc.seq(doc_freq, |e, &df| e.varint(df as u64));
        enc.varint(num_docs);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let n = dec.varint()? as usize;
        let mut terms = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            terms.push(dec.str()?);
        }
        let doc_freq: Vec<u32> = dec.seq(|d| Ok(d.varint()? as u32))?;
        let num_docs = dec.varint()?;
        if doc_freq.len() != terms.len() {
            return Err(Error::Codec("vocabulary arity mismatch".into()));
        }
        Vocabulary::from_parts(terms, doc_freq, num_docs)
    }
}

impl Encodable for SparseVector {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.nnz() as u64);
        for &(id, w) in self.entries() {
            enc.u32(id);
            enc.f64(w as f64);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let n = dec.varint()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            entries.push((dec.u32()?, dec.f64()? as f32));
        }
        if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(Error::Codec("sparse vector ids not increasing".into()));
        }
        Ok(SparseVector::from_sorted_entries(entries))
    }
}

impl Encodable for ClusterConfig {
    fn encode(&self, enc: &mut Encoder) {
        enc.f64(self.threshold as f64);
        enc.varint(self.centroid_terms as u64);
        enc.varint(self.max_groups as u64);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(ClusterConfig {
            threshold: dec.f64()? as f32,
            centroid_terms: dec.varint()? as usize,
            max_groups: dec.varint()? as usize,
        })
    }
}

impl Encodable for SnippetConfig {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.max_sentences as u64);
        enc.varint(self.max_chars as u64);
        enc.f64(self.position_weight as f64);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(SnippetConfig {
            max_sentences: dec.varint()? as usize,
            max_chars: dec.varint()? as usize,
            position_weight: dec.f64()? as f32,
        })
    }
}

impl Encodable for Cluster {
    fn encode(&self, enc: &mut Encoder) {
        self.centroid.encode(enc);
        enc.varint(self.members.len() as u64);
        for &(id, score) in &self.members {
            enc.varint(id);
            enc.f64(score as f64);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let centroid = SparseVector::decode(dec)?;
        let n = dec.varint()? as usize;
        let mut members = Vec::with_capacity(n.min(1 << 12));
        for _ in 0..n {
            members.push((dec.varint()?, dec.f64()? as f32));
        }
        Ok(Cluster::from_parts(centroid, members))
    }
}

impl Encodable for OnlineClusterer {
    fn encode(&self, enc: &mut Encoder) {
        self.config().encode(enc);
        enc.seq(self.clusters(), |e, c| c.encode(e));
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let config = ClusterConfig::decode(dec)?;
        let clusters = dec.seq(Cluster::decode)?;
        Ok(OnlineClusterer::from_parts(config, clusters))
    }
}

impl Encodable for NaiveBayes {
    fn encode(&self, enc: &mut Encoder) {
        let (labels, vocab, doc_counts, token_totals, term_counts) = self.parts();
        enc.seq(labels, |e, l| e.str(l));
        vocab.encode(enc);
        enc.seq(doc_counts, |e, &c| e.varint(c));
        enc.seq(token_totals, |e, &c| e.varint(c));
        enc.varint(term_counts.len() as u64);
        for row in term_counts {
            enc.seq(row, |e, &c| e.varint(c as u64));
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let labels: Vec<String> = dec.seq(insightnotes_common::Decoder::str)?;
        let vocab = Vocabulary::decode(dec)?;
        let doc_counts: Vec<u64> = dec.seq(insightnotes_common::Decoder::varint)?;
        let token_totals: Vec<u64> = dec.seq(insightnotes_common::Decoder::varint)?;
        let nrows = dec.varint()? as usize;
        let mut term_counts = Vec::with_capacity(nrows.min(256));
        for _ in 0..nrows {
            term_counts.push(dec.seq(|d| Ok(d.varint()? as u32))?);
        }
        NaiveBayes::from_parts(labels, vocab, doc_counts, token_totals, term_counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_round_trips() {
        let mut v = Vocabulary::new();
        let a = v.intern("swan");
        let b = v.intern("goose");
        v.observe_doc(&[a, b]);
        v.observe_doc(&[a]);
        let back = Vocabulary::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("swan"), Some(a));
        assert_eq!(back.num_docs(), 2);
        assert_eq!(back.idf(a), v.idf(a));
    }

    #[test]
    fn naive_bayes_round_trips_with_identical_decisions() {
        let mut nb = NaiveBayes::new(vec!["x".into(), "y".into()]);
        nb.train(0, "eating stonewort diving");
        nb.train(1, "lesions parasites infection");
        let back = NaiveBayes::from_bytes(&nb.to_bytes()).unwrap();
        for text in ["eating near shore", "parasites on wing", "unrelated words"] {
            assert_eq!(back.classify(text), nb.classify(text), "text: {text}");
            assert_eq!(back.classify_scores(text), nb.classify_scores(text));
        }
    }

    #[test]
    fn clusterer_round_trips() {
        let mut vocab = Vocabulary::new();
        let mut cl = OnlineClusterer::new(ClusterConfig::default());
        for (i, text) in ["eating stonewort", "eating stonewort shore", "wing span"]
            .iter()
            .enumerate()
        {
            let ids = vocab.intern_all(&text.split(' ').map(str::to_string).collect::<Vec<_>>());
            cl.add(i as u64, SparseVector::from_term_ids(&ids));
        }
        let back = OnlineClusterer::from_bytes(&cl.to_bytes()).unwrap();
        assert_eq!(back, cl);
    }

    #[test]
    fn configs_round_trip() {
        let cc = ClusterConfig {
            threshold: 0.7,
            centroid_terms: 5,
            max_groups: 9,
        };
        assert_eq!(ClusterConfig::from_bytes(&cc.to_bytes()).unwrap(), cc);
        let sc = SnippetConfig {
            max_sentences: 2,
            max_chars: 99,
            position_weight: 0.5,
        };
        let back = SnippetConfig::from_bytes(&sc.to_bytes()).unwrap();
        assert_eq!(back.max_sentences, 2);
        assert_eq!(back.max_chars, 99);
    }

    #[test]
    fn corrupt_vocabulary_is_rejected() {
        let mut v = Vocabulary::new();
        v.intern("a");
        let mut bytes = v.to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(Vocabulary::from_bytes(&bytes).is_err());
    }
}
