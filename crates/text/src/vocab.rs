//! Term interning.
//!
//! Every summary instance owns a [`Vocabulary`] that maps terms to dense
//! `u32` ids. Downstream structures (sparse vectors, Naive Bayes count
//! tables, cluster centroids) then operate on ids only, which keeps them
//! compact and hashable. The vocabulary also tracks per-term document
//! frequency so TF-IDF weighting needs no second pass.

use std::collections::HashMap;

/// Dense id of an interned term.
pub type TermId = u32;

/// A bidirectional term ↔ id map with document-frequency bookkeeping.
#[derive(Debug, Default, Clone)]
pub struct Vocabulary {
    by_term: HashMap<String, TermId>,
    terms: Vec<String>,
    /// Number of documents each term appeared in (indexed by `TermId`).
    doc_freq: Vec<u32>,
    /// Total number of documents observed via [`Vocabulary::observe_doc`].
    num_docs: u64,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a term, returning its id (existing or newly assigned).
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = self.terms.len() as TermId;
        self.by_term.insert(term.to_string(), id);
        self.terms.push(term.to_string());
        self.doc_freq.push(0);
        id
    }

    /// Looks up a term without interning.
    pub fn get(&self, term: &str) -> Option<TermId> {
        self.by_term.get(term).copied()
    }

    /// Returns the term for an id, if the id is in range.
    pub fn term(&self, id: TermId) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Records one document's distinct terms for document-frequency stats.
    /// `term_ids` may contain duplicates; each distinct id is counted once.
    pub fn observe_doc(&mut self, term_ids: &[TermId]) {
        self.num_docs += 1;
        let mut seen: Vec<TermId> = term_ids.to_vec();
        seen.sort_unstable();
        seen.dedup();
        for id in seen {
            if let Some(df) = self.doc_freq.get_mut(id as usize) {
                *df += 1;
            }
        }
    }

    /// Documents observed so far.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Smoothed inverse document frequency: `ln((N + 1) / (df + 1)) + 1`.
    /// Returns 1.0 for unseen terms (df = 0 with N = 0).
    pub fn idf(&self, id: TermId) -> f32 {
        let df = self.doc_freq.get(id as usize).copied().unwrap_or(0) as f64;
        let n = self.num_docs as f64;
        (((n + 1.0) / (df + 1.0)).ln() + 1.0) as f32
    }

    /// Interns every token of a pre-tokenized document.
    pub fn intern_all(&mut self, tokens: &[String]) -> Vec<TermId> {
        tokens.iter().map(|t| self.intern(t)).collect()
    }

    /// Internal state view for persistence: `(terms, doc_freq, num_docs)`.
    pub fn parts(&self) -> (&[String], &[u32], u64) {
        (&self.terms, &self.doc_freq, self.num_docs)
    }

    /// Reassembles a vocabulary from persisted parts (rebuilds the
    /// reverse map). Fails on duplicate terms.
    pub fn from_parts(
        terms: Vec<String>,
        doc_freq: Vec<u32>,
        num_docs: u64,
    ) -> crate::vocab::VocabResult<Self> {
        let mut by_term = HashMap::with_capacity(terms.len());
        for (i, t) in terms.iter().enumerate() {
            if by_term.insert(t.clone(), i as TermId).is_some() {
                return Err(insightnotes_common::Error::Codec(format!(
                    "duplicate vocabulary term `{t}`"
                )));
            }
        }
        Ok(Self {
            by_term,
            terms,
            doc_freq,
            num_docs,
        })
    }
}

/// Result alias local to persistence construction.
pub type VocabResult<T> = std::result::Result<T, insightnotes_common::Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("swan");
        let b = v.intern("goose");
        assert_eq!(v.intern("swan"), a);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
        assert_eq!(v.term(a), Some("swan"));
        assert_eq!(v.get("goose"), Some(b));
        assert_eq!(v.get("heron"), None);
    }

    #[test]
    fn doc_freq_counts_distinct_terms_once() {
        let mut v = Vocabulary::new();
        let a = v.intern("swan");
        let b = v.intern("lake");
        v.observe_doc(&[a, a, b]);
        v.observe_doc(&[a]);
        assert_eq!(v.num_docs(), 2);
        // swan: df=2, lake: df=1 → idf(swan) < idf(lake)
        assert!(v.idf(a) < v.idf(b));
    }

    #[test]
    fn idf_of_unseen_term_is_finite() {
        let v = Vocabulary::new();
        let idf = v.idf(42);
        assert!(idf.is_finite() && idf > 0.0);
    }

    #[test]
    fn intern_all_preserves_order_and_duplicates() {
        let mut v = Vocabulary::new();
        let toks: Vec<String> = ["x", "y", "x"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let ids = v.intern_all(&toks);
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0], ids[2]);
    }
}
