#![warn(missing_docs)]
//! # insightnotes-text
//!
//! Text-mining substrate for InsightNotes' three summary types, implemented
//! from scratch (std only):
//!
//! - [`token`] — lowercasing tokenizer with an English stopword filter and a
//!   sentence splitter (feeds every other module);
//! - [`vocab`] — term interning, so the rest of the pipeline works on dense
//!   `u32` term ids instead of strings;
//! - [`vector`] — sparse TF / TF-IDF vectors with cosine similarity, the
//!   distance used by annotation clustering;
//! - [`nb`] — a multinomial Naive Bayes classifier with Laplace smoothing
//!   (the paper's Classifier summary type cites Manning et al.'s IR
//!   textbook treatment \[12\]);
//! - [`cluster`] — online leader–follower clustering over sparse vectors
//!   (the paper's Cluster summary type cites text-stream clustering \[23\]);
//! - [`snippet`] — an extractive sentence summarizer scoring sentences by
//!   normalized term frequency with a position prior (the Snippet type
//!   cites the Nenkova–McKeown survey \[24\]).

pub mod cluster;
pub mod codec_impls;
pub mod nb;
pub mod snippet;
pub mod token;
pub mod vector;
pub mod vocab;

pub use cluster::{Cluster, ClusterConfig, OnlineClusterer};
pub use nb::NaiveBayes;
pub use snippet::{summarize_extractive, SnippetConfig};
pub use token::{sentences, tokenize, Tokenizer};
pub use vector::SparseVector;
pub use vocab::{TermId, Vocabulary};
