#![warn(missing_docs)]
//! # insight-lint
//!
//! A std-only workspace invariant checker for the InsightNotes
//! reproduction. It tokenizes every `.rs` file with a hand-rolled Rust
//! lexer ([`lexer`]), segments per-function token streams ([`funcs`]),
//! and runs a rule engine ([`rules`]) that machine-checks the safety
//! conventions PRs 1–4 introduced: lock discipline, WAL discipline,
//! panic discipline, wire-protocol exhaustiveness, bench/doc coherence
//! and the offline dependency policy. See `DESIGN.md` §11 for the rule
//! catalogue and the invariant each one encodes.
//!
//! Diagnostics are span-accurate (`file:line:col`) and suppressible two
//! ways:
//! - inline, with a `// lint:allow(rule-name)` comment on (or directly
//!   above) the offending line;
//! - in bulk, via the checked-in `lint.toml` baseline ([`baseline`]) —
//!   which this repository keeps **empty**: violations get fixed, not
//!   baselined.
//!
//! Run it as `cargo run -p lint --` (the `scripts/check.sh` gate does),
//! with `--json` for machine-readable output and `--fix-baseline` to
//! regenerate `lint.toml` from the current findings.

pub mod baseline;
pub mod callgraph;
pub mod diag;
pub mod funcs;
pub mod lexer;
pub mod lockmodel;
pub mod rules;
pub mod workspace;

use baseline::Baseline;
use diag::Diagnostic;
use std::path::Path;

/// Everything one lint run produced.
pub struct RunOutcome {
    /// Findings to report (post-`lint:allow`, post-baseline).
    pub reported: Vec<Diagnostic>,
    /// Findings suppressed by the baseline.
    pub baselined: Vec<Diagnostic>,
}

/// Loads the workspace at `root`, runs every rule, and applies the
/// baseline at `baseline_path` (missing file = empty baseline).
pub fn run(root: &Path, baseline_path: &Path) -> Result<RunOutcome, String> {
    let ws = workspace::Workspace::load(root)
        .map_err(|e| format!("failed to read workspace at {}: {e}", root.display()))?;
    let diags = rules::run_all(&ws);
    let baseline = match std::fs::read_to_string(baseline_path) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => {
            return Err(format!(
                "failed to read baseline {}: {e}",
                baseline_path.display()
            ))
        }
    };
    let (reported, baselined) = baseline.apply(diags);
    Ok(RunOutcome {
        reported,
        baselined,
    })
}

/// Finds the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
