//! The declared lock hierarchy: `locks.toml` parsed into ranked lock
//! classes, plus the in-source `// lint: lock-class(name)` escape hatch
//! for locks whose receiver ident is too generic to list in the file.
//!
//! Parse problems are **span-reported diagnostics**, never panics: a
//! broken `locks.toml` surfaces as `lock-order` findings pointing at the
//! offending line, and the model degrades to empty (no classes, so the
//! lock rules stay silent rather than guessing).

use crate::diag::Diagnostic;
use crate::lexer::Token;
use std::collections::BTreeMap;

/// How a class's lock is acquired, and what re-entry means for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Acquired with zero-arg `.lock()`; re-entry self-deadlocks.
    Mutex,
    /// Acquired with zero-arg `.read()` / `.write()`.
    RwLock,
}

/// One declared lock class. Rank is its declaration position in
/// `locks.toml`: lower ranks must be acquired first.
#[derive(Debug)]
pub struct LockClass {
    /// Class name (what diagnostics and `lock-class(...)` comments use).
    pub name: String,
    /// Acquisition shape.
    pub kind: LockKind,
    /// Whether instances carry an index that must ascend (`shards[k]`).
    pub ordered: bool,
    /// Type a guard of this class dereferences to, when declared — used
    /// to resolve method calls made through a held guard.
    pub deref: Option<String>,
    /// Field/variable idents whose lock calls acquire this class.
    pub receivers: Vec<String>,
    /// 1-based `locks.toml` line of the declaration.
    pub line: u32,
}

impl LockClass {
    /// Whether `method` (of a zero-arg call) acquires this class, and
    /// exclusively so.
    pub fn acquires(&self, method: &str) -> Option<bool> {
        match (self.kind, method) {
            (LockKind::Mutex, "lock") | (LockKind::RwLock, "write") => Some(true),
            (LockKind::RwLock, "read") => Some(false),
            _ => None,
        }
    }
}

/// The parsed hierarchy. Indices into `classes` are ranks.
#[derive(Debug, Default)]
pub struct LockModel {
    /// Every class, in rank order.
    pub classes: Vec<LockClass>,
    /// Span-reported parse problems (empty for a well-formed file).
    pub errors: Vec<Diagnostic>,
}

/// File name the model is declared in, relative to the workspace root.
pub const LOCKS_FILE: &str = "locks.toml";

impl LockModel {
    /// Loads `locks.toml` from the workspace root. A missing file is an
    /// empty model (the lock rules become no-ops), not an error — most
    /// fixture workspaces do not declare a hierarchy.
    pub fn load(root: &std::path::Path) -> Self {
        match std::fs::read_to_string(root.join(LOCKS_FILE)) {
            Ok(text) => Self::parse(&text),
            Err(_) => Self::default(),
        }
    }

    /// Parses the `locks.toml` dialect: `[[class]]` tables with `name`,
    /// `kind`, optional `ordered`, `deref`, and a single-line
    /// `receivers` array.
    pub fn parse(text: &str) -> Self {
        let mut model = Self::default();
        let mut current: Option<LockClass> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[class]]" {
                model.finish(current.take());
                current = Some(LockClass {
                    name: String::new(),
                    kind: LockKind::Mutex,
                    ordered: false,
                    deref: None,
                    receivers: Vec::new(),
                    line: lineno,
                });
                continue;
            }
            if line.starts_with('[') {
                model.finish(current.take());
                model.error(
                    lineno,
                    format!("unknown section `{line}`; only `[[class]]` tables are allowed"),
                );
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                model.error(lineno, format!("expected `key = value`, found `{line}`"));
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(class) = current.as_mut() else {
                model.error(lineno, format!("`{key}` outside a `[[class]]` table"));
                continue;
            };
            match key {
                "name" => match parse_str(value) {
                    Some(v) if !v.is_empty() => class.name = v,
                    _ => model.error(
                        lineno,
                        format!("`name` must be a non-empty string, found `{value}`"),
                    ),
                },
                "kind" => match parse_str(value).as_deref() {
                    Some("mutex") => class.kind = LockKind::Mutex,
                    Some("rwlock") => class.kind = LockKind::RwLock,
                    _ => model.error(
                        lineno,
                        format!("`kind` must be \"mutex\" or \"rwlock\", found `{value}`"),
                    ),
                },
                "ordered" => match value {
                    "true" => class.ordered = true,
                    "false" => class.ordered = false,
                    _ => model.error(
                        lineno,
                        format!("`ordered` must be true or false, found `{value}`"),
                    ),
                },
                "deref" => match parse_str(value) {
                    Some(v) if !v.is_empty() => class.deref = Some(v),
                    _ => model.error(
                        lineno,
                        format!("`deref` must be a non-empty string, found `{value}`"),
                    ),
                },
                "receivers" => match parse_str_array(value) {
                    Some(v) => class.receivers = v,
                    None => model.error(
                        lineno,
                        format!("`receivers` must be a [\"a\", \"b\"] array, found `{value}`"),
                    ),
                },
                other => model.error(lineno, format!("unknown key `{other}` in lock class")),
            }
        }
        model.finish(current.take());
        model.check_cross_class();
        model
    }

    fn finish(&mut self, class: Option<LockClass>) {
        let Some(class) = class else { return };
        if class.name.is_empty() {
            self.error(class.line, "lock class is missing a `name`".into());
            return;
        }
        if self.classes.iter().any(|c| c.name == class.name) {
            self.error(class.line, format!("duplicate lock class `{}`", class.name));
            return;
        }
        self.classes.push(class);
    }

    fn check_cross_class(&mut self) {
        let mut seen: BTreeMap<&str, &str> = BTreeMap::new();
        let mut dups = Vec::new();
        for class in &self.classes {
            for recv in &class.receivers {
                if let Some(prev) = seen.insert(recv, &class.name) {
                    dups.push((
                        class.line,
                        format!("receiver `{recv}` already claimed by class `{prev}`; receivers must map to exactly one class"),
                    ));
                }
            }
        }
        for (line, msg) in dups {
            self.error(line, msg);
        }
    }

    fn error(&mut self, line: u32, message: String) {
        self.errors.push(Diagnostic {
            rule: "lock-order",
            file: LOCKS_FILE.into(),
            line,
            col: 1,
            message: format!("invalid lock hierarchy: {message}"),
        });
    }

    /// Rank of the class named `name`, if declared.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }

    /// The class a `receiver.method()` acquisition belongs to:
    /// `(rank, exclusive)` when some declared receiver matches.
    pub fn classify(&self, receiver: &str, method: &str) -> Option<(usize, bool)> {
        self.classes.iter().enumerate().find_map(|(rank, c)| {
            let exclusive = c.acquires(method)?;
            c.receivers
                .iter()
                .any(|r| r == receiver)
                .then_some((rank, exclusive))
        })
    }
}

fn parse_str(value: &str) -> Option<String> {
    let v = value.strip_prefix('"')?.strip_suffix('"')?;
    (!v.contains('"')).then(|| v.to_string())
}

fn parse_str_array(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?.trim();
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner.split(',').map(|s| parse_str(s.trim())).collect()
}

/// Collects `// lint: lock-class(name)` markers: a trailing comment
/// classifies acquisitions on its own line; a standalone comment
/// classifies the next code line (same placement semantics as
/// `lint:allow`).
pub fn collect_lock_classes(tokens: &[Token]) -> BTreeMap<u32, String> {
    let mut out = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let Some(name) = parse_lock_class(&t.text) else {
            continue;
        };
        let standalone = !tokens[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| !p.is_comment());
        let line = if standalone {
            tokens[i + 1..]
                .iter()
                .find(|n| !n.is_comment())
                .map_or(t.line, |n| n.line)
        } else {
            t.line
        };
        out.insert(line, name);
    }
    out
}

/// Extracts the class name from a comment containing `lock-class(name)`.
fn parse_lock_class(comment: &str) -> Option<String> {
    let at = comment.find("lock-class(")?;
    let rest = &comment[at + "lock-class(".len()..];
    let close = rest.find(')')?;
    let name = rest[..close].trim();
    (!name.is_empty()).then(|| name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_workspace_dialect() {
        let m = LockModel::parse(
            "# hierarchy\n[[class]]\nname = \"broadcast\"\nkind = \"mutex\"\nreceivers = [\"broadcast\"]\n\n\
             [[class]]\nname = \"shard\"\nkind = \"rwlock\"\nordered = true\nderef = \"Database\"\n\
             receivers = [\"shards\", \"db\"]\n",
        );
        assert!(m.errors.is_empty(), "errors: {:?}", m.errors);
        assert_eq!(m.classes.len(), 2);
        assert_eq!(m.rank_of("shard"), Some(1));
        assert_eq!(m.classify("db", "write"), Some((1, true)));
        assert_eq!(m.classify("db", "read"), Some((1, false)));
        assert_eq!(m.classify("db", "lock"), None, "kind gates the method");
        assert_eq!(m.classify("broadcast", "lock"), Some((0, true)));
        assert!(m.classes[1].ordered);
        assert_eq!(m.classes[1].deref.as_deref(), Some("Database"));
    }

    #[test]
    fn parse_errors_are_span_reported_not_panics() {
        let m = LockModel::parse(
            "[[class]]\nname = \"a\"\nkind = \"spinlock\"\nbogus = 1\n\
             [[class]]\nkind = \"mutex\"\n\
             [[class]]\nname = \"a\"\nkind = \"mutex\"\n\
             [other]\nname = 3\n",
        );
        let lines: Vec<u32> = m.errors.iter().map(|e| e.line).collect();
        assert_eq!(lines, vec![3, 4, 5, 7, 10, 11], "errors: {:?}", m.errors);
        assert!(m.errors.iter().all(|e| e.rule == "lock-order"));
        assert!(m.errors.iter().all(|e| e.file == LOCKS_FILE));
        assert_eq!(m.classes.len(), 1, "well-formed classes survive");
        // Line 5: the nameless class is reported at its own header.
        assert!(m.errors[2].message.contains("missing a `name`"));
    }

    #[test]
    fn duplicate_receivers_across_classes_are_rejected() {
        let m = LockModel::parse(
            "[[class]]\nname = \"a\"\nkind = \"mutex\"\nreceivers = [\"x\"]\n\
             [[class]]\nname = \"b\"\nkind = \"mutex\"\nreceivers = [\"x\"]\n",
        );
        assert_eq!(m.errors.len(), 1);
        assert!(m.errors[0].message.contains("already claimed by class `a`"));
    }

    #[test]
    fn lock_class_comments_cover_their_line_or_the_next() {
        let toks = crate::lexer::tokenize(
            "fn f() {\n    let g = m.lock(); // lint: lock-class(morsel)\n    \
             // lint: lock-class(shard)\n    let h = s.read();\n}\n",
        );
        let by_line = collect_lock_classes(&toks);
        assert_eq!(by_line.get(&2).map(String::as_str), Some("morsel"));
        assert_eq!(by_line.get(&4).map(String::as_str), Some("shard"));
        assert!(!by_line.contains_key(&3));
    }
}
