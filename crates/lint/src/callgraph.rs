//! The workspace call graph: every live function as a node, with call
//! edges resolved from the token stream.
//!
//! Resolution is deliberately *widening*: a method call is narrowed to
//! the matching `impl` self-type when the receiver's type is known
//! (`self`, a `Type::` path, or a tracked guard binding), but when it is
//! not, the edge fans out to **every** same-named function — the
//! analysis over-approximates rather than silently dropping a path.
//! Calls through local callable values (closure parameters, boxed
//! callbacks) cannot target any named function; callers classify those
//! via [`CallTarget::Unknown`] and treat them as potentially acquiring
//! anything.

use crate::lexer::TokenKind;
use crate::rules::Code;
use crate::workspace::Workspace;
use std::collections::BTreeMap;

/// One live (non-test) function in the workspace.
pub struct FnNode {
    /// Index of the containing file in `ws.files`.
    pub file: usize,
    /// Index of the function in that file's `functions`.
    pub func: usize,
    /// The function's name.
    pub name: String,
    /// Self type of the enclosing `impl`, if any.
    pub impl_type: Option<String>,
    /// Whether the signature's return type mentions a `*Guard` type —
    /// acquisitions inside such a helper escape to its callers.
    pub returns_guard: bool,
}

/// The graph: nodes plus a name index for edge resolution.
pub struct CallGraph {
    /// Every node; indices are stable function ids.
    pub nodes: Vec<FnNode>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// Module stem per file (`feed` for `…/feed.rs`, the directory name
    /// for `mod.rs`), for `module::func(...)` resolution.
    file_stems: Vec<String>,
}

/// What a syntactic call site can resolve to.
pub enum CallTarget {
    /// Candidate node ids (more than one = widened over same-named fns).
    Known(Vec<usize>),
    /// A call through a local callable value (closure parameter, boxed
    /// callback): no named target exists, so the analysis must assume
    /// the worst rather than assume nothing.
    Unknown,
}

/// Builds the graph over every live function of `ws`.
pub fn build(ws: &Workspace) -> CallGraph {
    let mut nodes = Vec::new();
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    let mut file_stems = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        file_stems.push(module_stem(&file.rel));
        let path_test = file.is_test_path();
        for (func, f) in file.functions.iter().enumerate() {
            if path_test || f.is_test {
                continue;
            }
            let id = nodes.len();
            nodes.push(FnNode {
                file: fi,
                func,
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                returns_guard: sig_returns_guard(file, f),
            });
            by_name.entry(f.name.clone()).or_default().push(id);
        }
    }
    CallGraph {
        nodes,
        by_name,
        file_stems,
    }
}

impl CallGraph {
    /// Resolves a call by name. `type_hint` narrows to an `impl` block's
    /// self-type; `module_hint` narrows free calls by module stem. A
    /// hint that matches nothing *widens* back to every candidate
    /// instead of silencing the edge.
    pub fn resolve(
        &self,
        name: &str,
        type_hint: Option<&str>,
        module_hint: Option<&str>,
    ) -> Vec<usize> {
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        if let Some(t) = type_hint {
            let typed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| self.nodes[id].impl_type.as_deref() == Some(t))
                .collect();
            if !typed.is_empty() {
                return typed;
            }
        }
        if let Some(m) = module_hint {
            let scoped: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| self.file_stems[self.nodes[id].file] == m)
                .collect();
            if !scoped.is_empty() {
                return scoped;
            }
        }
        cands.clone()
    }

    /// Resolves an unqualified or `module::`-qualified free call. A
    /// module hint narrows by file stem; failing that, a same-file
    /// candidate wins (module-local calls are the common case — and two
    /// crates may privately define the same helper name); only then
    /// does the edge widen to every candidate.
    pub fn resolve_free(
        &self,
        name: &str,
        module_hint: Option<&str>,
        caller_file: usize,
    ) -> Vec<usize> {
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        if let Some(m) = module_hint {
            let scoped: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| self.file_stems[self.nodes[id].file] == m)
                .collect();
            if !scoped.is_empty() {
                return scoped;
            }
        }
        let local: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&id| self.nodes[id].file == caller_file)
            .collect();
        if !local.is_empty() {
            return local;
        }
        cands.clone()
    }

    /// Resolves a *method* call. Unlike [`resolve`](Self::resolve), an
    /// unhinted ambiguous method name resolves to nothing: workspace
    /// methods share names with ubiquitous std methods (`get`, `iter`,
    /// `append`, `expect`), and fanning those out to every same-named
    /// function floods the analysis with phantom effects. A type hint
    /// narrows to the matching `impl`; with no hint, only a unique
    /// candidate binds.
    pub fn resolve_method(&self, name: &str, type_hint: Option<&str>) -> Vec<usize> {
        let Some(cands) = self.by_name.get(name) else {
            return Vec::new();
        };
        if let Some(t) = type_hint {
            let typed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&id| self.nodes[id].impl_type.as_deref() == Some(t))
                .collect();
            if !typed.is_empty() {
                return typed;
            }
        }
        if cands.len() == 1 {
            return cands.clone();
        }
        Vec::new()
    }

    /// Node ids sharing `name`, unfiltered.
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}

/// Walks a method call's receiver chain backwards from the `.` at
/// `dot`, returning the chain's idents nearest-first with balanced
/// `(...)` / `[...]` groups skipped: for `router.zoom.lock()`'s final
/// `.` this yields `["zoom", "router"]`; for `db.shard(0).read()` it
/// yields `["shard", "db"]`.
pub fn receiver_chain<'a>(code: &'a Code, dot: usize) -> Vec<&'a str> {
    let mut idents = Vec::new();
    let mut j = dot;
    while j > 0 {
        j -= 1;
        let t = code.tok(j);
        match &t.kind {
            TokenKind::Punct(close @ (')' | ']')) => {
                let open = if *close == ')' { '(' } else { '[' };
                let mut depth = 1i32;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if code.tok(j).is_punct(*close) {
                        depth += 1;
                    } else if code.tok(j).is_punct(open) {
                        depth -= 1;
                    }
                }
                if depth > 0 {
                    break;
                }
            }
            TokenKind::Ident => {
                idents.push(t.text.as_str());
                // Continue only through `.` or `::` chain links.
                if j >= 1 && code.tok(j - 1).is_punct('.') {
                    j -= 1;
                } else if j >= 2 && code.tok(j - 1).is_punct(':') && code.tok(j - 2).is_punct(':') {
                    j -= 2;
                } else {
                    break;
                }
            }
            TokenKind::Punct('?') => {}
            _ => break,
        }
    }
    idents
}

/// A syntactic call site found in a function body.
pub struct RawCall {
    /// Called name (method or function ident).
    pub name: String,
    /// Code-view index of the name token.
    pub idx: usize,
    /// Whether this is a `.name(...)` method call (`idx - 1` is the dot).
    pub is_method: bool,
    /// For `qual::name(...)` path calls, the qualifier segment directly
    /// before the name.
    pub qualifier: Option<String>,
}

/// Detects a call with its name token at `i`: `.name(`, `name(`, or
/// `qual::name(`. Keywords, macro invocations (`name!`), and
/// definitions (`fn name`) are not calls.
pub fn call_at(code: &Code, i: usize) -> Option<RawCall> {
    let t = code.get(i)?;
    if t.kind != TokenKind::Ident || !code.get(i + 1)?.is_punct('(') {
        return None;
    }
    if KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    let prev = i.checked_sub(1).map(|j| code.tok(j));
    if let Some(p) = prev {
        if p.is_punct('.') {
            return Some(RawCall {
                name: t.text.clone(),
                idx: i,
                is_method: true,
                qualifier: None,
            });
        }
        if p.is_ident("fn") {
            return None;
        }
        if p.is_punct(':') && i >= 2 && code.tok(i - 2).is_punct(':') {
            let qualifier = (i >= 3 && code.tok(i - 3).kind == TokenKind::Ident)
                .then(|| code.tok(i - 3).text.clone());
            return Some(RawCall {
                name: t.text.clone(),
                idx: i,
                is_method: false,
                qualifier,
            });
        }
    }
    Some(RawCall {
        name: t.text.clone(),
        idx: i,
        is_method: false,
        qualifier: None,
    })
}

const KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "let", "mut",
    "ref", "box",
];

fn module_stem(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    let file = parts.last().copied().unwrap_or(rel);
    let stem = file.strip_suffix(".rs").unwrap_or(file);
    if stem == "mod" || stem == "lib" || stem == "main" {
        parts
            .get(parts.len().saturating_sub(2))
            .copied()
            .unwrap_or(stem)
            .to_string()
    } else {
        stem.to_string()
    }
}

fn sig_returns_guard(file: &crate::workspace::SourceFile, f: &crate::funcs::Function) -> bool {
    let sig = &file.tokens[f.sig.clone()];
    let mut arrow = None;
    for (i, w) in sig.windows(2).enumerate() {
        if w[0].is_punct('-') && w[1].is_punct('>') {
            arrow = Some(i + 2);
            break;
        }
    }
    let Some(from) = arrow else { return false };
    sig[from..]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text.ends_with("Guard"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::SourceFile;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: std::path::PathBuf::from("."),
            files: files
                .iter()
                .map(|(rel, text)| SourceFile::parse((*rel).into(), text))
                .collect(),
            manifests: Vec::new(),
            experiments_md: None,
        }
    }

    #[test]
    fn impl_type_narrows_and_missing_types_widen() {
        let ws = ws_of(&[(
            "src/lib.rs",
            "impl Database { fn apply(&self) {} }\n\
             impl Sharded { fn apply(&self) {} }\n\
             fn apply() {}\n",
        )]);
        let g = build(&ws);
        assert_eq!(g.nodes.len(), 3);
        let narrowed = g.resolve("apply", Some("Database"), None);
        assert_eq!(narrowed.len(), 1);
        assert_eq!(g.nodes[narrowed[0]].impl_type.as_deref(), Some("Database"));
        assert_eq!(
            g.resolve("apply", Some("Nope"), None).len(),
            3,
            "unmatched hint widens to every candidate"
        );
        assert_eq!(g.resolve("apply", None, None).len(), 3);
        assert!(g.resolve("missing", None, None).is_empty());
    }

    #[test]
    fn module_stems_narrow_free_calls() {
        let ws = ws_of(&[
            ("crates/a/src/feed.rs", "pub fn start() {}\n"),
            ("crates/b/src/replica.rs", "pub fn start() {}\n"),
        ]);
        let g = build(&ws);
        let scoped = g.resolve("start", None, Some("feed"));
        assert_eq!(scoped.len(), 1);
        assert_eq!(g.nodes[scoped[0]].file, 0);
    }

    #[test]
    fn guard_returning_signatures_are_flagged() {
        let ws = ws_of(&[(
            "src/lib.rs",
            "impl S {\n\
             fn read_all(&self) -> Vec<RwLockReadGuard<'_, Database>> { x }\n\
             fn count(&self) -> usize { 0 }\n\
             }\n",
        )]);
        let g = build(&ws);
        assert!(g.nodes[0].returns_guard);
        assert!(!g.nodes[1].returns_guard);
    }

    #[test]
    fn receiver_chains_skip_balanced_groups() {
        let file = SourceFile::parse(
            "x.rs".into(),
            "fn f() { db.shard(k).read(); router.zoom.lock(); self.shards[k].write(); }\n",
        );
        let code = Code::of(&file.tokens);
        let mut chains = Vec::new();
        for i in 0..code.len() {
            if let Some(name) = code.method_call(i) {
                if matches!(name.text.as_str(), "read" | "lock" | "write") {
                    chains.push(receiver_chain(&code, i));
                }
            }
        }
        assert_eq!(chains[0], vec!["shard", "db"]);
        assert_eq!(chains[1], vec!["zoom", "router"]);
        assert_eq!(chains[2], vec!["shards", "self"]);
    }

    #[test]
    fn call_detection_skips_keywords_macros_and_defs() {
        let file = SourceFile::parse(
            "x.rs".into(),
            "fn f() { if (a) {} vec![x]; g(1); h!(2); Database::open(p); x.m(); }\n",
        );
        let code = Code::of(&file.tokens);
        let calls: Vec<(String, bool, Option<String>)> = (0..code.len())
            .filter_map(|i| call_at(&code, i))
            .map(|c| (c.name, c.is_method, c.qualifier))
            .collect();
        assert_eq!(
            calls,
            vec![
                ("g".into(), false, None),
                ("open".into(), false, Some("Database".into())),
                ("m".into(), true, None),
            ]
        );
    }
}
