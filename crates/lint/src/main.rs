//! `insight-lint` — the workspace invariant checker CLI.
//!
//! ```text
//! insight-lint [--root DIR] [--baseline FILE] [--json] [--list-rules]
//!              [--fix-baseline]
//! ```
//!
//! Exit code 0 when no non-baselined diagnostics remain, 1 when any do,
//! 2 on usage or I/O errors. `scripts/check.sh` runs this as a hard
//! gate.

use lint::baseline::Baseline;
use lint::diag::render_json;
use lint::{find_workspace_root, rules, run};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    fix_baseline: bool,
    list_rules: bool,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("insight-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in rules::all_rules() {
            println!("{:<16} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }
    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(root) => root,
        None => {
            eprintln!("insight-lint: no workspace root found (run inside the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let outcome = match run(&root, &baseline_path) {
        Ok(outcome) => outcome,
        Err(msg) => {
            eprintln!("insight-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    if opts.fix_baseline {
        // The regenerated baseline covers everything currently firing
        // (previously baselined findings included).
        let mut all = outcome.reported;
        all.extend(outcome.baselined);
        all.sort_by_key(lint::diag::Diagnostic::sort_key);
        let text = Baseline::render_for(&all);
        if let Err(e) = std::fs::write(&baseline_path, &text) {
            eprintln!(
                "insight-lint: failed to write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "insight-lint: baseline {} regenerated covering {} diagnostic(s)",
            baseline_path.display(),
            all.len()
        );
        return ExitCode::SUCCESS;
    }
    if opts.json {
        println!("{}", render_json(&outcome.reported));
    } else {
        for d in &outcome.reported {
            println!("{d}");
        }
        let suppressed = if outcome.baselined.is_empty() {
            String::new()
        } else {
            format!(" ({} baselined)", outcome.baselined.len())
        };
        println!(
            "insight-lint: {} diagnostic(s){suppressed}",
            outcome.reported.len()
        );
    }
    if outcome.reported.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        baseline: None,
        json: false,
        fix_baseline: false,
        list_rules: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while let Some(flag) = args.get(i) {
        match flag.as_str() {
            "--json" => opts.json = true,
            "--fix-baseline" => opts.fix_baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--root" | "--baseline" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{flag} needs a value"))?;
                if flag == "--root" {
                    opts.root = Some(PathBuf::from(value));
                } else {
                    opts.baseline = Some(PathBuf::from(value));
                }
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: insight-lint [--root DIR] [--baseline FILE] [--json] \
                     [--list-rules] [--fix-baseline]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other} (see --help)")),
        }
        i += 1;
    }
    Ok(opts)
}
