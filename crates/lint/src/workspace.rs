//! The analyzed workspace: every `.rs` file tokenized and segmented,
//! every `Cargo.toml` minimally parsed, plus the documentation files
//! some rules cross-check (`EXPERIMENTS.md`).

use crate::funcs::{segment, Function};
use crate::lexer::{tokenize, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One analyzed Rust source file.
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Token stream (comments included).
    pub tokens: Vec<Token>,
    /// Per-function segmentation.
    pub functions: Vec<Function>,
    /// Lines suppressed per rule by `// lint:allow(rule, …)` comments.
    allow: BTreeMap<String, BTreeSet<u32>>,
}

impl SourceFile {
    /// Builds one analyzed file from source text.
    pub fn parse(rel: String, text: &str) -> Self {
        let tokens = tokenize(text);
        let functions = segment(&tokens);
        let allow = collect_allows(&tokens);
        Self {
            rel,
            tokens,
            functions,
            allow,
        }
    }

    /// Whether `rule` is suppressed on `line` by a `lint:allow` comment.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.allow
            .get(rule)
            .is_some_and(|lines| lines.contains(&line))
    }

    /// Whether the file as a whole is test/bench/example code by
    /// location (function-level `#[test]`/`#[cfg(test)]` state is
    /// tracked separately, per function).
    pub fn is_test_path(&self) -> bool {
        let parts: Vec<&str> = self.rel.split('/').collect();
        parts
            .iter()
            .any(|p| *p == "tests" || *p == "benches" || *p == "examples")
    }

    /// The non-test functions of this file (both by path and by in-file
    /// test markers).
    pub fn live_functions(&self) -> impl Iterator<Item = &Function> {
        let path_test = self.is_test_path();
        self.functions
            .iter()
            .filter(move |f| !path_test && !f.is_test)
    }
}

/// A `lint:allow(rule, …)` marker suppresses the named rules on the
/// comment's own line; when the comment stands alone on its line, it
/// suppresses them on the next code line instead (so long findings can
/// be annotated above the offending statement).
fn collect_allows(tokens: &[Token]) -> BTreeMap<String, BTreeSet<u32>> {
    let mut allow: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let Some(rules) = parse_allow(&t.text) else {
            continue;
        };
        // Standalone comment (column position is its first content) →
        // applies to the next non-comment token's line; trailing comment
        // → applies to its own line.
        let standalone = !tokens[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| !p.is_comment());
        let line = if standalone {
            tokens[i + 1..]
                .iter()
                .find(|n| !n.is_comment())
                .map_or(t.line, |n| n.line)
        } else {
            t.line
        };
        for rule in rules {
            allow.entry(rule).or_default().insert(line);
        }
    }
    allow
}

/// Extracts rule names from a comment containing `lint:allow(a, b)`.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("lint:allow(")?;
    let rest = &comment[at + "lint:allow(".len()..];
    let close = rest.find(')')?;
    Some(
        rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect(),
    )
}

/// One dependency declaration in a manifest.
pub struct ManifestDep {
    /// The dependency name as declared.
    pub name: String,
    /// 1-based line of the declaration.
    pub line: u32,
}

/// A minimally parsed `Cargo.toml`: its package name and its declared
/// dependency names (across `dependencies`, `dev-dependencies`,
/// `build-dependencies` and `workspace.dependencies`).
pub struct Manifest {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// `[package] name`, when present.
    pub package_name: Option<String>,
    /// Every declared dependency.
    pub deps: Vec<ManifestDep>,
}

impl Manifest {
    /// Parses the subset of TOML that Cargo manifests in this workspace
    /// use: `[section]` headers and `key = value` /
    /// `key.workspace = true` lines.
    pub fn parse(rel: String, text: &str) -> Self {
        let mut section = String::new();
        let mut package_name = None;
        let mut deps = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = (idx + 1) as u32;
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                section = header
                    .trim_end_matches(']')
                    .trim_matches('[')
                    .trim_end_matches(']')
                    .to_string();
                // `[dependencies.foo]` declares foo directly.
                for deps_kind in DEP_SECTIONS {
                    if let Some(name) = section.strip_prefix(&format!("{deps_kind}.")) {
                        deps.push(ManifestDep {
                            name: name.to_string(),
                            line: lineno,
                        });
                    }
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let key = key.trim();
            if section == "package" && key == "name" {
                package_name = Some(value.trim().trim_matches('"').to_string());
            }
            if DEP_SECTIONS.contains(&section.as_str()) {
                // `foo = "1"`, `foo = { path = … }`, `foo.workspace = true`
                let name = key.split('.').next().unwrap_or(key).trim();
                if !name.is_empty() {
                    deps.push(ManifestDep {
                        name: name.to_string(),
                        line: lineno,
                    });
                }
            }
        }
        Self {
            rel,
            package_name,
            deps,
        }
    }
}

const DEP_SECTIONS: [&str; 4] = [
    "dependencies",
    "dev-dependencies",
    "build-dependencies",
    "workspace.dependencies",
];

/// The whole analyzed workspace.
pub struct Workspace {
    /// Root directory the relative paths hang off.
    pub root: PathBuf,
    /// Every analyzed `.rs` file.
    pub files: Vec<SourceFile>,
    /// Every parsed `Cargo.toml`.
    pub manifests: Vec<Manifest>,
    /// `EXPERIMENTS.md` content, when the workspace has one.
    pub experiments_md: Option<String>,
}

impl Workspace {
    /// Walks `root` and analyzes every tracked source file, skipping
    /// build output (`target/`), VCS metadata, and this linter's own
    /// intentionally-violating test fixtures (`tests/fixtures/`).
    pub fn load(root: &Path) -> std::io::Result<Self> {
        let mut files = Vec::new();
        let mut manifests = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let mut entries: Vec<_> =
                std::fs::read_dir(&dir)?.collect::<std::io::Result<Vec<_>>>()?;
            entries.sort_by_key(std::fs::DirEntry::file_name);
            for entry in entries {
                let path = entry.path();
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if path.is_dir() {
                    if name == "target" || name.starts_with('.') || is_fixture_dir(&path) {
                        continue;
                    }
                    stack.push(path);
                    continue;
                }
                let rel = rel_path(root, &path);
                if name == "Cargo.toml" {
                    let text = std::fs::read_to_string(&path)?;
                    manifests.push(Manifest::parse(rel, &text));
                } else if name.ends_with(".rs") {
                    let text = std::fs::read_to_string(&path)?;
                    files.push(SourceFile::parse(rel, &text));
                }
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        manifests.sort_by(|a, b| a.rel.cmp(&b.rel));
        let experiments_md = std::fs::read_to_string(root.join("EXPERIMENTS.md")).ok();
        Ok(Self {
            root: root.to_path_buf(),
            files,
            manifests,
            experiments_md,
        })
    }

    /// The analyzed file whose relative path ends with `suffix`, if any.
    pub fn file_ending_with(&self, suffix: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel.ends_with(suffix))
    }

    /// Every ident token inside test code (test functions, plus whole
    /// files under `tests/`), as one set — used by `wire-exhaustive` to
    /// demand test coverage per wire variant.
    pub fn test_idents(&self) -> BTreeSet<&str> {
        let mut idents = BTreeSet::new();
        for f in &self.files {
            let whole_file = f.is_test_path();
            for func in &f.functions {
                if !whole_file && !func.is_test {
                    continue;
                }
                for t in func.body_tokens(&f.tokens) {
                    if t.kind == TokenKind::Ident {
                        idents.insert(t.text.as_str());
                    }
                }
            }
        }
        idents
    }
}

fn is_fixture_dir(path: &Path) -> bool {
    path.file_name().is_some_and(|n| n == "fixtures")
        && path
            .parent()
            .and_then(Path::file_name)
            .is_some_and(|n| n == "tests")
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_comments_cover_their_line_or_the_next() {
        let f = SourceFile::parse(
            "x.rs".into(),
            "fn a() {\n    foo.unwrap(); // lint:allow(panic-path)\n    \
             // lint:allow(panic-path, lock-across-io)\n    bar.unwrap();\n}\n",
        );
        assert!(f.allows("panic-path", 2), "trailing comment, same line");
        assert!(f.allows("panic-path", 4), "standalone comment, next line");
        assert!(f.allows("lock-across-io", 4));
        assert!(!f.allows("panic-path", 1));
        assert!(!f.allows("wal-bypass", 2));
    }

    #[test]
    fn manifest_parse_extracts_package_and_deps() {
        let m = Manifest::parse(
            "Cargo.toml".into(),
            "[package]\nname = \"demo\"\n\n[dependencies]\nserde = \"1\"\n\
             insightnotes-common.workspace = true\n\n[dev-dependencies]\n\
             proptest = { path = \"x\" }\n\n[dependencies.inline]\npath = \"y\"\n",
        );
        assert_eq!(m.package_name.as_deref(), Some("demo"));
        let names: Vec<&str> = m.deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["serde", "insightnotes-common", "proptest", "inline"]
        );
    }
}
