//! A small hand-rolled Rust lexer.
//!
//! `insight-lint` never needs a full parse: every rule works on token
//! streams, so the lexer's only hard job is to classify text that *looks*
//! like code but is not — string literals (escaped and raw, with any `#`
//! count), byte strings, char literals vs. lifetimes, and line/block
//! comments (nested, per the Rust grammar). Getting those right is what
//! keeps `"db.write().fsync()"` inside a doc example or a test string
//! from raising a diagnostic.
//!
//! Every token carries its 1-based line and column so diagnostics can be
//! reported `file:line:col` exactly where the offending token starts.

/// What a token is. Comments are kept in the stream: the allowlist
/// (`lint:allow`) and the `unsafe-doc` rule (`// SAFETY:`) both read
/// them. Rules that only care about code use [`Token::is_comment`] to
/// skip them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish; rules
    /// compare against the keywords they care about).
    Ident,
    /// Integer or float literal (loosely lexed; rules never inspect the
    /// value).
    Number,
    /// `"…"` or `b"…"` string literal. `text` holds the unescaped-as-is
    /// source content between the quotes.
    Str,
    /// `r"…"`/`r#"…"#`/`br#"…"#` raw string literal.
    RawStr,
    /// `'x'`-style char (or byte-char) literal.
    Char,
    /// `'a`-style lifetime.
    Lifetime,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment, nested arbitrarily.
    BlockComment,
    /// Any single punctuation character (`.`, `{`, `!`, …). Multi-char
    /// operators arrive as consecutive tokens.
    Punct(char),
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Source text: the identifier/number itself, a literal's inner
    /// content, or a comment's full text (markers included).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Whether this token is a line or block comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn peek2(&self) -> Option<char> {
        // Peekable cannot look two ahead; clone the cheap char iterator.
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Tokenizes Rust source. The lexer is total: any input produces a token
/// stream (a stray quote or unterminated comment simply swallows the
/// rest of the file into its literal, which is also what keeps the tool
/// robust on mid-edit files).
pub fn tokenize(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        let push = |tokens: &mut Vec<Token>, kind, text| {
            tokens.push(Token {
                kind,
                text,
                line,
                col,
            });
        };
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                let text = lex_line_comment(&mut cur);
                push(&mut tokens, TokenKind::LineComment, text);
            }
            '/' if cur.peek2() == Some('*') => {
                let text = lex_block_comment(&mut cur);
                push(&mut tokens, TokenKind::BlockComment, text);
            }
            '"' => {
                cur.bump();
                let text = lex_string_body(&mut cur);
                push(&mut tokens, TokenKind::Str, text);
            }
            '\'' => {
                let (kind, text) = lex_quote(&mut cur);
                push(&mut tokens, kind, text);
            }
            'r' | 'b' if starts_literal_prefix(&mut cur) => {
                let (kind, text) = lex_prefixed_literal(&mut cur);
                push(&mut tokens, kind, text);
            }
            c if c.is_alphabetic() || c == '_' => {
                let text = lex_ident(&mut cur);
                push(&mut tokens, TokenKind::Ident, text);
            }
            c if c.is_ascii_digit() => {
                let text = lex_number(&mut cur);
                push(&mut tokens, TokenKind::Number, text);
            }
            c => {
                cur.bump();
                push(&mut tokens, TokenKind::Punct(c), c.to_string());
            }
        }
    }
    tokens
}

fn lex_line_comment(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    text
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    let mut depth = 0u32;
    while let Some(c) = cur.peek() {
        if c == '/' && cur.peek2() == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.bump();
            cur.bump();
        } else if c == '*' && cur.peek2() == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.bump();
        }
    }
    text
}

/// Lexes a `"…"` body after the opening quote was consumed; returns the
/// raw content between the quotes.
fn lex_string_body(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                text.push('\\');
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            c => text.push(c),
        }
    }
    text
}

/// Char literal or lifetime, starting at a `'`.
///
/// A lifetime is `'` followed by an identifier start that is *not*
/// closed by another `'` right after a single identifier character —
/// `'a'` is a char, `'a` is a lifetime, `'static` is a lifetime,
/// `'\n'` is a char.
fn lex_quote(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    cur.bump(); // the opening '
    let mut text = String::new();
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            text.push('\\');
            cur.bump();
            if let Some(esc) = cur.bump() {
                text.push(esc);
                if esc == 'u' {
                    // '\u{…}' — consume the braced payload.
                    while let Some(c) = cur.bump() {
                        text.push(c);
                        if c == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            (TokenKind::Char, text)
        }
        Some(c) if c.is_alphabetic() || c == '_' => {
            // Could be 'x' (char) or 'ident (lifetime): read the
            // identifier run, then look for a closing quote.
            while let Some(c) = cur.peek() {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
                (TokenKind::Char, text)
            } else {
                (TokenKind::Lifetime, text)
            }
        }
        Some(c) => {
            // Punctuation char literal like '{' or '0'.
            text.push(c);
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            (TokenKind::Char, text)
        }
        None => (TokenKind::Char, text),
    }
}

/// Whether the `r`/`b` at the cursor starts a literal prefix (`r"`,
/// `r#"`, `b"`, `b'`, `br"`, `br#"`) rather than an identifier. Raw
/// identifiers (`r#type`) are *not* literal prefixes.
fn starts_literal_prefix(cur: &mut Cursor<'_>) -> bool {
    let mut it = cur.chars.clone();
    let first = it.next();
    let mut next = it.next();
    if first == Some('b') && matches!(next, Some('r' | '"' | '\'')) {
        if next == Some('r') {
            next = it.next();
            // br" or br#…#"
            while next == Some('#') {
                next = it.next();
            }
            return next == Some('"');
        }
        return true;
    }
    if first == Some('r') {
        if next == Some('"') {
            return true;
        }
        let mut hashes = 0usize;
        while next == Some('#') {
            hashes += 1;
            next = it.next();
        }
        // r#"…"# is a raw string; r#ident is a raw identifier.
        return hashes > 0 && next == Some('"');
    }
    false
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'x'` after
/// [`starts_literal_prefix`] matched.
fn lex_prefixed_literal(cur: &mut Cursor<'_>) -> (TokenKind, String) {
    let mut raw = false;
    while let Some(c) = cur.peek() {
        match c {
            'b' => {
                cur.bump();
            }
            'r' => {
                raw = true;
                cur.bump();
            }
            _ => break,
        }
    }
    if cur.peek() == Some('\'') {
        return lex_quote(cur);
    }
    if !raw {
        cur.bump(); // opening "
        return (TokenKind::Str, lex_string_body(cur));
    }
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening "
    let closer: String = std::iter::once('"')
        .chain(std::iter::repeat_n('#', hashes))
        .collect();
    let mut text = String::new();
    while cur.peek().is_some() {
        if text.ends_with(&closer) || (hashes == 0 && cur.peek() == Some('"')) {
            // hashes == 0: the quote itself closes; with hashes the
            // closer has already been absorbed into `text`.
            if hashes == 0 {
                cur.bump();
            } else {
                text.truncate(text.len() - closer.len());
            }
            return (TokenKind::RawStr, text);
        }
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    if text.ends_with(&closer) && hashes > 0 {
        text.truncate(text.len() - closer.len());
    }
    (TokenKind::RawStr, text)
}

fn lex_ident(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    text
}

fn lex_number(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else if c == '.' {
            // `3.25` continues the number; `8..16` does not (the `.`
            // belongs to a range), nor does `4.to_string()` (method on a
            // literal).
            match cur.peek2() {
                Some(d) if d.is_ascii_digit() => {
                    text.push('.');
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn strings_comments_and_chars_do_not_leak_code_tokens() {
        let src = r###"
            let s = "db.write().unwrap()"; // unwrap() here is comment
            let r = r#"panic!("x")"#;
            let c = '{';
            /* outer /* nested unwrap() */ still comment */
            let lt: &'static str = s;
        "###;
        let toks = tokenize(src);
        assert!(
            !toks
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == "unwrap"),
            "unwrap inside literals/comments must not become an ident"
        );
        assert!(toks.iter().any(|t| t.kind == TokenKind::RawStr));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "{"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "static"));
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokenKind::BlockComment)
                .count(),
            1,
            "nested block comment lexes as one token"
        );
    }

    #[test]
    fn raw_strings_with_hashes_terminate_at_matching_closer() {
        let toks = tokenize(r####"let x = r##"inner "# quote"## ; let y = 1;"####);
        let raw = toks
            .iter()
            .find(|t| t.kind == TokenKind::RawStr)
            .expect("raw string token");
        assert_eq!(raw.text, r##"inner "# quote"##);
        assert!(toks.iter().any(|t| t.is_ident("y")), "lexing continues");
    }

    #[test]
    fn byte_literals_and_raw_idents() {
        let toks = tokenize(r#"let m = *b"INWP"; let t = r#type; let n = b'x';"#);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "INWP"));
        assert!(
            toks.iter().any(|t| t.is_ident("type")),
            "raw ident keeps ident"
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "x"));
    }

    #[test]
    fn spans_are_line_and_col_accurate() {
        let src = "fn main() {\n    foo.unwrap();\n}\n";
        let toks = tokenize(src);
        let unwrap = toks.iter().find(|t| t.is_ident("unwrap")).expect("token");
        assert_eq!((unwrap.line, unwrap.col), (2, 9));
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            kinds("a[4..8] 3.25 0u8"),
            vec![
                TokenKind::Ident,
                TokenKind::Punct('['),
                TokenKind::Number,
                TokenKind::Punct('.'),
                TokenKind::Punct('.'),
                TokenKind::Number,
                TokenKind::Punct(']'),
                TokenKind::Number,
                TokenKind::Number,
            ]
        );
    }
}
