//! Diagnostics: what a rule reports, and how it renders as text and
//! JSON.

/// One finding: a rule, a span, and a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired (its kebab-case name, e.g. `panic-path`).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation, including the invariant at stake.
    pub message: String,
}

impl Diagnostic {
    /// The stable ordering diagnostics are reported in: by file, then
    /// span, then rule.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str, String) {
        (
            self.file.clone(),
            self.line,
            self.col,
            self.rule,
            self.message.clone(),
        )
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Renders diagnostics as a stable JSON document:
/// `{"diagnostics": [...], "count": N}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"diagnostics\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
            json_str(d.rule),
            json_str(&d.file),
            d.line,
            d.col,
            json_str(&d.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", diags.len()));
    out
}

/// Escapes a string as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_renders() {
        let d = Diagnostic {
            rule: "panic-path",
            file: "crates/server/src/lib.rs".into(),
            line: 3,
            col: 9,
            message: "`unwrap` on a \"request\" path".into(),
        };
        let json = render_json(std::slice::from_ref(&d));
        assert!(json.contains(r#""rule":"panic-path""#));
        assert!(json.contains(r#"\"request\""#));
        assert!(json.ends_with(r#""count":1}"#));
        assert_eq!(
            d.to_string(),
            "crates/server/src/lib.rs:3:9: panic-path: `unwrap` on a \"request\" path"
        );
    }
}
