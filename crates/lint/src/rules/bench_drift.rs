//! `bench-drift`: every machine-readable bench report must stay
//! documented.
//!
//! PR 3 introduced `write_bench_json(name, …)`, which emits
//! `BENCH_<name>.json` next to the repo's experiment write-ups; the
//! contract is that every such artifact has a matching section in
//! `EXPERIMENTS.md` explaining what the numbers mean and how to
//! regenerate them. A writer whose name drifts from the docs produces
//! orphaned artifacts that downstream tooling can no longer interpret.

use super::{Code, Rule};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

pub(crate) struct BenchDrift;

impl Rule for BenchDrift {
    fn name(&self) -> &'static str {
        "bench-drift"
    }

    fn description(&self) -> &'static str {
        "every BENCH_*.json writer in crates/bench has a matching EXPERIMENTS.md mention"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let experiments = ws.experiments_md.as_deref().unwrap_or("");
        for file in &ws.files {
            if !file.rel.starts_with("crates/bench/") {
                continue;
            }
            // Writers may sit inside bench harness code, which lives
            // under benches/ — scan every function here, test or not.
            let code = Code::of(&file.tokens);
            for i in 0..code.len() {
                if !code.tok(i).is_ident("write_bench_json") {
                    continue;
                }
                if !code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
                let Some(name_tok) = code.get(i + 2) else {
                    continue;
                };
                if name_tok.kind != TokenKind::Str {
                    // Dynamic name: cannot check statically; the writer
                    // itself (bench::write_bench_json) also lands here.
                    continue;
                }
                let artifact = format!("BENCH_{}.json", name_tok.text);
                if !experiments.contains(&artifact) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        file: file.rel.clone(),
                        line: name_tok.line,
                        col: name_tok.col,
                        message: format!(
                            "bench writer emits `{artifact}` but EXPERIMENTS.md never \
                             mentions it; document the experiment (section + regeneration \
                             command) or rename the writer",
                        ),
                    });
                }
            }
        }
    }
}
