//! `reactor-blocking`: no blocking calls inside the epoll event loop.
//!
//! The PR 8 reactor replaced thread-per-connection sessions with a few
//! worker event loops multiplexing thousands of connections. One
//! blocked worker therefore stalls *every* connection assigned to it —
//! the failure mode is silent (throughput collapses, nothing crashes),
//! so the convention is enforced here: code under
//! `crates/server/src/reactor/` may only wait inside
//! [`EXEMPT_FNS`] (`wait_ready`, the epoll wait itself, and `join`,
//! the shutdown-path thread join).
//!
//! Banned shapes, whether as method calls or path calls:
//!
//! - `sleep` / `park` — a worker that naps holds its whole
//!   connection set hostage; timed waits belong in the timer wheel.
//! - `recv` / `recv_timeout` — blocking channel receives; workers are
//!   woken by the eventfd and must drain queues with `try_recv`.
//! - `join` — a worker waiting on another thread deadlocks the loop;
//!   only the shutdown-path `join` function may reap workers.
//! - `set_read_timeout` / `set_write_timeout` — per-socket kernel
//!   timeouts are meaningless on nonblocking fds (and were the silent
//!   no-op the deadline wheel exists to replace).
//! - `write_frame` / `write_frame_seq` / `read_frame` /
//!   `read_frame_seq` — the blocking wire helpers; reactor code
//!   encodes with `frame_bytes*` and moves bytes through the
//!   nonblocking buffered queues.

use super::{Code, Rule};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

/// Functions allowed to block: the epoll wait is *the* sanctioned
/// sleep, and the reactor's shutdown path joins its worker threads.
const EXEMPT_FNS: [&str; 2] = ["wait_ready", "join"];

/// Calls that park the calling thread (or quietly reintroduce kernel
/// socket timeouts).
const BLOCKING_CALLS: [&str; 11] = [
    "sleep",
    "park",
    "join",
    "recv",
    "recv_timeout",
    "set_read_timeout",
    "set_write_timeout",
    "write_frame",
    "write_frame_seq",
    "read_frame",
    "read_frame_seq",
];

pub(crate) struct ReactorBlocking;

impl Rule for ReactorBlocking {
    fn name(&self) -> &'static str {
        "reactor-blocking"
    }

    fn description(&self) -> &'static str {
        "no blocking calls in reactor event-loop code (the epoll wait_ready is the only sleep)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !file.rel.contains("server/src/reactor/") || !file.rel.ends_with(".rs") {
                continue;
            }
            for func in file.live_functions() {
                if EXEMPT_FNS.contains(&func.name.as_str()) {
                    continue;
                }
                let code = Code::of(func.body_tokens(&file.tokens));
                check_function(&code, &file.rel, self.name(), out);
            }
        }
    }
}

fn check_function(code: &Code<'_>, file: &str, rule: &'static str, out: &mut Vec<Diagnostic>) {
    for i in 0..code.len() {
        let t = code.tok(i);
        if t.kind != TokenKind::Ident || !BLOCKING_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        // A call is `name(` — as a method (`.name(`), a path call
        // (`thread::sleep(`), or bare. Anything else (a local named
        // `recv`, a doc word) is not a call site.
        if !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        // `self.wait_ready(..)` calls *into* the exempt fn are fine —
        // the wait still happens inside `wait_ready` itself, which is
        // where reviewers look for it. Nothing to special-case: the
        // names simply never overlap with BLOCKING_CALLS.
        out.push(Diagnostic {
            rule,
            file: file.to_string(),
            line: t.line,
            col: t.col,
            message: format!(
                "`{}` blocks the reactor worker and stalls every connection it owns; \
                 event-loop code may only wait inside `wait_ready` — use the timer \
                 wheel for deadlines, `try_recv` after an eventfd wake for queues, and \
                 the nonblocking write queues for frames",
                t.text
            ),
        });
    }
}
