//! `panic-path`: the request, recovery and wire-decode paths must not
//! be able to panic.
//!
//! A panic in a session thread kills one connection; a panic in the
//! committer or during WAL replay kills the daemon or the recovery —
//! and every one of these paths handles *untrusted or damaged input by
//! design* (malformed frames, torn log tails). Errors there must flow
//! through `common::Error` so the server answers with a structured
//! error frame and recovery truncates instead of dying.
//!
//! Scoped to:
//! - all of `crates/server/src/` (session, committer, daemon binary),
//! - the recovery path of the WAL (`Wal::open`, `decode_frame` in
//!   `crates/engine/src/wal.rs`),
//! - the decode path of the wire protocol (`decode*`, `read_frame`,
//!   `read_full` and the `Decoder` methods in
//!   `crates/common/src/wire.rs`).
//!
//! Flags `.unwrap()` / `.expect(`, the panicking macro family
//! (`panic!`, `unreachable!`, `todo!`, `unimplemented!`, `assert!`…),
//! and slice/array indexing (`x[i]`, `x[a..b]`), which panics on
//! out-of-range input. Test code is exempt.

use super::{Code, Rule};
use crate::diag::Diagnostic;
use crate::funcs::Function;
use crate::lexer::TokenKind;
use crate::workspace::{SourceFile, Workspace};

/// A scope: a path prefix (or full file), plus an optional allowlist of
/// function/impl names the rule applies to within that file.
struct Scope {
    path_prefix: &'static str,
    /// `None` → every function in matching files. `Some` → only
    /// functions whose name, or enclosing impl type, is listed.
    fns: Option<&'static [&'static str]>,
}

const SCOPES: [Scope; 5] = [
    Scope {
        path_prefix: "crates/server/src/",
        fns: None,
    },
    Scope {
        // Replication: replica apply/decode and feed paths consume
        // bytes from the wire and from mirrored logs — a malformed
        // frame must surface as an error, never a panic.
        path_prefix: "crates/replication/src/",
        fns: None,
    },
    Scope {
        // WAL recovery: header + tail scan and per-record decoding.
        path_prefix: "crates/engine/src/wal.rs",
        fns: Some(&["open", "decode_frame", "decode", "Decoder"]),
    },
    Scope {
        // Sharded broadcast + recovery: a panic under the broadcast
        // mutex wedges every shard; a panic during recovery or the
        // membership sweep kills the daemon before it serves.
        path_prefix: "crates/engine/src/shard.rs",
        fns: Some(&["broadcast_script", "recover", "reconcile_membership"]),
    },
    Scope {
        // Wire decode: everything a hostile peer's bytes flow through.
        path_prefix: "crates/common/src/wire.rs",
        fns: Some(&[
            "decode",
            "decode_frame",
            "read_frame",
            "read_full",
            "Decoder",
        ]),
    },
];

const PANIC_MACROS: [&str; 6] = [
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
];

/// Idents that legitimately precede a `[` without it being an index
/// expression (`&mut [u8]`, `dyn [..]`-style type positions, `let [a,
/// b] =` patterns, `return [x]`).
const NON_INDEX_PRECEDERS: [&str; 16] = [
    "mut", "dyn", "ref", "let", "return", "break", "in", "as", "else", "match", "move", "static",
    "const", "where", "impl", "box",
];

pub(crate) struct PanicPath;

impl Rule for PanicPath {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/slice-indexing on request, recovery or wire-decode paths"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            let Some(scope) = SCOPES
                .iter()
                .find(|s| file.rel.starts_with(s.path_prefix) || file.rel == s.path_prefix)
            else {
                continue;
            };
            for func in file.live_functions() {
                if !in_scope(scope, func) {
                    continue;
                }
                check_function(file, func, self.name(), out);
            }
        }
    }
}

fn in_scope(scope: &Scope, func: &Function) -> bool {
    match scope.fns {
        None => true,
        Some(names) => {
            names.contains(&func.name.as_str())
                || func
                    .impl_type
                    .as_deref()
                    .is_some_and(|ty| names.contains(&ty))
        }
    }
}

fn check_function(
    file: &SourceFile,
    func: &Function,
    rule: &'static str,
    out: &mut Vec<Diagnostic>,
) {
    let code = Code::of(func.body_tokens(&file.tokens));
    let diag = |t: &crate::lexer::Token, message: String| Diagnostic {
        rule,
        file: file.rel.clone(),
        line: t.line,
        col: t.col,
        message,
    };
    for i in 0..code.len() {
        let t = code.tok(i);
        // .unwrap() / .expect(…)
        if let Some(name) = code.method_call(i) {
            if name.text == "unwrap" || name.text == "expect" {
                out.push(diag(
                    name,
                    format!(
                        "`{}` can panic; this is a no-panic path (fn `{}`) — return a \
                         structured `common::Error` (or degrade and log) instead",
                        name.text, func.name
                    ),
                ));
            }
        }
        // panic!-family macro invocation.
        if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(diag(
                t,
                format!(
                    "`{}!` aborts the thread; this is a no-panic path (fn `{}`) — \
                     convert the condition into a structured `common::Error`",
                    t.text, func.name
                ),
            ));
        }
        // Indexing: `expr[` where expr ends in an ident, `)` or `]`.
        if t.is_punct('[') && i > 0 {
            let prev = code.tok(i - 1);
            let indexes = match &prev.kind {
                TokenKind::Ident => !NON_INDEX_PRECEDERS.contains(&prev.text.as_str()),
                TokenKind::Punct(')') | TokenKind::Punct(']') => true,
                _ => false,
            };
            // `#[attr]` never reaches here: `#` precedes the `[`.
            if indexes {
                out.push(diag(
                    t,
                    format!(
                        "slice/array indexing panics out of range; this is a no-panic \
                         path (fn `{}`) — use `.get(..)` / pattern matching and handle \
                         the `None`",
                        func.name
                    ),
                ));
            }
        }
    }
}
