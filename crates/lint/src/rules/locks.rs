//! The four deadlock-freedom rules, driven by one shared
//! interprocedural analysis:
//!
//! - `lock-order`: no acquisition of a lower-ranked lock class while a
//!   higher-ranked guard is live, transitively through calls.
//! - `shard-guard-order`: multiple guards of an ordered class (the
//!   shard `RwLock`s) must be taken in ascending index order.
//! - `double-acquire`: re-entering a class already held on some call
//!   path (self-deadlock for mutex classes).
//! - `guard-across-wait`: no condvar wait / blocking channel receive /
//!   thread join while holding a guard of a different class.
//!
//! The analysis builds the workspace call graph ([`crate::callgraph`]),
//! scans every live function for lock acquisitions (classified by the
//! `locks.toml` hierarchy, [`crate::lockmodel`]), computes lexical
//! guard regions (a `let`-bound guard is held to the end of its
//! enclosing block or an explicit `drop(name)`, a temporary to the end
//! of its statement — which, as in Rust, includes a `match`/`if let`
//! body whose scrutinee it is), then propagates *may-acquire* /
//! *may-wait* / *escaping-guard* summaries to a fixpoint over the call
//! edges. Unresolvable calls through local callable values widen the
//! analysis: with any guard held they are themselves findings.

use crate::callgraph::{self, CallGraph};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::lockmodel::{collect_lock_classes, LockKind, LockModel};
use crate::rules::{Code, Rule};
use crate::workspace::Workspace;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::rc::Rc;

/// `lock-order` (see module docs).
pub(crate) struct LockOrder;
/// `shard-guard-order` (see module docs).
pub(crate) struct ShardGuardOrder;
/// `double-acquire` (see module docs).
pub(crate) struct DoubleAcquire;
/// `guard-across-wait` (see module docs).
pub(crate) struct GuardAcrossWait;

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }
    fn description(&self) -> &'static str {
        "lock classes must be acquired in locks.toml rank order, transitively through calls"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        emit(ws, self.name(), out);
    }
}

impl Rule for ShardGuardOrder {
    fn name(&self) -> &'static str {
        "shard-guard-order"
    }
    fn description(&self) -> &'static str {
        "guards of an ordered lock class must be taken in ascending index order"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        emit(ws, self.name(), out);
    }
}

impl Rule for DoubleAcquire {
    fn name(&self) -> &'static str {
        "double-acquire"
    }
    fn description(&self) -> &'static str {
        "no re-entry of a lock class already held on some call path (self-deadlock)"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        emit(ws, self.name(), out);
    }
}

impl Rule for GuardAcrossWait {
    fn name(&self) -> &'static str {
        "guard-across-wait"
    }
    fn description(&self) -> &'static str {
        "no condvar wait / blocking recv / join while holding a guard of a different class"
    }
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        emit(ws, self.name(), out);
    }
}

fn emit(ws: &Workspace, rule: &'static str, out: &mut Vec<Diagnostic>) {
    let analysis = shared_analysis(ws);
    out.extend(analysis.diags.iter().filter(|d| d.rule == rule).cloned());
}

/// The four rules share one expensive pass; it is memoized per
/// workspace (keyed by content fingerprint) so `run_all` computes it
/// once, not four times.
fn shared_analysis(ws: &Workspace) -> Rc<Analysis> {
    thread_local! {
        static CACHE: std::cell::RefCell<Option<(u64, Rc<Analysis>)>> =
            const { std::cell::RefCell::new(None) };
    }
    let fp = fingerprint(ws);
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        if let Some((key, a)) = c.as_ref() {
            if *key == fp {
                return Rc::clone(a);
            }
        }
        let a = Rc::new(Analysis::compute(ws));
        *c = Some((fp, Rc::clone(&a)));
        a
    })
}

fn fingerprint(ws: &Workspace) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    ws.root.hash(&mut h);
    for f in &ws.files {
        f.rel.hash(&mut h);
        f.tokens.len().hash(&mut h);
    }
    h.finish()
}

struct Analysis {
    diags: Vec<Diagnostic>,
}

/// One direct lock acquisition with its lexical guard region.
#[derive(Clone)]
struct Acq {
    class: usize,
    write: bool,
    /// Literal shard index when the receiver was `xs[<number>]`.
    index: Option<u64>,
    /// Code index of the acquisition anchor.
    idx: usize,
    line: u32,
    /// Code indices over which the guard is held.
    region: Range<usize>,
}

/// One call site, resolved.
struct CallEv {
    name: String,
    idx: usize,
    line: u32,
    col: u32,
    /// Resolved candidate node ids (empty = not a workspace function).
    targets: Vec<usize>,
    /// Call through a local callable value — unresolvable by name.
    unknown: bool,
    /// Guard region *if* the call returns guards (escaping acquisition).
    region: Range<usize>,
}

/// One blocking-wait site.
struct WaitEv {
    name: String,
    idx: usize,
    line: u32,
    col: u32,
    /// Class whose guard legitimately rides through this wait (the
    /// condvar protocol: `cond.wait(guard)` atomically releases it).
    exempt: Option<usize>,
}

struct FnScan {
    acqs: Vec<Acq>,
    calls: Vec<CallEv>,
    waits: Vec<WaitEv>,
}

#[derive(Clone)]
struct AcqEff {
    write: bool,
    via: Option<String>,
}

/// Blocking method names. `recv`/`join` only in zero-arg form (the
/// std channel/thread shapes); the condvar family takes the guard.
const WAIT_ZERO_ARG: [&str; 2] = ["recv", "join"];
const WAIT_WITH_ARGS: [&str; 4] = ["recv_timeout", "wait", "wait_timeout", "wait_for"];

impl Analysis {
    fn compute(ws: &Workspace) -> Self {
        let model = LockModel::load(&ws.root);
        let mut diags = model.errors.clone();
        if model.classes.is_empty() {
            return Self { diags };
        }
        let graph = callgraph::build(ws);
        let scans: Vec<FnScan> = (0..graph.nodes.len())
            .map(|id| scan_function(ws, &graph, &model, id))
            .collect();

        // Fixpoint: may_acquire / may_wait / escapes over call edges.
        let n = graph.nodes.len();
        let mut may_acquire: Vec<BTreeMap<usize, AcqEff>> = vec![BTreeMap::new(); n];
        let mut may_wait: Vec<Option<String>> = vec![None; n];
        let mut escapes: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for id in 0..n {
            for a in &scans[id].acqs {
                may_acquire[id]
                    .entry(a.class)
                    .and_modify(|e| e.write |= a.write)
                    .or_insert(AcqEff {
                        write: a.write,
                        via: None,
                    });
                if graph.nodes[id].returns_guard {
                    escapes[id].insert(a.class);
                }
            }
            if let Some(w) = scans[id].waits.first() {
                may_wait[id] = Some(w.name.clone());
            }
        }
        loop {
            let mut changed = false;
            for id in 0..n {
                for call in &scans[id].calls {
                    for &t in &call.targets {
                        let effs: Vec<(usize, AcqEff)> = may_acquire[t]
                            .iter()
                            .map(|(c, e)| (*c, e.clone()))
                            .collect();
                        for (c, e) in effs {
                            match may_acquire[id].get_mut(&c) {
                                Some(have) => {
                                    if e.write && !have.write {
                                        have.write = true;
                                        changed = true;
                                    }
                                }
                                None => {
                                    may_acquire[id].insert(
                                        c,
                                        AcqEff {
                                            write: e.write,
                                            via: Some(call.name.clone()),
                                        },
                                    );
                                    changed = true;
                                }
                            }
                        }
                        if may_wait[id].is_none() && may_wait[t].is_some() {
                            may_wait[id] = Some(call.name.clone());
                            changed = true;
                        }
                        if graph.nodes[id].returns_guard && graph.nodes[t].returns_guard {
                            let add: Vec<usize> = escapes[t]
                                .iter()
                                .copied()
                                .filter(|c| !escapes[id].contains(c))
                                .collect();
                            if !add.is_empty() {
                                escapes[id].extend(add);
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }

        if let Ok(name) = std::env::var("INSIGHT_LINT_DEBUG_FN") {
            for id in 0..n {
                if graph.nodes[id].name == name {
                    eprintln!(
                        "fn {} ({}#{:?}): acq={:?} wait={:?}",
                        name,
                        ws.files[graph.nodes[id].file].rel,
                        graph.nodes[id].impl_type,
                        may_acquire[id]
                            .iter()
                            .map(|(c, e)| (model.classes[*c].name.clone(), e.via.clone()))
                            .collect::<Vec<_>>(),
                        may_wait[id]
                    );
                    for c in &scans[id].calls {
                        eprintln!(
                            "  call {} -> {:?}",
                            c.name,
                            c.targets
                                .iter()
                                .map(|&t| format!(
                                    "{}::{}",
                                    graph.nodes[t].impl_type.clone().unwrap_or_default(),
                                    graph.nodes[t].name
                                ))
                                .collect::<Vec<_>>()
                        );
                    }
                }
            }
        }

        // Violation scan, per function.
        for (id, scan) in scans.iter().enumerate() {
            let file = &ws.files[graph.nodes[id].file];
            // Materialize guard-returning calls as held acquisitions.
            let mut held_acqs: Vec<Acq> = scan.acqs.clone();
            for call in &scan.calls {
                let mut classes: BTreeSet<usize> = BTreeSet::new();
                for &t in &call.targets {
                    if graph.nodes[t].returns_guard {
                        classes.extend(escapes[t].iter().copied());
                    }
                }
                for c in classes {
                    let write = call
                        .targets
                        .iter()
                        .any(|&t| may_acquire[t].get(&c).is_some_and(|e| e.write));
                    held_acqs.push(Acq {
                        class: c,
                        write,
                        index: None,
                        idx: call.idx,
                        line: call.line,
                        region: call.region.clone(),
                    });
                }
            }
            let held_at = |j: usize| -> Vec<&Acq> {
                held_acqs
                    .iter()
                    .filter(|a| a.idx != j && a.region.contains(&j))
                    .collect()
            };
            let class_name = |c: usize| model.classes[c].name.as_str();
            let body = &file.functions[graph.nodes[id].func];
            let code = Code::of(body.body_tokens(&file.tokens));
            // Direct acquisitions against everything already held.
            for a in &scan.acqs {
                for h in held_at(a.idx) {
                    let (t_line, t_col) = (a.line, code.tok(a.idx).col);
                    if h.class == a.class {
                        let class = &model.classes[a.class];
                        if class.ordered {
                            let msg = match (a.index, h.index) {
                                (Some(i2), Some(i1)) if i2 < i1 => Some(format!(
                                    "`{0}[{i2}]` acquired while `{0}[{i1}]` is held (line {1}); \
                                     ordered guards must be taken in ascending index order",
                                    class.name, h.line
                                )),
                                (Some(i2), Some(i1)) if i2 == i1 && (a.write || h.write) => {
                                    Some(format!(
                                        "`{0}[{i1}]` re-acquired with exclusive access while \
                                         already held (line {1}); this self-deadlocks",
                                        class.name, h.line
                                    ))
                                }
                                (Some(_), Some(_)) => None,
                                _ => Some(format!(
                                    "`{0}` guard acquired while another `{0}` guard is held \
                                     (line {1}) and index order cannot be proven; take ordered \
                                     guards in one ascending pass",
                                    class.name, h.line
                                )),
                            };
                            if let Some(message) = msg {
                                diags.push(diag("shard-guard-order", file, t_line, t_col, message));
                            }
                        } else if class.kind == LockKind::Mutex || a.write || h.write {
                            diags.push(diag(
                                "double-acquire",
                                file,
                                t_line,
                                t_col,
                                format!(
                                    "`{}` re-acquired while already held (line {}); re-entering \
                                     a held lock class self-deadlocks",
                                    class.name, h.line
                                ),
                            ));
                        }
                    } else if a.class < h.class {
                        diags.push(diag(
                            "lock-order",
                            file,
                            t_line,
                            t_col,
                            format!(
                                "`{}` acquired while a `{}` guard is held (acquired on line \
                                 {}); locks.toml ranks `{0}` before `{1}` — take it first or \
                                 drop the `{1}` guard",
                                class_name(a.class),
                                class_name(h.class),
                                h.line
                            ),
                        ));
                    }
                }
            }
            // Call sites: transitive effects against everything held.
            for call in &scan.calls {
                let held = held_at(call.idx);
                if held.is_empty() {
                    continue;
                }
                if call.unknown {
                    let h = held[0];
                    diags.push(diag(
                        "lock-order",
                        file,
                        call.line,
                        call.col,
                        format!(
                            "call through local callable `{}` while a `{}` guard is held \
                             (acquired on line {}); unresolved callees widen the analysis — \
                             drop the guard before calling out",
                            call.name,
                            class_name(h.class),
                            h.line
                        ),
                    ));
                    continue;
                }
                let mut effs: BTreeMap<usize, AcqEff> = BTreeMap::new();
                let mut waits_via: Option<String> = None;
                for &t in &call.targets {
                    for (c, e) in &may_acquire[t] {
                        effs.entry(*c)
                            .and_modify(|have| have.write |= e.write)
                            .or_insert_with(|| e.clone());
                    }
                    if waits_via.is_none() {
                        waits_via = may_wait[t].clone();
                    }
                }
                for h in &held {
                    for (c, e) in &effs {
                        let via = e
                            .via
                            .as_ref()
                            .map(|v| format!(" (via `{v}`)"))
                            .unwrap_or_default();
                        if *c == h.class {
                            let class = &model.classes[*c];
                            if class.ordered {
                                // The call's own escaping guard is not a
                                // re-acquisition of itself.
                                if h.idx == call.idx {
                                    continue;
                                }
                                diags.push(diag(
                                    "shard-guard-order",
                                    file,
                                    call.line,
                                    call.col,
                                    format!(
                                        "call to `{}` may acquire `{}` guards{via} while one \
                                         is already held (line {}); ordered classes must be \
                                         acquired in one ascending pass",
                                        call.name, class.name, h.line
                                    ),
                                ));
                            } else if class.kind == LockKind::Mutex || e.write || h.write {
                                diags.push(diag(
                                    "double-acquire",
                                    file,
                                    call.line,
                                    call.col,
                                    format!(
                                        "call to `{}` may re-acquire `{}`{via}, which is \
                                         already held (line {}); self-deadlock",
                                        call.name, class.name, h.line
                                    ),
                                ));
                            }
                        } else if c < &h.class {
                            diags.push(diag(
                                "lock-order",
                                file,
                                call.line,
                                call.col,
                                format!(
                                    "call to `{}` may acquire `{}`{via} while a `{}` guard is \
                                     held (acquired on line {}); locks.toml ranks `{1}` before \
                                     `{2}`",
                                    call.name,
                                    class_name(*c),
                                    class_name(h.class),
                                    h.line,
                                ),
                            ));
                        }
                    }
                    if let Some(via) = &waits_via {
                        diags.push(diag(
                            "guard-across-wait",
                            file,
                            call.line,
                            call.col,
                            format!(
                                "call to `{}` may block on `{via}` while a `{}` guard is held \
                                 (acquired on line {}); blocking waits must not pin locks",
                                call.name,
                                class_name(h.class),
                                h.line
                            ),
                        ));
                    }
                }
            }
            // Waits against everything held.
            for w in &scan.waits {
                for h in held_at(w.idx) {
                    if w.exempt == Some(h.class) {
                        continue;
                    }
                    diags.push(diag(
                        "guard-across-wait",
                        file,
                        w.line,
                        w.col,
                        format!(
                            "`{}` while a `{}` guard is held (acquired on line {}); blocking \
                             waits must not pin locks of another class",
                            w.name,
                            class_name(h.class),
                            h.line
                        ),
                    ));
                }
            }
        }
        Self { diags }
    }
}

fn diag(
    rule: &'static str,
    file: &crate::workspace::SourceFile,
    line: u32,
    col: u32,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        file: file.rel.clone(),
        line,
        col,
        message,
    }
}

/// Scans one function: direct acquisitions with guard regions, resolved
/// call sites, and blocking waits.
fn scan_function(ws: &Workspace, graph: &CallGraph, model: &LockModel, id: usize) -> FnScan {
    let node = &graph.nodes[id];
    let file = &ws.files[node.file];
    let func = &file.functions[node.func];
    let code = Code::of(func.body_tokens(&file.tokens));
    let class_by_line = collect_lock_classes(&file.tokens);
    let mut locals = collect_locals(file, func, &code);
    // name → lock class of the guard bound to it (for condvar exemption)
    let mut binding_class: BTreeMap<String, usize> = BTreeMap::new();
    // name → type the binding dereferences to (for method resolution);
    // seeded from declared parameter / `let` types, overridden by guard
    // bindings as they are tracked.
    let mut binding_type: BTreeMap<String, String> = BTreeMap::new();
    collect_declared_types(file, func, &code, &mut binding_type);

    let mut scan = FnScan {
        acqs: Vec::new(),
        calls: Vec::new(),
        waits: Vec::new(),
    };

    let mut i = 0;
    while i < code.len() {
        // Direct acquisition: zero-arg `.lock()` / `.read()` / `.write()`
        // with a classified receiver (or a `lock-class(...)` comment).
        if let Some(name) = code.method_call(i) {
            let zero_arg = code.get(i + 3).is_some_and(|t| t.is_punct(')'));
            let method = name.text.as_str();
            if zero_arg && matches!(method, "lock" | "read" | "write") {
                let chain = callgraph::receiver_chain(&code, i);
                let classified = class_by_line
                    .get(&name.line)
                    .and_then(|n| model.rank_of(n).map(|r| (r, method != "read")))
                    .or_else(|| chain.iter().find_map(|recv| model.classify(recv, method)));
                if let Some((class, write)) = classified {
                    let close = i + 3;
                    let (region, let_name) = guard_region(&code, i, close);
                    if let Some(n) = &let_name {
                        binding_class.insert(n.clone(), class);
                        if let Some(d) = &model.classes[class].deref {
                            binding_type.insert(n.clone(), d.clone());
                        }
                        locals.insert(n.clone());
                    }
                    scan.acqs.push(Acq {
                        class,
                        write,
                        index: literal_index(&code, i),
                        idx: i,
                        line: name.line,
                        region,
                    });
                    i += 4;
                    continue;
                }
                // Unclassified zero-arg lock-shaped call: neither an
                // acquisition nor a useful call edge (e.g. `stdin.lock()`).
                i += 4;
                continue;
            }
        }
        let at_name = if code.get(i).is_some_and(|t| t.kind == TokenKind::Ident) {
            i
        } else if code.method_call(i).is_some() {
            i + 1
        } else {
            i += 1;
            continue;
        };
        if let Some(raw) = callgraph::call_at(&code, at_name) {
            let tok = code.tok(raw.idx);
            // Blocking waits first — but a name that resolves to a
            // workspace function is a call (its own body carries the
            // real wait, so the transitive pass still sees it).
            let zero_arg = code.get(raw.idx + 2).is_some_and(|t| t.is_punct(')'));
            let is_wait_shape = (zero_arg && WAIT_ZERO_ARG.contains(&raw.name.as_str()))
                || (!zero_arg && WAIT_WITH_ARGS.contains(&raw.name.as_str()))
                || (!raw.is_method && raw.name == "sleep");
            let type_hint: Option<String> = if raw.is_method {
                let chain = callgraph::receiver_chain(&code, raw.idx - 1);
                receiver_type_hint(&chain, func.impl_type.as_deref(), &binding_type, model)
            } else {
                match raw.qualifier.as_deref() {
                    Some("Self") => func.impl_type.clone(),
                    Some(q) if q.chars().next().is_some_and(char::is_uppercase) => {
                        Some(q.to_string())
                    }
                    _ => None,
                }
            };
            let module_hint = raw
                .qualifier
                .as_deref()
                .filter(|q| q.chars().next().is_some_and(char::is_lowercase));
            let targets = if raw.is_method {
                graph.resolve_method(&raw.name, type_hint.as_deref())
            } else if raw.name == "drop" {
                // `drop(guard)` ends a region (handled by `find_drop`);
                // resolving it by name would fan out to every workspace
                // `Drop` impl.
                Vec::new()
            } else if let Some(t) = &type_hint {
                // `Type::func(...)`: bind strictly to that impl — a
                // qualifier naming a std type (`File::create`) is not a
                // workspace edge at all.
                graph
                    .candidates(&raw.name)
                    .iter()
                    .copied()
                    .filter(|&id| graph.nodes[id].impl_type.as_deref() == Some(t.as_str()))
                    .collect()
            } else {
                graph.resolve_free(&raw.name, module_hint, node.file)
            };
            if targets.is_empty() && is_wait_shape {
                scan.waits.push(WaitEv {
                    name: raw.name.clone(),
                    idx: raw.idx,
                    line: tok.line,
                    col: tok.col,
                    exempt: wait_exempt_class(&code, raw.idx, &binding_class),
                });
                i = raw.idx + 1;
                continue;
            }
            let unknown = targets.is_empty()
                && !raw.is_method
                && raw.name.chars().next().is_some_and(char::is_lowercase)
                && locals.contains(&raw.name);
            if !targets.is_empty() || unknown {
                let close = raw.idx + 1;
                let (region, let_name) = guard_region(&code, raw.idx, matching_close(&code, close));
                if let Some(n) = &let_name {
                    // A guard-returning callee types its binding.
                    if let Some(d) = targets.iter().find_map(|&t| {
                        graph.nodes[t]
                            .returns_guard
                            .then(|| guard_deref(ws, graph, t))
                            .flatten()
                    }) {
                        binding_type.insert(n.clone(), d);
                        locals.insert(n.clone());
                    }
                }
                scan.calls.push(CallEv {
                    name: raw.name.clone(),
                    idx: raw.idx,
                    line: tok.line,
                    col: tok.col,
                    targets,
                    unknown,
                    region,
                });
            }
            i = raw.idx + 1;
            continue;
        }
        i += 1;
    }
    scan
}

/// The type a guard-returning function's guards dereference to: the
/// last plain type ident of the return type that is not a container or
/// the guard wrapper itself (`-> Vec<RwLockReadGuard<'_, Database>>` →
/// `Database`).
fn guard_deref(ws: &Workspace, graph: &CallGraph, id: usize) -> Option<String> {
    let node = &graph.nodes[id];
    let file = &ws.files[node.file];
    let sig = &file.tokens[file.functions[node.func].sig.clone()];
    let arrow = sig
        .windows(2)
        .position(|w| w[0].is_punct('-') && w[1].is_punct('>'))?;
    sig[arrow + 2..]
        .iter()
        .rev()
        .find(|t| {
            t.kind == TokenKind::Ident
                && !t.text.ends_with("Guard")
                && !matches!(t.text.as_str(), "Vec" | "Option" | "Box" | "Result")
        })
        .map(|t| t.text.clone())
}

/// Maps a receiver chain to a method-resolution type hint: `self` → the
/// enclosing impl type, a tracked guard binding → its deref type, a
/// guard temporary (`handle.write().m(...)`) → the class's deref type.
fn receiver_type_hint(
    chain: &[&str],
    impl_type: Option<&str>,
    binding_type: &BTreeMap<String, String>,
    model: &LockModel,
) -> Option<String> {
    let first = chain.first()?;
    if *first == "self" {
        return impl_type.map(str::to_string);
    }
    if let Some(t) = binding_type.get(*first) {
        return Some(t.clone());
    }
    if matches!(*first, "lock" | "read" | "write") {
        if let Some(recv) = chain.get(1) {
            if let Some((class, _)) = model.classify(recv, first) {
                return model.classes[class].deref.clone();
            }
        }
    }
    None
}

/// The guard region for an acquisition anchored at `idx` whose closing
/// paren is at `close`: `(region, let_binding_name)`. A `let`-bound
/// guard is held to the end of the enclosing block (clipped by an
/// explicit `drop(name)`); a temporary to the end of its statement.
fn guard_region(code: &Code, idx: usize, close: usize) -> (Range<usize>, Option<String>) {
    let start = close + 1;
    let stmt_start = back_stmt_start(code, idx);
    let let_stmt = code.get(stmt_start).is_some_and(|t| t.is_ident("let"));
    let chain_continues = {
        let mut j = start;
        loop {
            match code.get(j) {
                Some(t) if t.is_punct('?') => j += 1,
                Some(t) if t.is_punct('.') => break true,
                _ => break false,
            }
        }
    };
    if let_stmt && !chain_continues {
        let name = let_binding_name(code, stmt_start);
        let mut end = block_end(code, start);
        if let Some(n) = &name {
            if let Some(d) = find_drop(code, start, end, n) {
                end = d;
            }
        }
        (start..end, name)
    } else {
        (start..stmt_end(code, start), None)
    }
}

/// Start of the statement containing `idx`: the position after the
/// previous `;` or unmatched opening brace/paren.
fn back_stmt_start(code: &Code, idx: usize) -> usize {
    let mut depth = 0i32;
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = code.tok(j);
        match &t.kind {
            TokenKind::Punct(')' | ']' | '}') => depth += 1,
            TokenKind::Punct('(' | '[' | '{') => {
                if depth == 0 {
                    return j + 1;
                }
                depth -= 1;
            }
            TokenKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
    }
    0
}

/// End of the statement starting inside the current nesting at `from`:
/// the `;` at relative depth 0, or the unmatched closing token. A
/// depth-0 `,` also ends the region: a temporary created inside a match
/// arm or an argument list dies with its own expression, not with its
/// sibling arms (which would make two single-arm acquisitions look
/// overlapping).
fn stmt_end(code: &Code, from: usize) -> usize {
    let mut depth = 0i32;
    for j in from..code.len() {
        match &code.tok(j).kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            TokenKind::Punct(';' | ',') if depth == 0 => return j,
            _ => {}
        }
    }
    code.len()
}

/// End of the enclosing block at `from`: the unmatched closing token.
fn block_end(code: &Code, from: usize) -> usize {
    let mut depth = 0i32;
    for j in from..code.len() {
        match &code.tok(j).kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    code.len()
}

/// `let [mut] NAME [: T] = …` → NAME; destructuring patterns → None.
fn let_binding_name(code: &Code, let_idx: usize) -> Option<String> {
    let mut j = let_idx + 1;
    if code.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = code.get(j)?;
    if name.kind != TokenKind::Ident {
        return None;
    }
    match code.get(j + 1) {
        Some(t) if t.is_punct('=') || t.is_punct(':') => Some(name.text.clone()),
        _ => None,
    }
}

/// Position of `drop(name)` within `[from, to)`, if present.
fn find_drop(code: &Code, from: usize, to: usize, name: &str) -> Option<usize> {
    (from..to.min(code.len().saturating_sub(3))).find(|&j| {
        code.tok(j).is_ident("drop")
            && code.tok(j + 1).is_punct('(')
            && code.tok(j + 2).is_ident(name)
            && code.tok(j + 3).is_punct(')')
    })
}

/// Literal index of the receiver just before the lock call's dot:
/// `xs[0].read()` → Some(0).
fn literal_index(code: &Code, dot: usize) -> Option<u64> {
    if dot >= 3
        && code.tok(dot - 1).is_punct(']')
        && code.tok(dot - 2).kind == TokenKind::Number
        && code.tok(dot - 3).is_punct('[')
    {
        return code.tok(dot - 2).text.parse().ok();
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
fn matching_close(code: &Code, open: usize) -> usize {
    let mut depth = 0i32;
    for j in open..code.len() {
        match &code.tok(j).kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

/// For a condvar-family wait at `name_idx`, the class of the first
/// guard-binding argument: `cond.wait_timeout(guard, t)` rides the
/// `guard`'s own class through the wait legitimately.
fn wait_exempt_class(
    code: &Code,
    name_idx: usize,
    binding_class: &BTreeMap<String, usize>,
) -> Option<usize> {
    if !WAIT_WITH_ARGS.contains(&code.tok(name_idx).text.as_str()) {
        return None;
    }
    let open = name_idx + 1;
    let close = matching_close(code, open);
    (open + 1..close).find_map(|j| {
        let t = code.tok(j);
        (t.kind == TokenKind::Ident)
            .then(|| binding_class.get(t.text.as_str()).copied())
            .flatten()
    })
}

/// Seeds method-resolution type hints from declared types: `name:
/// &Type` parameters and `let name: Type = …` bindings. Only the
/// uppercase-initial head ident after the colon is taken (skipping
/// `&`, lifetimes and lowercase modifiers like `mut`/`dyn`/`impl`) —
/// a generic or `impl Trait` head simply never matches a workspace
/// impl type, so over-collection is harmless.
fn collect_declared_types(
    file: &crate::workspace::SourceFile,
    func: &crate::funcs::Function,
    code: &Code,
    out: &mut BTreeMap<String, String>,
) {
    let head_type = |toks: &mut dyn Iterator<Item = &crate::lexer::Token>| -> Option<String> {
        for t in toks {
            match &t.kind {
                TokenKind::Punct('&') => {}
                TokenKind::Lifetime => {}
                TokenKind::Ident if t.text.chars().next().is_some_and(char::is_lowercase) => {}
                TokenKind::Ident => return Some(t.text.clone()),
                _ => return None,
            }
        }
        None
    };
    let sig: Vec<&crate::lexer::Token> = file.tokens[func.sig.clone()]
        .iter()
        .filter(|t| !t.is_comment())
        .collect();
    for i in 0..sig.len().saturating_sub(2) {
        if sig[i].kind == TokenKind::Ident && sig[i + 1].is_punct(':') {
            if let Some(ty) = head_type(&mut sig[i + 2..].iter().copied()) {
                out.insert(sig[i].text.clone(), ty);
            }
        }
    }
    let mut i = 0;
    while i + 3 < code.len() {
        if code.tok(i).is_ident("let") {
            let name_at = if code.tok(i + 1).is_ident("mut") {
                i + 2
            } else {
                i + 1
            };
            if code.tok(name_at).kind == TokenKind::Ident
                && code.get(name_at + 1).is_some_and(|t| t.is_punct(':'))
            {
                let rest = (name_at + 2..code.len())
                    .map_while(|j| code.get(j))
                    .take_while(|t| !t.is_punct('=') && !t.is_punct(';'));
                if let Some(ty) = head_type(&mut rest.collect::<Vec<_>>().into_iter()) {
                    out.insert(code.tok(name_at).text.clone(), ty);
                }
            }
        }
        i += 1;
    }
}

/// Every local value name in scope: parameters, `let` / `for` pattern
/// idents, and closure parameters. Used to tell a call through a local
/// callable (unresolvable, widened) from a call to an undeclared std
/// function (ignored).
fn collect_locals(
    file: &crate::workspace::SourceFile,
    func: &crate::funcs::Function,
    code: &Code,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    // Parameters: sig idents directly followed by `:`.
    let sig = &file.tokens[func.sig.clone()];
    for w in sig.windows(2) {
        if w[0].kind == TokenKind::Ident && w[1].is_punct(':') {
            out.insert(w[0].text.clone());
        }
    }
    let mut i = 0;
    while i < code.len() {
        let t = code.tok(i);
        if t.is_ident("let") || t.is_ident("for") {
            let stop: &dyn Fn(&crate::lexer::Token) -> bool = if t.is_ident("let") {
                &|t| t.is_punct('=') || t.is_punct(';')
            } else {
                &|t| t.is_ident("in") || t.is_punct('{')
            };
            let mut j = i + 1;
            while let Some(p) = code.get(j) {
                if stop(p) {
                    break;
                }
                if p.kind == TokenKind::Ident && p.text != "mut" && p.text != "ref" {
                    out.insert(p.text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        if t.is_punct('|') && i > 0 {
            let prev = code.tok(i - 1);
            let opens_closure = prev.is_punct('(')
                || prev.is_punct(',')
                || prev.is_punct('=')
                || prev.is_punct('{')
                || prev.is_punct(';')
                || prev.is_ident("move")
                || prev.is_ident("return");
            if opens_closure {
                let mut j = i + 1;
                let mut params = Vec::new();
                let mut ok = false;
                while j < code.len() && j <= i + 24 {
                    let p = code.tok(j);
                    if p.is_punct('|') {
                        ok = true;
                        break;
                    }
                    if p.kind == TokenKind::Ident && p.text != "mut" && p.text != "ref" {
                        params.push(p.text.clone());
                    }
                    j += 1;
                }
                if ok {
                    out.extend(params);
                    i = j + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    out
}
