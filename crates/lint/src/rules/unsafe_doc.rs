//! `unsafe-doc`: every `unsafe` block must carry a `// SAFETY:` comment.
//!
//! The workspace is `unsafe`-averse by construction (std-only, no FFI
//! beyond the signal handler), so the few blocks that do exist are
//! load-bearing and their soundness argument must be written down where
//! the next reader will see it. The rule applies workspace-wide, test
//! code included: a `SAFETY:` comment on the block's line or anywhere in
//! the contiguous comment block directly above the *statement* holding
//! the block satisfies it — `// SAFETY: ...` above a
//! `let fd = unsafe { ... };` binding counts, matching how the comment
//! is conventionally attached.

use super::Rule;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;

pub(crate) struct UnsafeDoc;

impl Rule for UnsafeDoc {
    fn name(&self) -> &'static str {
        "unsafe-doc"
    }

    fn description(&self) -> &'static str {
        "every unsafe block carries a `// SAFETY:` comment stating its invariant"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            let toks = &file.tokens;
            for (i, t) in toks.iter().enumerate() {
                if !t.is_ident("unsafe") {
                    continue;
                }
                // Only `unsafe {` blocks: `unsafe fn` / `unsafe impl` /
                // `unsafe extern` declare, they do not execute.
                let opens_block = toks[i + 1..]
                    .iter()
                    .find(|n| !n.is_comment())
                    .is_some_and(|n| n.is_punct('{'));
                if !opens_block {
                    continue;
                }
                // The comment may sit above the whole statement the
                // block belongs to (`// SAFETY:` over a
                // `let fd = unsafe { ... };`), so anchor the search at
                // the statement's first token, not at `unsafe` itself.
                let mut start = i;
                while start > 0 {
                    let p = &toks[start - 1];
                    if p.is_comment() || p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
                        break;
                    }
                    start -= 1;
                }
                let anchor = &toks[start];
                // The contiguous comment block directly above the
                // statement (any length), or a trailing comment on the
                // block's own line, must contain `SAFETY:`.
                let mut documented = toks[i + 1..]
                    .iter()
                    .take_while(|n| n.line == t.line)
                    .any(|n| n.is_comment() && n.text.contains("SAFETY:"));
                let mut expect_line = anchor.line.saturating_sub(1);
                for p in toks[..start].iter().rev() {
                    if !p.is_comment() || p.line + 1 < expect_line {
                        break;
                    }
                    if p.text.contains("SAFETY:") {
                        documented = true;
                        break;
                    }
                    expect_line = p.line;
                }
                if !documented {
                    out.push(Diagnostic {
                        rule: self.name(),
                        file: file.rel.clone(),
                        line: t.line,
                        col: t.col,
                        message: "`unsafe` block without a `// SAFETY:` comment; state the \
                                  invariant that makes it sound in a comment directly above \
                                  the block"
                            .into(),
                    });
                }
            }
        }
    }
}
