//! `shim-only-deps`: no manifest may declare a dependency that is not
//! built from this repository.
//!
//! The build environment is offline: the only "external" crates are the
//! API-compatible shims vendored under `crates/shims/` (rand, proptest,
//! criterion, parking_lot). A dependency on anything else would resolve
//! against a registry that does not exist here and break every build —
//! or worse, work on one machine with a warm cache and fail on the
//! next. The allowed set is computed, not hard-coded: every `[package]
//! name` defined by a manifest in the workspace (shims included) is
//! allowed; everything else is flagged at its declaration line.

use super::Rule;
use crate::diag::Diagnostic;
use crate::workspace::Workspace;
use std::collections::BTreeSet;

pub(crate) struct ShimOnlyDeps;

impl Rule for ShimOnlyDeps {
    fn name(&self) -> &'static str {
        "shim-only-deps"
    }

    fn description(&self) -> &'static str {
        "manifests may only depend on crates defined in this repository (workspace + shims)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let local: BTreeSet<&str> = ws
            .manifests
            .iter()
            .filter_map(|m| m.package_name.as_deref())
            .collect();
        for manifest in &ws.manifests {
            for dep in &manifest.deps {
                if !local.contains(dep.name.as_str()) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        file: manifest.rel.clone(),
                        line: dep.line,
                        col: 1,
                        message: format!(
                            "dependency `{}` is not a crate defined in this repository; \
                             the build is offline — vendor an API-compatible shim under \
                             crates/shims/ instead",
                            dep.name
                        ),
                    });
                }
            }
        }
    }
}
