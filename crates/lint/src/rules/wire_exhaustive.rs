//! `wire-exhaustive`: every `Request`/`Response`/`WireLifecycleKind`
//! variant must appear in its encode arm, its decode arm, and at least
//! one test.
//!
//! The PR 2 wire protocol hand-rolls its binary codec: `match` arms in
//! `encode` and tag arms in `decode` are written by hand, so a variant
//! added to the enum but forgotten in one direction compiles cleanly
//! and fails only when a peer sends it. Same for tests: an uncovered
//! variant round-trips on faith. This rule reads the enum definitions
//! from `crates/common/src/wire.rs` and demands all three mentions.

use super::Rule;
use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::workspace::{SourceFile, Workspace};

const WIRE_FILE: &str = "crates/common/src/wire.rs";
const ENUMS: [&str; 3] = ["Request", "Response", "WireLifecycleKind"];

pub(crate) struct WireExhaustive;

impl Rule for WireExhaustive {
    fn name(&self) -> &'static str {
        "wire-exhaustive"
    }

    fn description(&self) -> &'static str {
        "every Request/Response variant appears in encode, decode, and at least one test"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let Some(wire) = ws.file_ending_with(WIRE_FILE) else {
            return;
        };
        let test_idents = ws.test_idents();
        for enum_name in ENUMS {
            let variants = enum_variants(wire, enum_name);
            for dir in ["encode", "decode"] {
                let Some(body) = impl_fn_idents(wire, enum_name, dir) else {
                    // No encode/decode impl at all: report once per
                    // variant would be noise; flag the enum itself.
                    if let Some(v) = variants.first() {
                        out.push(missing(self.name(), wire, v, enum_name, dir));
                    }
                    continue;
                };
                for v in &variants {
                    if !body.contains(&v.text.as_str()) {
                        out.push(missing(self.name(), wire, v, enum_name, dir));
                    }
                }
            }
            for v in &variants {
                if !test_idents.contains(v.text.as_str()) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        file: wire.rel.clone(),
                        line: v.line,
                        col: v.col,
                        message: format!(
                            "wire variant `{enum_name}::{}` appears in no test; add a \
                             round-trip (or decode-error) test that names it",
                            v.text
                        ),
                    });
                }
            }
        }
    }
}

fn missing(
    rule: &'static str,
    wire: &SourceFile,
    v: &Token,
    enum_name: &str,
    dir: &str,
) -> Diagnostic {
    Diagnostic {
        rule,
        file: wire.rel.clone(),
        line: v.line,
        col: v.col,
        message: format!(
            "wire variant `{enum_name}::{}` has no `{dir}` arm; a peer sending it would \
             get a codec error (add the arm and a round-trip test)",
            v.text
        ),
    }
}

/// The variant name tokens of `enum <name> { … }` in `file`.
fn enum_variants<'a>(file: &'a SourceFile, name: &str) -> Vec<&'a Token> {
    let code: Vec<&Token> = file.tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut i = 0;
    while i + 2 < code.len() {
        if code[i].is_ident("enum") && code[i + 1].is_ident(name) && code[i + 2].is_punct('{') {
            return variants_in_body(&code[i + 2..]);
        }
        i += 1;
    }
    Vec::new()
}

/// Collects variant idents at depth 1 of an enum body starting at its
/// `{`: an ident directly after the `{` or after a depth-1 `,`,
/// skipping `#[…]` attributes.
fn variants_in_body<'a>(body: &[&'a Token]) -> Vec<&'a Token> {
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut expect_variant = false;
    let mut i = 0;
    while i < body.len() {
        let t = body[i];
        match &t.kind {
            TokenKind::Punct('{') | TokenKind::Punct('(') | TokenKind::Punct('[') => {
                depth += 1;
                // Depth 1 is the enum body itself (variants follow);
                // anything deeper is a variant's payload.
                expect_variant = depth == 1;
            }
            TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Punct(',') if depth == 1 => expect_variant = true,
            TokenKind::Punct('#') if depth == 1 => {
                // Skip the attribute's `[ … ]`.
                let mut attr_depth = 0i32;
                i += 1;
                while i < body.len() {
                    match body[i].kind {
                        TokenKind::Punct('[') => attr_depth += 1,
                        TokenKind::Punct(']') => {
                            attr_depth -= 1;
                            if attr_depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            TokenKind::Ident if depth == 1 && expect_variant => {
                variants.push(t);
                expect_variant = false;
            }
            _ => {}
        }
        i += 1;
    }
    variants
}

/// The set of idents inside `fn <fn_name>` of `impl … for <type_name>`
/// (or `impl <type_name>`), when that function exists.
fn impl_fn_idents<'a>(
    file: &'a SourceFile,
    type_name: &str,
    fn_name: &str,
) -> Option<std::collections::BTreeSet<&'a str>> {
    let func = file
        .functions
        .iter()
        .find(|f| f.name == fn_name && f.impl_type.as_deref() == Some(type_name))?;
    Some(
        func.body_tokens(&file.tokens)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect(),
    )
}
