//! `lock-across-io`: no blocking I/O while the database's exclusive
//! write guard is held.
//!
//! The PR 2 session model serves every reader under the shared side of
//! one `RwLock<Database>`; a single writer that blocks on disk or
//! socket I/O while holding the exclusive guard therefore convoys the
//! whole server. PR 3/4 made the committer thread the one sanctioned
//! place where writes and WAL I/O meet — and even there the guard is
//! released before the group fsync. The shard-per-core engine splits
//! that one lock into N per-shard `RwLock`s (`db.shard(k)`,
//! `self.shards[k]`), and the invariant holds per shard: blocking I/O
//! under *any* shard's exclusive guard convoys every session routed to
//! that shard.
//!
//! Detection is textual, per function: a `db.write()` or
//! `shard.write()` (any receiver chain ending in an ident containing
//! `db` or `shard`, with `(..)` / `[..]` index and call groups in the
//! chain skipped) opens a guarded region — to the end of the enclosing
//! block when the guard is `let`-bound, or to the end of the statement
//! for a temporary. Any I/O-shaped call (`fsync`, `sync_all`,
//! `sync_data`, `write_all`, `flush`, `accept`, `read`, `read_exact`,
//! `read_to_end`, `recv`) inside the region is a violation. Functions
//! named in [`EXEMPT_FNS`] (the per-shard committers) are exempt, as
//! is test code.

use super::{Code, Rule};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::workspace::Workspace;

/// Functions allowed to do I/O around the exclusive guard: the
/// committer threads — one per shard — are the sanctioned group-commit
/// points, each fsyncing only its own shard's WAL segment.
const EXEMPT_FNS: [&str; 1] = ["run_committer"];

/// Calls that block on the disk or network.
const IO_CALLS: [&str; 10] = [
    "fsync",
    "sync_all",
    "sync_data",
    "write_all",
    "flush",
    "accept",
    "read",
    "read_exact",
    "read_to_end",
    "recv",
];

pub(crate) struct LockAcrossIo;

impl Rule for LockAcrossIo {
    fn name(&self) -> &'static str {
        "lock-across-io"
    }

    fn description(&self) -> &'static str {
        "no blocking I/O while the db.write() exclusive guard is held (outside the committer)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        for file in &ws.files {
            if !file.rel.ends_with(".rs") {
                continue;
            }
            for func in file.live_functions() {
                if EXEMPT_FNS.contains(&func.name.as_str()) {
                    continue;
                }
                let code = Code::of(func.body_tokens(&file.tokens));
                check_function(&code, &file.rel, self.name(), out);
            }
        }
    }
}

fn check_function(code: &Code<'_>, file: &str, rule: &'static str, out: &mut Vec<Diagnostic>) {
    for i in 0..code.len() {
        let Some(name) = code.method_call(i) else {
            continue;
        };
        if name.text != "write" || !receiver_is_db(code, i) {
            continue;
        }
        // `.write(` with arguments is stream I/O, not a lock
        // acquisition; the guard pattern is exactly `.write()`.
        if !code.get(i + 3).is_some_and(|t| t.is_punct(')')) {
            continue;
        }
        let guard_line = name.line;
        let region = guarded_region(code, i);
        for j in (i + 4)..region {
            let Some(io) = code.method_call(j) else {
                continue;
            };
            // `db.read()` / `db.write()` are lock acquisitions on the
            // shared database, not stream I/O.
            if IO_CALLS.contains(&io.text.as_str()) && !receiver_is_db(code, j) {
                out.push(Diagnostic {
                    rule,
                    file: file.to_string(),
                    line: io.line,
                    col: io.col,
                    message: format!(
                        "`{}` called while the exclusive `db.write()` guard taken on line {} \
                         is held; blocking I/O under the write lock stalls every reader — \
                         release the guard first or route the write through the committer \
                         thread",
                        io.text, guard_line
                    ),
                });
            }
        }
    }
}

/// Whether the `.write()` at view position `i` is called on the shared
/// database or one of its shards: the preceding receiver token chain
/// contains an ident whose name contains `db` or `shard`. Balanced
/// `(..)` / `[..]` groups are skipped so `db.shard(k).write()` and
/// `self.shards[k].write()` resolve to their base ident.
fn receiver_is_db(code: &Code<'_>, i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        let t = code.tok(j - 1);
        match &t.kind {
            TokenKind::Ident => {
                if t.text.contains("db") || t.text.contains("shard") {
                    return true;
                }
                j -= 1;
            }
            TokenKind::Punct('.') => j -= 1,
            TokenKind::Punct(close @ (')' | ']')) => {
                // Skip the index / call-argument group feeding this
                // chain and keep walking toward the base receiver.
                let open = if *close == ')' { '(' } else { '[' };
                let mut depth = 1;
                j -= 1;
                while j > 0 && depth > 0 {
                    let t = code.tok(j - 1);
                    if t.is_punct(*close) {
                        depth += 1;
                    } else if t.is_punct(open) {
                        depth -= 1;
                    }
                    j -= 1;
                }
                if depth > 0 {
                    break;
                }
            }
            _ => break,
        }
    }
    false
}

/// End (exclusive, in view positions) of the region during which the
/// guard taken by the `.write()` at `i` is held.
///
/// - `let g = db.write();` → held to the end of the enclosing block:
///   scan forward until brace depth drops below its starting level.
/// - temporary `db.write().m(...)` → dropped at the end of the
///   statement: scan to the next `;` at the same brace depth. This
///   covers `let r = db.write().m(...)?;` too — the chain consumes the
///   temporary guard, only `r` outlives the statement.
fn guarded_region(code: &Code<'_>, i: usize) -> usize {
    // A guard is `let`-bound only when a `let` starts the statement AND
    // the chain ends right after `.write()` — i.e. the guard itself is
    // what gets bound.
    let chain_ends = code.get(i + 4).is_none_or(|t| !t.is_punct('.'));
    let mut is_let = false;
    let mut j = i;
    while chain_ends && j > 0 {
        let t = code.tok(j - 1);
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            is_let = true;
            break;
        }
        j -= 1;
    }
    let mut depth = 0i32;
    for k in i..code.len() {
        match code.tok(k).kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    // Enclosing block closed: both binding kinds die here.
                    return k;
                }
            }
            TokenKind::Punct(';') if !is_let && depth == 0 => return k,
            _ => {}
        }
    }
    code.len()
}
