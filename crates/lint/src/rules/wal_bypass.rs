//! `wal-bypass`: `&mut Database` mutations must flow through the
//! WAL-logged entry points.
//!
//! PR 4's durability contract — an acknowledged write survives
//! `kill -9` — holds only because every mutating entry point logs its
//! statement *before* executing it. The entry points are `execute`,
//! `execute_sql`, the `annotate*` family, `recover` and `checkpoint`;
//! any other `&mut self` method on `Database` is internal plumbing, and
//! calling one directly from outside the engine crate silently skips
//! the log.
//!
//! The rule reads the real method surface from
//! `crates/engine/src/db.rs` (every `&mut self` function in an
//! `impl Database` block) and from `crates/engine/src/shard.rs`
//! (`impl ShardedDatabase` — the shard router wraps one WAL handle per
//! shard, and the same contract holds segment by segment), so a new
//! mutating method is protected the moment it is written. Call sites
//! are flagged in every non-test, non-example file outside the engine
//! crate.

use super::{Code, Rule};
use crate::diag::Diagnostic;
use crate::workspace::Workspace;
use std::collections::BTreeSet;

/// WAL-logged entry points (callable from anywhere).
const ENTRY_POINTS: [&str; 4] = ["execute", "execute_sql", "recover", "checkpoint"];

/// Prefix covering the ingest family (`annotate_batch`,
/// `annotate_rows_batch`, `annotate_targets`, …), all of which log.
const ENTRY_PREFIX: &str = "annotate";

pub(crate) struct WalBypass;

impl Rule for WalBypass {
    fn name(&self) -> &'static str {
        "wal-bypass"
    }

    fn description(&self) -> &'static str {
        "&mut Database methods may only be called via WAL-logged entry points outside the engine"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let restricted = restricted_methods(ws);
        if restricted.is_empty() {
            return;
        }
        for file in &ws.files {
            // The engine crate is the implementation; it may compose its
            // own private steps (the entry points themselves live there).
            if file.rel.starts_with("crates/engine/") {
                continue;
            }
            for func in file.live_functions() {
                let code = Code::of(func.body_tokens(&file.tokens));
                for i in 0..code.len() {
                    let Some(name) = code.method_call(i) else {
                        continue;
                    };
                    if restricted.contains(name.text.as_str()) {
                        out.push(Diagnostic {
                            rule: self.name(),
                            file: file.rel.clone(),
                            line: name.line,
                            col: name.col,
                            message: format!(
                                "`{}` is a `&mut self` Database method outside the WAL-logged \
                                 entry points (execute, execute_sql, annotate*, recover, \
                                 checkpoint); calling it directly bypasses the write-ahead \
                                 log, so the mutation would not survive a crash",
                                name.text
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// The `&mut self` methods of `impl Database` (db.rs) and
/// `impl ShardedDatabase` (shard.rs), minus the WAL-logged entry
/// points. The sharded router serves writes through `&self` plus
/// interior per-shard locks, so any `&mut self` method it ever grows
/// is by construction internal plumbing.
const SURFACES: [(&str, &str); 2] = [
    ("crates/engine/src/db.rs", "Database"),
    ("crates/engine/src/shard.rs", "ShardedDatabase"),
];

fn restricted_methods(ws: &Workspace) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (path, impl_type) in SURFACES {
        let Some(file) = ws.file_ending_with(path) else {
            continue;
        };
        out.extend(
            file.functions
                .iter()
                .filter(|f| {
                    f.impl_type.as_deref() == Some(impl_type)
                        && f.takes_mut_self
                        && !f.is_test
                        && !ENTRY_POINTS.contains(&f.name.as_str())
                        && !f.name.starts_with(ENTRY_PREFIX)
                })
                .map(|f| f.name.clone()),
        );
    }
    out
}
