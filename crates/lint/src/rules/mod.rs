//! The rule engine: each rule encodes one invariant PRs 1–4 introduced
//! by convention, and checks it over the analyzed [`Workspace`].
//!
//! | rule | invariant |
//! |---|---|
//! | `lock-across-io`  | no blocking I/O while the `db.write()` exclusive guard is held (PR 2/3 session model) |
//! | `wal-bypass`      | `&mut Database` mutations only through WAL-logged entry points (PR 4 durability) |
//! | `panic-path`      | no panics on the request, recovery or wire-decode paths (PR 2/4 robustness) |
//! | `wire-exhaustive` | every wire variant encoded, decoded, and covered by a test (PR 2 protocol) |
//! | `bench-drift`     | every `BENCH_*.json` writer documented in EXPERIMENTS.md (PR 3/4 reporting) |
//! | `shim-only-deps`  | no dependency outside the workspace + shim set (offline build) |
//! | `unsafe-doc`      | every `unsafe` block carries a `// SAFETY:` comment |
//! | `reactor-blocking`| no blocking calls in reactor event-loop code (PR 8 epoll reactor) |
//! | `lock-order`      | lock classes acquired in `locks.toml` rank order, transitively through calls (PR 10) |
//! | `shard-guard-order` | ordered guards (`shards[k]`) taken in ascending index order (PR 10) |
//! | `double-acquire`  | no re-entry of a lock class already held on some call path (PR 10) |
//! | `guard-across-wait` | no condvar wait / blocking recv / join while holding a foreign guard (PR 10) |

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::workspace::Workspace;

mod bench_drift;
mod lock_across_io;
mod locks;
mod panic_path;
mod reactor_blocking;
mod shim_only_deps;
mod unsafe_doc;
mod wal_bypass;
mod wire_exhaustive;

/// One checkable invariant.
pub trait Rule {
    /// The rule's kebab-case name (what `lint:allow(...)` and the
    /// baseline refer to).
    fn name(&self) -> &'static str;
    /// One-line summary of the invariant, shown by `--list-rules`.
    fn description(&self) -> &'static str;
    /// Appends every violation found in `ws` to `out`.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// Every shipped rule, in reporting order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(lock_across_io::LockAcrossIo),
        Box::new(wal_bypass::WalBypass),
        Box::new(panic_path::PanicPath),
        Box::new(wire_exhaustive::WireExhaustive),
        Box::new(bench_drift::BenchDrift),
        Box::new(shim_only_deps::ShimOnlyDeps),
        Box::new(unsafe_doc::UnsafeDoc),
        Box::new(reactor_blocking::ReactorBlocking),
        Box::new(locks::LockOrder),
        Box::new(locks::ShardGuardOrder),
        Box::new(locks::DoubleAcquire),
        Box::new(locks::GuardAcrossWait),
    ]
}

/// Runs every rule, drops `lint:allow`-suppressed findings, and returns
/// the remainder in stable order.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for rule in all_rules() {
        rule.check(ws, &mut diags);
    }
    diags.retain(|d| {
        ws.files
            .iter()
            .find(|f| f.rel == d.file)
            .is_none_or(|f| !f.allows(d.rule, d.line))
    });
    diags.sort_by_key(Diagnostic::sort_key);
    diags.dedup();
    diags
}

/// A comment-free view over a token slice, used by rules that pattern
/// match on code shape. Indices returned by its methods refer to the
/// view, not the original stream.
pub struct Code<'a> {
    toks: Vec<&'a Token>,
}

impl<'a> Code<'a> {
    /// Builds the view over `tokens` (typically one function body).
    pub fn of(tokens: &'a [Token]) -> Self {
        Self {
            toks: tokens.iter().filter(|t| !t.is_comment()).collect(),
        }
    }

    /// Number of tokens in the view.
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }

    /// Token at `i`.
    pub fn tok(&self, i: usize) -> &'a Token {
        self.toks[i]
    }

    /// Token at `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&'a Token> {
        self.toks.get(i).copied()
    }

    /// Whether position `i` is a `.name(` method call; returns the name
    /// token when so.
    pub fn method_call(&self, i: usize) -> Option<&'a Token> {
        let dot = self.get(i)?;
        let name = self.get(i + 1)?;
        let open = self.get(i + 2)?;
        (dot.is_punct('.') && name.kind == TokenKind::Ident && open.is_punct('(')).then_some(name)
    }
}
