//! Function segmentation: turns a file's token stream into per-function
//! token slices with the context the rules need — the function's name,
//! the `impl` type it belongs to, whether it is test code, and whether
//! it takes `&mut self`.
//!
//! "Test code" means any of:
//! - a function annotated `#[test]` (any attribute containing the
//!   `test` ident, so `#[tokio::test]`-style wrappers also count),
//! - anything inside a `#[cfg(test)] mod … { }`,
//! - a file that lives under a `tests/`, `benches/` or `examples/`
//!   directory (the caller decides that from the path; this module only
//!   handles in-file structure).

use crate::lexer::{Token, TokenKind};

/// One function found in a file.
#[derive(Debug)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// The self type of the enclosing `impl` block, if any (`Database`
    /// for `impl Database { … }` and for `impl Trait for Database`).
    pub impl_type: Option<String>,
    /// Whether the function is test code (`#[test]` attribute or inside
    /// a `#[cfg(test)]` module).
    pub is_test: bool,
    /// Whether the receiver is `&mut self`.
    pub takes_mut_self: bool,
    /// Token range of the signature (from `fn` to the body's `{`).
    pub sig: std::ops::Range<usize>,
    /// Token range of the body, braces included. Empty for bodyless
    /// trait-method declarations.
    pub body: std::ops::Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
}

impl Function {
    /// The body's tokens within `tokens` (the same slice segmentation
    /// ran over).
    pub fn body_tokens<'a>(&self, tokens: &'a [Token]) -> &'a [Token] {
        &tokens[self.body.clone()]
    }
}

/// Scans a token stream and extracts every function with its context.
pub fn segment(tokens: &[Token]) -> Vec<Function> {
    let mut out = Vec::new();
    // Stack of (brace_depth_at_entry, impl_type, is_test) scopes.
    let mut scopes: Vec<(u32, Option<String>, bool)> = Vec::new();
    let mut depth = 0u32;
    // Attribute state for the *next* item at the current depth.
    let mut pending_test_attr = false;
    let mut pending_cfg_test = false;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        match &t.kind {
            TokenKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while matches!(scopes.last(), Some((d, _, _)) if *d > depth) {
                    scopes.pop();
                }
                i += 1;
            }
            TokenKind::Punct('#') => {
                // Attribute: #[ … ] (or #![ … ]); record whether it
                // mentions `test`/`cfg(test)` for the next item.
                let (end, mentions_test, is_cfg) = scan_attribute(tokens, i);
                if mentions_test {
                    if is_cfg {
                        pending_cfg_test = true;
                    } else {
                        pending_test_attr = true;
                    }
                }
                i = end;
            }
            TokenKind::Ident if t.text == "impl" => {
                let (body_start, impl_type) = scan_impl_header(tokens, i);
                let inherited_test = in_test_scope(&scopes) || pending_cfg_test;
                pending_cfg_test = false;
                pending_test_attr = false;
                if body_start < tokens.len() {
                    scopes.push((depth + 1, impl_type, inherited_test));
                }
                i = body_start; // the '{' itself is handled next round
            }
            TokenKind::Ident if t.text == "mod" => {
                let inherited_test = in_test_scope(&scopes) || pending_cfg_test;
                pending_cfg_test = false;
                pending_test_attr = false;
                // Find the `{` (inline mod) or `;` (file mod).
                let mut j = i + 1;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct('{') {
                    scopes.push((depth + 1, current_impl(&scopes), inherited_test));
                }
                i = j;
            }
            TokenKind::Ident if t.text == "fn" => {
                let is_test = pending_test_attr || pending_cfg_test || in_test_scope(&scopes);
                pending_test_attr = false;
                pending_cfg_test = false;
                if let Some(func) = scan_fn(tokens, i, current_impl(&scopes), is_test) {
                    // Jump to the body `{` (still processed by the loop,
                    // so depth tracking stays consistent and nested fns
                    // inside the body are segmented too), or past a
                    // bodyless declaration.
                    let next = if func.body.is_empty() {
                        func.sig.end.max(i + 1)
                    } else {
                        func.body.start
                    };
                    out.push(func);
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => {
                // Attributes apply to the *item* that follows; modifier
                // keywords between an attribute and its `fn`/`mod` must
                // not clear the pending state.
                let keeps_pending = matches!(&t.kind, TokenKind::Ident)
                    && matches!(
                        t.text.as_str(),
                        "pub" | "crate" | "async" | "unsafe" | "const" | "extern" | "in"
                    )
                    || t.is_punct('(')
                    || t.is_punct(')');
                if !keeps_pending {
                    pending_test_attr = false;
                    pending_cfg_test = false;
                }
                i += 1;
            }
        }
    }
    out
}

fn in_test_scope(scopes: &[(u32, Option<String>, bool)]) -> bool {
    scopes.iter().any(|(_, _, t)| *t)
}

fn current_impl(scopes: &[(u32, Option<String>, bool)]) -> Option<String> {
    scopes.iter().rev().find_map(|(_, ty, _)| ty.clone())
}

/// Consumes `#[ … ]` starting at the `#`; returns (index after the
/// attribute, whether it mentions the `test` ident, whether it is a
/// `cfg(…)` attribute).
fn scan_attribute(tokens: &[Token], start: usize) -> (usize, bool, bool) {
    let mut i = start + 1;
    if i < tokens.len() && tokens[i].is_punct('!') {
        i += 1;
    }
    if i >= tokens.len() || !tokens[i].is_punct('[') {
        return (start + 1, false, false);
    }
    let mut depth = 0i32;
    let mut mentions_test = false;
    let mut is_cfg = false;
    let mut first_ident = true;
    while i < tokens.len() {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, mentions_test, is_cfg);
                }
            }
            TokenKind::Ident => {
                if first_ident {
                    is_cfg = t.text == "cfg";
                    first_ident = false;
                }
                if t.text == "test" {
                    mentions_test = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    (i, mentions_test, is_cfg)
}

/// Parses an `impl` header starting at the `impl` keyword; returns the
/// index of the body `{` and the self-type name (the first plain ident
/// after `for`, or after `impl` and its generics when there is no
/// `for`).
fn scan_impl_header(tokens: &[Token], start: usize) -> (usize, Option<String>) {
    let mut i = start + 1;
    let mut angle = 0i32;
    let mut after_for = false;
    let mut first_ident: Option<String> = None;
    let mut for_ident: Option<String> = None;
    while i < tokens.len() {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('{') if angle <= 0 => break,
            TokenKind::Punct(';') => break, // e.g. `impl Trait for T;` never valid, bail
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            TokenKind::Ident if t.text == "for" => after_for = true,
            TokenKind::Ident if t.text == "where" => {}
            TokenKind::Ident if angle <= 0 => {
                if after_for {
                    if for_ident.is_none() {
                        for_ident = Some(t.text.clone());
                    }
                } else if first_ident.is_none() {
                    first_ident = Some(t.text.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    (i, for_ident.or(first_ident))
}

/// Parses one `fn` starting at the keyword. Returns `None` when the
/// stream ends before a name.
fn scan_fn(
    tokens: &[Token],
    start: usize,
    impl_type: Option<String>,
    is_test: bool,
) -> Option<Function> {
    let name_tok = tokens[start + 1..].iter().find(|t| !t.is_comment())?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Walk the signature to the body `{` (or a `;` for bodyless
    // declarations), tracking parens for the receiver scan and angle
    // depth so `where F: Fn() -> T {` style bounds don't confuse us.
    let mut i = start + 1;
    let mut paren = 0i32;
    let mut takes_mut_self = false;
    let mut body_open = None;
    while i < tokens.len() {
        let t = &tokens[i];
        match &t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('{') if paren == 0 => {
                body_open = Some(i);
                break;
            }
            TokenKind::Punct(';') if paren == 0 => break,
            TokenKind::Ident if paren == 1 && t.text == "self" => {
                // Look back (skipping lifetimes/comments) for `&` `mut`.
                let mut back = tokens[..i]
                    .iter()
                    .rev()
                    .filter(|t| !t.is_comment() && t.kind != TokenKind::Lifetime);
                if back.next().is_some_and(|p| p.is_ident("mut"))
                    && back.next().is_some_and(|p| p.is_punct('&'))
                {
                    takes_mut_self = true;
                }
            }
            _ => {}
        }
        i += 1;
    }
    let (sig_end, body) = match body_open {
        Some(open) => {
            let close = matching_brace(tokens, open);
            (open, open..close + 1)
        }
        None => (i.min(tokens.len()), 0..0),
    };
    Some(Function {
        name,
        impl_type,
        is_test,
        takes_mut_self,
        sig: start..sig_end,
        body,
        line: tokens[start].line,
    })
}

/// Index of the `}` matching the `{` at `open` (or the last token when
/// unbalanced).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn funcs(src: &str) -> Vec<Function> {
        segment(&tokenize(src))
    }

    #[test]
    fn finds_functions_with_impl_context_and_receiver() {
        let src = r"
            impl Encodable for Request {
                fn encode(&self, enc: &mut Encoder) {}
                fn decode(dec: &mut Decoder<'_>) -> Result<Self> { Ok(x) }
            }
            impl Database {
                pub fn execute(&mut self, stmt: Statement) -> Result<ExecOutcome> { body() }
            }
            fn free() {}
        ";
        let fs = funcs(src);
        let names: Vec<_> = fs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["encode", "decode", "execute", "free"]);
        assert_eq!(fs[0].impl_type.as_deref(), Some("Request"));
        assert_eq!(fs[2].impl_type.as_deref(), Some("Database"));
        assert!(fs[2].takes_mut_self);
        assert!(!fs[0].takes_mut_self);
        assert!(fs.iter().all(|f| !f.is_test));
    }

    #[test]
    fn cfg_test_modules_and_test_attrs_mark_test_code() {
        let src = r"
            fn live() {}
            #[test]
            fn annotated() {}
            #[cfg(test)]
            mod tests {
                use super::*;
                fn helper() {}
                #[test]
                fn case() {}
            }
            fn also_live() {}
        ";
        let fs = funcs(src);
        let by_name = |n: &str| fs.iter().find(|f| f.name == n).expect("fn");
        assert!(!by_name("live").is_test);
        assert!(by_name("annotated").is_test);
        assert!(by_name("helper").is_test, "cfg(test) mod scopes everything");
        assert!(by_name("case").is_test);
        assert!(
            !by_name("also_live").is_test,
            "test scope ends with the mod"
        );
    }

    #[test]
    fn nested_functions_are_segmented_inside_bodies() {
        let fs = funcs("fn outer() { fn inner() { x(); } inner(); }");
        let names: Vec<_> = fs.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
    }
}
