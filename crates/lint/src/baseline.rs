//! The checked-in baseline (`lint.toml`).
//!
//! A baseline entry tolerates up to `count` diagnostics of one rule in
//! one file — the mechanism for landing the linter before a violation
//! can be fixed, without letting *new* violations ride in behind it.
//! `--fix-baseline` regenerates the file from the current findings. The
//! repository's baseline is intentionally empty: every pre-existing
//! violation was fixed instead of baselined.

use crate::diag::Diagnostic;
use std::collections::BTreeMap;

/// One tolerated (rule, file) bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// How many diagnostics of this rule in this file are tolerated.
    pub count: usize,
}

/// The parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Every tolerated bucket.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses `lint.toml` content. The format is a restricted TOML
    /// subset: `[[allow]]` tables with `rule`, `file` and `count` keys.
    /// Unknown keys are ignored; a table missing `rule` or `file` is an
    /// error (a silently dropped entry would un-suppress findings).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        let mut current: Option<BaselineEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    Self::push(&mut entries, e, idx)?;
                }
                current = Some(BaselineEntry {
                    rule: String::new(),
                    file: String::new(),
                    count: 1,
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "lint.toml line {}: expected `key = value`",
                    idx + 1
                ));
            };
            let Some(e) = current.as_mut() else {
                return Err(format!(
                    "lint.toml line {}: `{}` outside an [[allow]] table",
                    idx + 1,
                    key.trim()
                ));
            };
            let value = value.trim().trim_matches('"');
            match key.trim() {
                "rule" => e.rule = value.to_string(),
                "file" => e.file = value.to_string(),
                "count" => {
                    e.count = value
                        .parse()
                        .map_err(|_| format!("lint.toml line {}: bad count `{value}`", idx + 1))?;
                }
                _ => {}
            }
        }
        if let Some(e) = current.take() {
            Self::push(&mut entries, e, text.lines().count())?;
        }
        Ok(Self { entries })
    }

    fn push(entries: &mut Vec<BaselineEntry>, e: BaselineEntry, line: usize) -> Result<(), String> {
        if e.rule.is_empty() || e.file.is_empty() {
            return Err(format!(
                "lint.toml: [[allow]] table ending at line {line} needs both `rule` and `file`"
            ));
        }
        entries.push(e);
        Ok(())
    }

    /// Splits `diags` into (reported, baselined): for each (rule, file)
    /// bucket, the first `count` diagnostics are suppressed.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        let mut budget: BTreeMap<(String, String), usize> = BTreeMap::new();
        for e in &self.entries {
            *budget.entry((e.rule.clone(), e.file.clone())).or_default() += e.count;
        }
        let mut reported = Vec::new();
        let mut baselined = Vec::new();
        for d in diags {
            let covered = match budget.get_mut(&(d.rule.to_string(), d.file.clone())) {
                Some(left) if *left > 0 => {
                    *left -= 1;
                    true
                }
                _ => false,
            };
            if covered {
                baselined.push(d);
            } else {
                reported.push(d);
            }
        }
        (reported, baselined)
    }

    /// Renders a baseline covering exactly `diags` (used by
    /// `--fix-baseline`).
    pub fn render_for(diags: &[Diagnostic]) -> String {
        let mut buckets: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for d in diags {
            *buckets.entry((d.rule, d.file.as_str())).or_default() += 1;
        }
        let mut out = String::from(
            "# insight-lint baseline.\n\
             #\n\
             # Each [[allow]] table tolerates up to `count` diagnostics of `rule`\n\
             # in `file`. Regenerate with: ./scripts/check.sh --fix-baseline\n\
             # (or: cargo run -p lint -- --fix-baseline). Keep this file empty:\n\
             # fix violations instead of baselining them whenever possible.\n",
        );
        for ((rule, file), count) in buckets {
            out.push_str(&format!(
                "\n[[allow]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            col: 1,
            message: "m".into(),
        }
    }

    #[test]
    fn baseline_round_trips_and_caps_counts() {
        let diags = vec![
            diag("panic-path", "a.rs", 1),
            diag("panic-path", "a.rs", 2),
            diag("wal-bypass", "b.rs", 3),
        ];
        let text = Baseline::render_for(&diags);
        let parsed = Baseline::parse(&text).expect("round trip");
        let (reported, baselined) = parsed.apply(diags.clone());
        assert!(reported.is_empty());
        assert_eq!(baselined.len(), 3);

        // One extra finding beyond the budget is reported.
        let mut more = diags;
        more.push(diag("panic-path", "a.rs", 9));
        let (reported, baselined) = parsed.apply(more);
        assert_eq!(reported.len(), 1);
        assert_eq!(reported[0].line, 9);
        assert_eq!(baselined.len(), 3);
    }

    #[test]
    fn malformed_baselines_are_errors_not_silence() {
        assert!(
            Baseline::parse("[[allow]]\nrule = \"x\"\n").is_err(),
            "missing file"
        );
        assert!(
            Baseline::parse("rule = \"x\"\n").is_err(),
            "entry outside table"
        );
        assert!(Baseline::parse("# only comments\n")
            .expect("ok")
            .entries
            .is_empty());
    }
}
