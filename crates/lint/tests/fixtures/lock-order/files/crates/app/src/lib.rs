//! Fixture: `lock-order` — rank inversions, direct and transitive.
//! `zoom` ranks after `broadcast` in locks.toml, so acquiring
//! `broadcast` while a zoom guard is live inverts the hierarchy.

pub struct Engine {
    broadcast: Mutex<()>,
    zoom: Mutex<ZoomRegistry>,
}

impl Engine {
    /// VIOLATION: broadcast acquired under a live zoom guard.
    pub fn inverted(&self) {
        let z = self.zoom.lock();
        let _b = self.broadcast.lock();
        drop(z);
    }

    /// VIOLATION (transitive): the callee acquires broadcast while the
    /// caller's zoom guard is held.
    pub fn inverted_via_call(&self) {
        let _z = self.zoom.lock();
        self.grab_broadcast();
    }

    pub fn grab_broadcast(&self) {
        let _b = self.broadcast.lock();
    }

    /// Fixed pattern: declaration order — no finding.
    pub fn in_order(&self) {
        let _b = self.broadcast.lock();
        let _z = self.zoom.lock();
    }

    /// Fixed pattern: the zoom guard is dropped before broadcast — no
    /// finding.
    pub fn released_first(&self) {
        let z = self.zoom.lock();
        drop(z);
        let _b = self.broadcast.lock();
    }
}
