//! Fixture: blocking I/O under the exclusive database guard.

// BAD: the guard is let-bound, so it is held across both I/O calls.
fn hold_guard_across_io(db: &Db, out: &mut TcpStream, file: &File) {
    let mut guard = db.write();
    guard.apply_all();
    let _ = out.write_all(b"ack");
    let _ = file.sync_all();
}

// GOOD: the temporary guard drops at the end of its own statement; the
// fsync below runs without the exclusive lock.
fn release_guard_before_io(db: &Db, file: &File) {
    db.write().apply_all();
    let _ = file.sync_all();
}

// GOOD: `let`-statement whose chain consumes the temporary guard — only
// the result outlives the statement.
fn chained_guard_is_temporary(db: &Db, file: &File) -> usize {
    let applied = db.write().apply_all();
    let _ = file.sync_all();
    applied
}

// GOOD: `db.read()` / `db.write()` are lock acquisitions, not I/O.
fn lock_calls_are_not_io(db: &Db) {
    let g = db.write();
    let _ = db.read();
    drop(g);
}

// GOOD: the committer thread is the sanctioned group-commit point.
fn run_committer(db: &Db, file: &File) {
    let guard = db.write();
    let _ = file.sync_all();
    drop(guard);
}
