//! Fixture: enum/codec drift in the wire protocol.

pub enum Request {
    Ping,
    /// Carries SQL text.
    Query { sql: String },
}

pub enum Response {
    Pong,
}

impl Encodable for Request {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Request::Ping => enc.u8(0),
            Request::Query { sql } => enc.str(sql),
        }
    }

    // BAD: the decode arm for `Query` was never written.
    fn decode(dec: &mut Decoder) -> Result<Self> {
        match dec.u8()? {
            0 => Ok(Request::Ping),
            other => Err(Error::Codec(other)),
        }
    }
}

impl Encodable for Response {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Response::Pong => enc.u8(0),
        }
    }

    fn decode(dec: &mut Decoder) -> Result<Self> {
        match dec.u8()? {
            0 => Ok(Response::Pong),
            other => Err(Error::Codec(other)),
        }
    }
}
