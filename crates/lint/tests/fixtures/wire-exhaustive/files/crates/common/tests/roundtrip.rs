//! Fixture: round-trip tests cover Ping and Pong — but not Query.

#[test]
fn ping_pong_round_trip() {
    round_trip(Request::Ping);
    round_trip(Response::Pong);
}
