//! Fixture: inline `lint:allow` suppression forms.

fn suppressed(v: &[u32]) -> u32 {
    // Trailing comment suppresses its own line.
    let a = v.first().unwrap(); // lint:allow(panic-path)
    // A standalone comment suppresses the next code line.
    // lint:allow(panic-path)
    let b = v.last().unwrap();
    a + b
}

// BAD: same construct, no allow — still reported.
fn not_suppressed(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

fn wrong_rule_name(v: &[u32]) -> u32 {
    // lint:allow(lock-across-io) — names a different rule, no effect…
    // lint:allow(panic-path) — …but this one counts.
    *v.last().unwrap()
}
