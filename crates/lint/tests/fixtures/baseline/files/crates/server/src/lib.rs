//! Fixture: two findings, a baseline budget of one.

fn first_violation(input: Option<u32>) -> u32 {
    input.unwrap()
}

fn second_violation(input: Option<u32>) -> u32 {
    input.unwrap()
}
