//! Fixture: blocking calls inside reactor event-loop code.

// BAD: a worker that naps stalls every connection it owns.
fn run_worker(queue: &Queue) {
    loop {
        std::thread::sleep(std::time::Duration::from_millis(1));
        dispatch(queue);
    }
}

// BAD: blocking channel receive; workers drain with try_recv after an
// eventfd wake.
fn drain_blocking(rx: &std::sync::mpsc::Receiver<u64>) {
    while let Ok(msg) = rx.recv() {
        handle(msg);
    }
}

// GOOD: try_recv is the nonblocking drain the wake protocol expects.
fn drain(rx: &std::sync::mpsc::Receiver<u64>) {
    while let Ok(msg) = rx.try_recv() {
        handle(msg);
    }
}

// GOOD: `wait_ready` is the sanctioned sleep — the epoll wait itself.
fn wait_ready(epfd: i32, timeout_ms: i32) -> usize {
    park_in_kernel(epfd, timeout_ms)
}

// GOOD: the shutdown path may join its worker threads.
fn join(threads: Vec<std::thread::JoinHandle<()>>) {
    for t in threads {
        let _ = t.join();
    }
}

// GOOD: an identifier that merely contains a banned name is not a call.
fn bookkeeping() {
    let recv_count = 0;
    let _ = recv_count;
}
