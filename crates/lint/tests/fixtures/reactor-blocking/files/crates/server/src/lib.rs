//! Fixture: the same blocking calls *outside* `reactor/` are out of
//! scope for `reactor-blocking` — the accept loop's EMFILE backoff
//! sleep, session threads, and test helpers may block freely.

fn accept_backoff() {
    std::thread::sleep(std::time::Duration::from_millis(50));
}

fn feeder(rx: &std::sync::mpsc::Receiver<u64>) {
    while let Ok(msg) = rx.recv() {
        ship(msg);
    }
}
