//! Fixture: one documented bench writer, one orphaned.

fn report() {
    // GOOD: EXPERIMENTS.md has a BENCH_ingest.json section.
    write_bench_json("ingest", &results);
    // BAD: nothing documents BENCH_orphan.json.
    write_bench_json("orphan", &results);
    // Dynamic names cannot be checked statically.
    write_bench_json(name_var, &results);
}
