//! Fixture: a broken `locks.toml` must surface span-reported
//! diagnostics, never a panic, and must disable the lock rules rather
//! than lint against a half-parsed hierarchy.

pub struct Engine {
    wal: Mutex<Wal>,
}

impl Engine {
    /// Would be a double-acquire under a valid model; with the model in
    /// error the lock rules stay quiet and only the parse errors show.
    pub fn twice(&self) {
        let first = self.wal.lock();
        let second = self.wal.lock();
        drop(second);
        drop(first);
    }
}
