//! Fixture: `guard-across-wait` — blocking receives/joins while a
//! foreign guard is live pin the lock for an unbounded sleep. The
//! condvar protocol (`cond.wait_timeout(guard, …)`) is exempt for the
//! waited guard's own class: the wait releases it atomically.

pub struct Engine {
    wal: Mutex<Wal>,
    seq: Mutex<u64>,
    cond: Condvar,
}

impl Engine {
    /// VIOLATION: blocking `recv` with the wal guard held.
    pub fn recv_under_guard(&self, rx: &Receiver<u8>) {
        let _w = self.wal.lock();
        let _ = rx.recv();
    }

    /// VIOLATION: thread join with the wal guard held.
    pub fn join_under_guard(&self, worker: JoinHandle<()>) {
        let _w = self.wal.lock();
        let _ = worker.join();
    }

    /// Fixed pattern (condvar protocol): the waited guard's own class
    /// is exempt — no finding.
    pub fn condvar_protocol(&self, timeout: Duration) {
        let seq = self.seq.lock();
        drop(self.cond.wait_timeout(seq, timeout));
    }

    /// Fixed pattern: the guard is dropped before blocking — no
    /// finding.
    pub fn recv_after_drop(&self, rx: &Receiver<u8>) {
        let w = self.wal.lock();
        drop(w);
        let _ = rx.recv();
    }
}
