//! Fixture: panicking constructs on the request path.

// BAD ×4: unwrap, expect, a panicking macro, and slice indexing.
fn request_path(input: Option<u32>, v: &[u32]) -> u32 {
    let a = input.unwrap();
    let b = input.expect("present");
    if v.is_empty() {
        unreachable!("checked above");
    }
    a + b + v[0]
}

// GOOD: structured error handling.
fn structured(input: Option<u32>, v: &[u32]) -> Result<u32, String> {
    let a = input.ok_or_else(|| "missing input".to_string())?;
    let first = v.first().copied().ok_or_else(|| "empty".to_string())?;
    Ok(a + first)
}

// GOOD: `&mut [u8]` and `let [a, b] = …` are not index expressions.
fn type_and_pattern_brackets(buf: &mut [u8]) -> usize {
    let [first, rest] = [1usize, 2];
    buf.len() + first + rest
}

#[test]
fn tests_may_panic(v: Vec<u32>) {
    assert_eq!(v[0], v.first().copied().unwrap());
}
