//! Fixture: this crate is outside every panic-path scope.

fn out_of_scope(input: Option<u32>, v: &[u32]) -> u32 {
    input.unwrap() + v[0]
}
