//! Fixture: only the recovery functions are scoped in this file.

// BAD: `open` is a recovery-path function.
fn open(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"))
}

// GOOD: `append` is not on the recovery path; panics are merely
// discouraged here, not lint-enforced.
fn append(v: &mut Vec<u8>, epoch: Option<u64>) {
    v.push(epoch.unwrap() as u8);
}
