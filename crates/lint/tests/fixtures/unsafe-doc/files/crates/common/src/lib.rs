//! Fixture: `unsafe` blocks with and without a SAFETY comment.

// GOOD: contiguous comment block above the `unsafe` keyword, any length.
fn documented(ptr: *const u8) -> u8 {
    // The read below needs its argument alive for the whole call.
    // SAFETY: `ptr` comes from a live Box the caller still owns, so it
    // is valid, aligned, and initialized for the read.
    unsafe { std::ptr::read(ptr) }
}

// GOOD: trailing SAFETY comment on the block's own line.
fn documented_inline(ptr: *const u8) -> u8 {
    unsafe { std::ptr::read(ptr) } // SAFETY: caller-owned live allocation.
}

// BAD: no soundness argument anywhere near the block.
fn undocumented(ptr: *const u8) -> u8 {
    unsafe { std::ptr::read(ptr) }
}

// GOOD: the comment sits above the *statement* holding the block — the
// conventional spot for a `let`-bound syscall result.
fn documented_binding(ptr: *const u8) -> u8 {
    // SAFETY: `ptr` is valid for reads per the caller's contract.
    let byte = unsafe { std::ptr::read(ptr) };
    byte
}

// BAD: a comment above the statement that never argues soundness.
fn undocumented_binding(ptr: *const u8) -> u8 {
    // Grab the first byte.
    let byte = unsafe { std::ptr::read(ptr) };
    byte
}

// GOOD: declarations do not execute; only blocks need the comment.
unsafe fn declaration_only(ptr: *const u8) -> u8 {
    0
}
