//! Fixture: `double-acquire` — re-entering a mutex class already held
//! on the same thread self-deadlocks.

pub struct Engine {
    wal: Mutex<Wal>,
}

impl Engine {
    /// VIOLATION: the second `wal` acquisition overlaps the first.
    pub fn twice(&self) {
        let first = self.wal.lock();
        let second = self.wal.lock();
        drop(second);
        drop(first);
    }

    /// Fixed pattern: the first guard is dropped before re-acquiring —
    /// no finding.
    pub fn sequential(&self) {
        let first = self.wal.lock();
        drop(first);
        let second = self.wal.lock();
        drop(second);
    }
}
