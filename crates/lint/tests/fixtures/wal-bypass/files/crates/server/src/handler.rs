//! Fixture: call sites outside the engine crate.

// GOOD: WAL-logged entry points.
fn good_entry_points(db: &mut Database) {
    db.execute_sql("ADD ANNOTATION 'x' ON t");
    db.annotate_batch(Vec::new());
    db.checkpoint();
    db.stats();
}

// BAD: direct call to internal plumbing skips the log.
fn bad_direct_mutation(db: &mut Database) {
    db.rebuild_index();
}

#[cfg(test)]
mod tests {
    // GOOD: test code may poke internals.
    #[test]
    fn tests_are_exempt(db: &mut Database) {
        db.rebuild_index();
    }
}
