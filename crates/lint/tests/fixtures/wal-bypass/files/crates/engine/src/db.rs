//! Fixture: the Database method surface the rule reads.

pub struct Database;

impl Database {
    pub fn execute_sql(&mut self, _sql: &str) {}
    pub fn annotate_batch(&mut self, _stmts: Vec<String>) {}
    pub fn checkpoint(&mut self) {}
    // Internal plumbing: &mut self, not an entry point → restricted.
    pub fn rebuild_index(&mut self) {}
    // Read-only methods are never restricted.
    pub fn stats(&self) {}
}
