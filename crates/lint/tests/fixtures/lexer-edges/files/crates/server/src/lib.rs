//! Fixture: literals and comments that merely *look* like violations.
//! The lexer must keep all of these out of the code token stream.

// A raw string full of panic bait: x.unwrap() and v[0] and panic!().
fn raw_strings() -> &'static str {
    let s = r#"x.unwrap() and v[0] and panic!("boom") and db.write()"#;
    let with_hashes = r##"closes at two hashes: "# keeps going"##;
    let byte = br#"b.expect("x")"#;
    let _ = (with_hashes, byte);
    s
}

/* Nested /* block comments: db.write() then file.sync_all() here
   are comment text, not code. */ */
fn block_comments(db: &Db) {
    db.read_only();
}

// Char literals and lifetimes must not open string mode.
fn chars_and_lifetimes<'a>(input: &'a str) -> (&'a str, char, char) {
    let quote = '"';
    let escaped = '\'';
    (input, quote, escaped)
}

// Ranges next to floats: 3.25 is one number, 8..16 is a range.
fn numbers() -> (f64, usize) {
    let weight = 3.25;
    let count = (8..16).count();
    (weight, count)
}

// A string containing a lint:allow marker must not suppress anything
// (and nothing here needs suppressing).
fn allow_in_string() -> &'static str {
    "// lint:allow(panic-path)"
}
