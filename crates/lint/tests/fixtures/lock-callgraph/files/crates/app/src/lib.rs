//! Fixture: call-graph resolution edge cases feeding the lock rules.
//!
//! - same-named methods on different impl types must resolve by the
//!   receiver's declared type (only `Alpha::refresh` acquires
//!   `broadcast`; calling `Beta::refresh` is clean),
//! - trait-impl methods attribute to the implementing type,
//! - a guard-returning helper escapes its acquisitions into the caller,
//! - calls through local callable values are unknown edges and widen,
//! - closures do not hide waits from the enclosing guard region.

pub struct Alpha {
    broadcast: Mutex<()>,
}

pub struct Beta {
    zoom: Mutex<ZoomRegistry>,
}

impl Alpha {
    pub fn refresh(&self) {
        let _b = self.broadcast.lock();
    }
}

impl Beta {
    pub fn refresh(&self) {
        let _z = self.zoom.lock();
    }
}

pub trait Tick {
    fn tick(&self);
}

impl Tick for Alpha {
    fn tick(&self) {
        let _b = self.broadcast.lock();
    }
}

pub struct App {
    broadcast: Mutex<()>,
    zoom: Mutex<ZoomRegistry>,
    wal: Mutex<Wal>,
    shards: Vec<RwLock<Database>>,
}

impl App {
    /// VIOLATION: `a.refresh()` resolves to `Alpha::refresh` via the
    /// typed receiver, which acquires broadcast under the zoom guard.
    pub fn alpha_under_zoom(&self, a: &Alpha) {
        let _z = self.zoom.lock();
        a.refresh();
    }

    /// No finding: `b.refresh()` resolves to `Beta::refresh` only —
    /// the same-named method on `Alpha` must not bleed in (zoom ranks
    /// after broadcast, so this nesting is legal).
    pub fn beta_under_broadcast(&self, b: &Beta) {
        let _g = self.broadcast.lock();
        b.refresh();
    }

    /// VIOLATION: the trait method resolves to `Alpha`'s impl, which
    /// acquires broadcast under the zoom guard.
    pub fn trait_under_zoom(&self, a: &Alpha) {
        let _z = self.zoom.lock();
        a.tick();
    }

    /// Guard-returning helper: its shard read guards escape to the
    /// caller (no finding here by itself).
    pub fn lock_all(&self) -> Vec<RwLockReadGuard<'_, Database>> {
        let mut guards = Vec::new();
        for shard in &self.shards {
            guards.push(shard.read());
        }
        guards
    }

    /// VIOLATION: broadcast acquired under the shard guards that
    /// escaped from `lock_all`.
    pub fn broadcast_under_guards(&self) {
        let guards = self.lock_all();
        let _b = self.broadcast.lock();
        drop(guards);
    }

    /// VIOLATION (widening): an unresolvable call through a local
    /// callable with a guard held could acquire anything.
    pub fn run_hook(&self, hook: impl Fn()) {
        let _z = self.zoom.lock();
        hook();
    }

    /// VIOLATIONS: the closure body's `recv` executes (via the local
    /// callable) with the wal guard held — the wait is flagged where it
    /// sits, and the unknown `drain()` call widens.
    pub fn closure_capture(&self, rx: &Receiver<u8>) {
        let w = self.wal.lock();
        let drain = || {
            let _ = rx.recv();
        };
        drain();
        drop(w);
    }
}
