//! Fixture: `shard-guard-order` — guards of the ordered `shard` class
//! must be taken in ascending index order, and an index already held
//! shared must not be re-entered exclusively.

pub struct Engine {
    shards: Vec<RwLock<Database>>,
}

impl Engine {
    /// VIOLATION: descending shard indices (1 then 0).
    pub fn descending(&self) {
        let b = self.shards[1].read();
        let a = self.shards[0].read();
        drop(a);
        drop(b);
    }

    /// VIOLATION: exclusive re-entry of an index already held shared.
    pub fn reentrant_write(&self) {
        let r = self.shards[0].read();
        let w = self.shards[0].write();
        drop(w);
        drop(r);
    }

    /// Fixed pattern: ascending reads — no finding.
    pub fn ascending(&self) {
        let a = self.shards[0].read();
        let b = self.shards[1].read();
        drop(a);
        drop(b);
    }
}
