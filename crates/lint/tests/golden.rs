//! Golden tests: each fixture under `tests/fixtures/<case>/files/` is a
//! miniature workspace with deliberate violations (and near-misses);
//! the linter's `--json` output over it must match
//! `tests/fixtures/<case>/expected.json` byte for byte.
//!
//! Regenerate the goldens after an intentional rule change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lint --test golden
//! ```
//!
//! then review the diff like any other code change.

use std::path::{Path, PathBuf};

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case)
}

/// Runs the linter over one fixture and compares (or rewrites) its
/// golden JSON. Returns the outcome for case-specific extra assertions.
fn check_case(case: &str) -> lint::RunOutcome {
    let root = fixture_root(case);
    let files = root.join("files");
    assert!(files.is_dir(), "fixture `{case}` has no files/ directory");
    // A fixture may carry its own baseline (the `baseline` case does);
    // everywhere else the path simply does not exist = empty baseline.
    let outcome = lint::run(&files, &files.join("lint.toml"))
        .unwrap_or_else(|e| panic!("fixture `{case}` failed to lint: {e}"));
    let got = lint::diag::render_json(&outcome.reported);
    let golden = root.join("expected.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, format!("{got}\n")).expect("write golden");
        return outcome;
    }
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("fixture `{case}` missing expected.json: {e}"));
    assert_eq!(
        got.trim(),
        expected.trim(),
        "fixture `{case}` diverged from its golden JSON \
         (UPDATE_GOLDEN=1 regenerates after intentional changes)"
    );
    outcome
}

#[test]
fn lock_across_io_fires_on_held_guard_only() {
    let outcome = check_case("lock-across-io");
    assert_eq!(outcome.reported.len(), 2);
    assert!(outcome.reported.iter().all(|d| d.rule == "lock-across-io"));
}

#[test]
fn wal_bypass_flags_non_entry_point_mutations() {
    let outcome = check_case("wal-bypass");
    assert_eq!(outcome.reported.len(), 1);
    assert!(outcome.reported[0].message.contains("rebuild_index"));
}

#[test]
fn panic_path_scopes_by_path_and_function() {
    let outcome = check_case("panic-path");
    assert!(outcome.reported.iter().all(|d| d.rule == "panic-path"));
    // Out-of-scope files and test functions contribute nothing.
    assert!(outcome
        .reported
        .iter()
        .all(|d| !d.file.starts_with("crates/annotations/")));
}

#[test]
fn wire_exhaustive_demands_decode_arms_and_tests() {
    let outcome = check_case("wire-exhaustive");
    assert_eq!(outcome.reported.len(), 2);
}

#[test]
fn bench_drift_catches_undocumented_artifacts() {
    let outcome = check_case("bench-drift");
    assert_eq!(outcome.reported.len(), 1);
    assert!(outcome.reported[0].message.contains("BENCH_orphan.json"));
}

#[test]
fn shim_only_deps_rejects_registry_crates() {
    let outcome = check_case("shim-only-deps");
    assert_eq!(outcome.reported.len(), 1);
    assert!(outcome.reported[0].message.contains("serde"));
}

#[test]
fn unsafe_doc_requires_safety_comments() {
    let outcome = check_case("unsafe-doc");
    // The bare undocumented block and the undocumented `let`-bound one;
    // a SAFETY comment above the binding statement satisfies the rule.
    assert_eq!(outcome.reported.len(), 2);
}

#[test]
fn reactor_blocking_bans_sleeps_outside_wait_ready() {
    let outcome = check_case("reactor-blocking");
    assert_eq!(outcome.reported.len(), 2);
    assert!(outcome
        .reported
        .iter()
        .all(|d| d.rule == "reactor-blocking"));
    // Same calls outside reactor/ are out of scope.
    assert!(outcome
        .reported
        .iter()
        .all(|d| d.file.contains("src/reactor/")));
}

#[test]
fn lexer_edge_cases_produce_no_false_positives() {
    let outcome = check_case("lexer-edges");
    assert!(
        outcome.reported.is_empty(),
        "literals and comments leaked code tokens: {:?}",
        outcome.reported
    );
}

#[test]
fn inline_allow_suppresses_its_line_only() {
    let outcome = check_case("allow-suppression");
    assert_eq!(outcome.reported.len(), 1);
    assert!(outcome.reported[0].file.contains("lib.rs"));
}

#[test]
fn baseline_budgets_suppress_up_to_count() {
    let outcome = check_case("baseline");
    assert_eq!(outcome.reported.len(), 1, "one finding over budget");
    assert_eq!(outcome.baselined.len(), 1, "one finding within budget");
}
