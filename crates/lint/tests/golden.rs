//! Golden tests: each fixture under `tests/fixtures/<case>/files/` is a
//! miniature workspace with deliberate violations (and near-misses);
//! the linter's `--json` output over it must match
//! `tests/fixtures/<case>/expected.json` byte for byte.
//!
//! Regenerate the goldens after an intentional rule change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p lint --test golden
//! ```
//!
//! then review the diff like any other code change.

use std::path::{Path, PathBuf};

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(case)
}

/// Runs the linter over one fixture and compares (or rewrites) its
/// golden JSON. Returns the outcome for case-specific extra assertions.
fn check_case(case: &str) -> lint::RunOutcome {
    let root = fixture_root(case);
    let files = root.join("files");
    assert!(files.is_dir(), "fixture `{case}` has no files/ directory");
    // A fixture may carry its own baseline (the `baseline` case does);
    // everywhere else the path simply does not exist = empty baseline.
    let outcome = lint::run(&files, &files.join("lint.toml"))
        .unwrap_or_else(|e| panic!("fixture `{case}` failed to lint: {e}"));
    let got = lint::diag::render_json(&outcome.reported);
    let golden = root.join("expected.json");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, format!("{got}\n")).expect("write golden");
        return outcome;
    }
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("fixture `{case}` missing expected.json: {e}"));
    assert_eq!(
        got.trim(),
        expected.trim(),
        "fixture `{case}` diverged from its golden JSON \
         (UPDATE_GOLDEN=1 regenerates after intentional changes)"
    );
    outcome
}

#[test]
fn lock_across_io_fires_on_held_guard_only() {
    let outcome = check_case("lock-across-io");
    assert_eq!(outcome.reported.len(), 2);
    assert!(outcome.reported.iter().all(|d| d.rule == "lock-across-io"));
}

#[test]
fn wal_bypass_flags_non_entry_point_mutations() {
    let outcome = check_case("wal-bypass");
    assert_eq!(outcome.reported.len(), 1);
    assert!(outcome.reported[0].message.contains("rebuild_index"));
}

#[test]
fn panic_path_scopes_by_path_and_function() {
    let outcome = check_case("panic-path");
    assert!(outcome.reported.iter().all(|d| d.rule == "panic-path"));
    // Out-of-scope files and test functions contribute nothing.
    assert!(outcome
        .reported
        .iter()
        .all(|d| !d.file.starts_with("crates/annotations/")));
}

#[test]
fn wire_exhaustive_demands_decode_arms_and_tests() {
    let outcome = check_case("wire-exhaustive");
    assert_eq!(outcome.reported.len(), 2);
}

#[test]
fn bench_drift_catches_undocumented_artifacts() {
    let outcome = check_case("bench-drift");
    assert_eq!(outcome.reported.len(), 1);
    assert!(outcome.reported[0].message.contains("BENCH_orphan.json"));
}

#[test]
fn shim_only_deps_rejects_registry_crates() {
    let outcome = check_case("shim-only-deps");
    assert_eq!(outcome.reported.len(), 1);
    assert!(outcome.reported[0].message.contains("serde"));
}

#[test]
fn unsafe_doc_requires_safety_comments() {
    let outcome = check_case("unsafe-doc");
    // The bare undocumented block and the undocumented `let`-bound one;
    // a SAFETY comment above the binding statement satisfies the rule.
    assert_eq!(outcome.reported.len(), 2);
}

#[test]
fn reactor_blocking_bans_sleeps_outside_wait_ready() {
    let outcome = check_case("reactor-blocking");
    assert_eq!(outcome.reported.len(), 2);
    assert!(outcome
        .reported
        .iter()
        .all(|d| d.rule == "reactor-blocking"));
    // Same calls outside reactor/ are out of scope.
    assert!(outcome
        .reported
        .iter()
        .all(|d| d.file.contains("src/reactor/")));
}

#[test]
fn lexer_edge_cases_produce_no_false_positives() {
    let outcome = check_case("lexer-edges");
    assert!(
        outcome.reported.is_empty(),
        "literals and comments leaked code tokens: {:?}",
        outcome.reported
    );
}

#[test]
fn inline_allow_suppresses_its_line_only() {
    let outcome = check_case("allow-suppression");
    assert_eq!(outcome.reported.len(), 1);
    assert!(outcome.reported[0].file.contains("lib.rs"));
}

#[test]
fn lock_order_flags_direct_and_transitive_inversions() {
    let outcome = check_case("lock-order");
    assert_eq!(outcome.reported.len(), 2);
    assert!(outcome.reported.iter().all(|d| d.rule == "lock-order"));
    // One finding is the direct inversion, one rides through the call.
    assert!(outcome
        .reported
        .iter()
        .any(|d| d.message.contains("grab_broadcast")));
}

#[test]
fn shard_guard_order_demands_ascending_indices() {
    let outcome = check_case("shard-guard-order");
    assert_eq!(outcome.reported.len(), 2);
    assert!(outcome
        .reported
        .iter()
        .all(|d| d.rule == "shard-guard-order"));
}

#[test]
fn double_acquire_flags_overlapping_same_class_guards() {
    let outcome = check_case("double-acquire");
    assert_eq!(outcome.reported.len(), 1);
    assert_eq!(outcome.reported[0].rule, "double-acquire");
    // `sequential` drops the first guard before re-acquiring: clean.
    assert_eq!(outcome.reported[0].line, 12, "only `twice` fires");
}

#[test]
fn guard_across_wait_exempts_the_condvar_protocol() {
    let outcome = check_case("guard-across-wait");
    assert_eq!(outcome.reported.len(), 2);
    assert!(outcome
        .reported
        .iter()
        .all(|d| d.rule == "guard-across-wait"));
    // `condvar_protocol` (the waited guard's own class) and
    // `recv_after_drop` must stay clean.
    assert!(outcome.reported.iter().all(|d| d.line < 28));
}

#[test]
fn callgraph_resolves_types_traits_escapes_and_widens() {
    let outcome = check_case("lock-callgraph");
    // alpha_under_zoom, trait_under_zoom, broadcast_under_guards,
    // run_hook (widening), closure_capture (wait + widening) — and
    // nothing from beta_under_broadcast, whose same-named method
    // resolves to the other impl type.
    assert!(outcome
        .reported
        .iter()
        .all(|d| !d.message.contains("beta_under_broadcast")));
    // The `lock_all` helper's escaped shard guards reach the caller.
    assert!(outcome
        .reported
        .iter()
        .any(|d| d.message.contains("`shard` guard")));
    // Typed receivers resolve same-named methods and trait impls.
    assert!(outcome
        .reported
        .iter()
        .any(|d| d.message.contains("`refresh`")));
    assert!(outcome
        .reported
        .iter()
        .any(|d| d.message.contains("`tick`")));
    assert!(outcome
        .reported
        .iter()
        .any(|d| d.message.contains("local callable")));
    assert!(outcome
        .reported
        .iter()
        .any(|d| d.rule == "guard-across-wait"));
}

#[test]
fn broken_locks_toml_reports_spans_and_disables_lock_rules() {
    let outcome = check_case("lock-model-errors");
    assert!(!outcome.reported.is_empty());
    assert!(outcome.reported.iter().all(|d| d.file == "locks.toml"));
    assert!(outcome
        .reported
        .iter()
        .all(|d| d.message.contains("invalid lock hierarchy")));
    // The would-be double-acquire in the fixture source must NOT fire:
    // a broken model disables the lock rules instead of half-linting.
    assert!(outcome
        .reported
        .iter()
        .all(|d| d.rule == "lock-order" && d.line > 0));
}

/// The `--json` schema other tools consume: a single object with a
/// `diagnostics` array of `{rule, file, line, col, message}` (in that
/// key order) and a trailing `count` equal to the array length.
#[test]
fn json_output_matches_documented_schema() {
    let root = fixture_root("lock-order");
    let files = root.join("files");
    let outcome = lint::run(&files, &files.join("lint.toml")).expect("lint");
    let got = lint::diag::render_json(&outcome.reported);
    assert!(got.starts_with("{\"diagnostics\":["));
    assert!(got.ends_with(&format!("\"count\":{}}}", outcome.reported.len())));
    for diag in &outcome.reported {
        let entry = format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":",
            diag.rule, diag.file, diag.line, diag.col
        );
        assert!(
            got.contains(&entry),
            "schema drift: `{entry}` not found in {got}"
        );
    }
}

#[test]
fn baseline_budgets_suppress_up_to_count() {
    let outcome = check_case("baseline");
    assert_eq!(outcome.reported.len(), 1, "one finding over budget");
    assert_eq!(outcome.baselined.len(), 1, "one finding within budget");
}
