//! The pipeline tuple: a row plus its attached summary objects.
//!
//! This is the paper's extended data model — "each data tuple r carries
//! its attribute values as well as the annotation summary objects that
//! summarize the raw annotations on r". Operators transform the `row` and
//! `summaries` halves together.
//!
//! Summary objects are attached **copy-on-write**: the `summaries` vector
//! holds [`SharedObject`] (`Arc<SummaryObject>`) handles, usually pointing
//! straight into the registry's per-row object lists. Scanning a table
//! therefore bumps refcounts instead of deep-cloning signature maps and
//! cluster states; the payload is cloned lazily (via [`Arc::make_mut`])
//! only when an operator actually mutates an object — a join shifting
//! column ordinals, a projection dropping annotated columns, a grouping
//! merge folding two rows together.

use insightnotes_common::{codec, InstanceId, Result};
use insightnotes_storage::Row;
use insightnotes_summaries::{SharedObject, SummaryObject};
use std::sync::Arc;

/// A row travelling through the query pipeline with its summary objects.
///
/// `summaries` is kept sorted by instance id so per-instance lookup and
/// merge are linear scans over short vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedRow {
    /// The data values.
    pub row: Row,
    /// Copy-on-write summary objects, sorted by instance id.
    pub summaries: Vec<(InstanceId, SharedObject)>,
}

impl AnnotatedRow {
    /// A row with no summaries.
    pub fn bare(row: Row) -> Self {
        Self {
            row,
            summaries: Vec::new(),
        }
    }

    /// Creates from owned objects, restoring the sorted-by-instance
    /// invariant. Each object becomes the sole holder of a fresh `Arc`.
    pub fn new(row: Row, summaries: Vec<(InstanceId, SummaryObject)>) -> Self {
        Self::from_shared(
            row,
            summaries
                .into_iter()
                .map(|(i, o)| (i, Arc::new(o)))
                .collect(),
        )
    }

    /// Creates from already-shared objects (the scan path: handles cloned
    /// off the registry), restoring the sorted-by-instance invariant.
    pub fn from_shared(row: Row, mut summaries: Vec<(InstanceId, SharedObject)>) -> Self {
        summaries.sort_by_key(|(i, _)| *i);
        Self { row, summaries }
    }

    /// The summary object of one instance, if present.
    pub fn summary(&self, instance: InstanceId) -> Option<&SummaryObject> {
        self.summaries
            .iter()
            .find(|(i, _)| *i == instance)
            .map(|(_, o)| o.as_ref())
    }

    /// Applies a column remap to every summary object (projection /
    /// ordinal shift). `remap` maps input ordinals to output ordinals;
    /// `None` drops the column and with it the effect of annotations
    /// attached only to dropped columns.
    ///
    /// Objects whose signatures are untouched by the remap (common for
    /// identity projections) keep their shared payload.
    pub fn project_summaries(&mut self, remap: &dyn Fn(u16) -> Option<u16>) {
        for (_, obj) in &mut self.summaries {
            if obj.projection_changes(remap) {
                Arc::make_mut(obj).project(remap);
            }
        }
        self.summaries.retain(|(_, o)| !o.is_empty());
    }

    /// Merges another tuple's summaries into this one (join / duplicate
    /// elimination / grouping). Objects of the same instance merge without
    /// double counting; instances present on only one side propagate as
    /// shared handles.
    pub fn merge_summaries(&mut self, other: &AnnotatedRow) -> Result<()> {
        for (inst, theirs) in &other.summaries {
            match self.summaries.binary_search_by_key(inst, |(i, _)| *i) {
                Ok(pos) => SummaryObject::merge_shared(&mut self.summaries[pos].1, theirs)?,
                Err(pos) => self.summaries.insert(pos, (*inst, Arc::clone(theirs))),
            }
        }
        Ok(())
    }

    /// Total distinct annotations summarized across all objects (an upper
    /// bound view per instance; instances summarize independently).
    pub fn total_annotations(&self) -> usize {
        self.summaries
            .iter()
            .map(|(_, o)| o.annotation_count())
            .max()
            .unwrap_or(0)
    }

    /// Approximate in-memory bytes (row + objects), for cache sizing.
    /// Shared payloads are charged in full to every holder — deliberately
    /// conservative for cache budgeting.
    pub fn approx_bytes(&self) -> usize {
        self.row.approx_bytes()
            + self
                .summaries
                .iter()
                .map(|(_, o)| o.heap_bytes() + 8)
                .sum::<usize>()
    }
}

impl codec::Encodable for AnnotatedRow {
    fn encode(&self, enc: &mut codec::Encoder) {
        self.row.encode(enc);
        enc.varint(self.summaries.len() as u64);
        for (inst, obj) in &self.summaries {
            enc.u32(inst.raw());
            obj.encode(enc);
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let row = Row::decode(dec)?;
        let n = dec.varint()? as usize;
        let mut summaries = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let inst = InstanceId::new(dec.u32()?);
            summaries.push((inst, SummaryObject::decode(dec)?));
        }
        Ok(AnnotatedRow::new(row, summaries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_annotations::ColSig;
    use insightnotes_common::codec::Encodable;
    use insightnotes_storage::Value;
    use insightnotes_summaries::Contribution;

    fn classifier(counts: &[(u64, usize)]) -> SummaryObject {
        let labels: Arc<[String]> = vec!["A".to_string(), "B".to_string()].into();
        let mut obj = SummaryObject::Classifier(
            insightnotes_summaries::object::ClassifierObject::new(labels),
        );
        for &(id, label) in counts {
            obj.apply(id, ColSig::whole_row(2), &Contribution::Label(label))
                .unwrap();
        }
        obj
    }

    fn arow(vals: Vec<Value>, summaries: Vec<(InstanceId, SummaryObject)>) -> AnnotatedRow {
        AnnotatedRow::new(Row::new(vals), summaries)
    }

    #[test]
    fn new_sorts_summaries_by_instance() {
        let r = arow(
            vec![Value::Int(1)],
            vec![
                (InstanceId(2), classifier(&[])),
                (InstanceId(1), classifier(&[])),
            ],
        );
        assert_eq!(r.summaries[0].0, InstanceId(1));
        assert!(r.summary(InstanceId(2)).is_some());
        assert!(r.summary(InstanceId(3)).is_none());
    }

    #[test]
    fn merge_combines_same_instance_and_adopts_new() {
        let mut left = arow(
            vec![Value::Int(1)],
            vec![(InstanceId(1), classifier(&[(1, 0), (2, 0)]))],
        );
        let right = arow(
            vec![Value::Int(1)],
            vec![
                (InstanceId(1), classifier(&[(2, 0), (3, 1)])),
                (InstanceId(2), classifier(&[(9, 0)])),
            ],
        );
        left.merge_summaries(&right).unwrap();
        let c = left
            .summary(InstanceId(1))
            .unwrap()
            .as_classifier()
            .unwrap();
        assert_eq!(c.count(0), 2, "shared annotation 2 not double counted");
        assert_eq!(c.count(1), 1);
        assert!(left.summary(InstanceId(2)).is_some());
    }

    #[test]
    fn merge_of_shared_handles_is_shallow() {
        // The self-join shape: both sides carry handles to the SAME
        // registry object. The merge must neither double count nor clone.
        let shared = Arc::new(classifier(&[(1, 0), (2, 1)]));
        let mut left = AnnotatedRow::from_shared(
            Row::new(vec![Value::Int(1)]),
            vec![(InstanceId(1), Arc::clone(&shared))],
        );
        let right = AnnotatedRow::from_shared(
            Row::new(vec![Value::Int(1)]),
            vec![(InstanceId(1), Arc::clone(&shared))],
        );
        left.merge_summaries(&right).unwrap();
        assert!(
            Arc::ptr_eq(&left.summaries[0].1, &shared),
            "idempotent self-merge keeps the shared payload"
        );
        let c = left
            .summary(InstanceId(1))
            .unwrap()
            .as_classifier()
            .unwrap();
        assert_eq!((c.count(0), c.count(1)), (1, 1));
    }

    #[test]
    fn project_drops_emptied_objects() {
        let labels: Arc<[String]> = vec!["A".to_string()].into();
        let mut obj = SummaryObject::Classifier(
            insightnotes_summaries::object::ClassifierObject::new(labels),
        );
        obj.apply(
            1,
            ColSig::single(insightnotes_common::ColumnId(1)),
            &Contribution::Label(0),
        )
        .unwrap();
        let mut r = arow(
            vec![Value::Int(1), Value::Int(2)],
            vec![(InstanceId(1), obj)],
        );
        r.project_summaries(&|c| if c == 0 { Some(0) } else { None });
        assert!(
            r.summaries.is_empty(),
            "object emptied by projection is removed"
        );
    }

    #[test]
    fn identity_projection_keeps_payload_shared() {
        let shared = Arc::new(classifier(&[(1, 0)]));
        let mut r = AnnotatedRow::from_shared(
            Row::new(vec![Value::Int(1), Value::Int(2)]),
            vec![(InstanceId(1), Arc::clone(&shared))],
        );
        r.project_summaries(&|c| Some(c));
        assert!(
            Arc::ptr_eq(&r.summaries[0].1, &shared),
            "no-op remap must not trigger copy-on-write"
        );
    }

    #[test]
    fn round_trips_through_codec() {
        let r = arow(
            vec![Value::Int(1), Value::Text("swan".into())],
            vec![(InstanceId(3), classifier(&[(1, 0), (5, 1)]))],
        );
        let back = AnnotatedRow::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn byte_accounting_is_positive() {
        let r = arow(
            vec![Value::Int(1)],
            vec![(InstanceId(1), classifier(&[(1, 0)]))],
        );
        assert!(r.approx_bytes() > 0);
        assert_eq!(r.total_annotations(), 1);
    }
}
