//! Scalar expressions over annotated rows.
//!
//! `SExpr` mirrors the storage layer's bound expressions but evaluates
//! against an [`AnnotatedRow`], which adds one leaf the relational layer
//! cannot have: [`SExpr::SummaryCount`], the summary-based scalar behind
//! predicates like `WHERE SUMMARY_COUNT(ClassBird1, 'Disease') > 0` and
//! summary-ordered results. This is the "summary-based processing can be
//! plugged in at any stage of the query plan" capability (and the
//! first-class-summaries direction of the EDBT'15 companion paper).

use crate::annotated::AnnotatedRow;
use insightnotes_common::{Error, InstanceId, Result};
use insightnotes_storage::{ArithOp, BoundExpr, CmpOp, Row, Value};

/// Which component of a summary object a `SUMMARY_COUNT` reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComponentSel {
    /// A classifier label, resolved to its index at bind time.
    Label(usize),
    /// A cluster group ordinal (0-based at this layer).
    Group(usize),
}

/// A bound scalar expression over an annotated row.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    /// Column reference by ordinal.
    Column(usize),
    /// Constant.
    Literal(Value),
    /// Comparison (SQL three-valued semantics).
    Cmp(CmpOp, Box<SExpr>, Box<SExpr>),
    /// Arithmetic.
    Arith(ArithOp, Box<SExpr>, Box<SExpr>),
    /// Conjunction.
    And(Box<SExpr>, Box<SExpr>),
    /// Disjunction.
    Or(Box<SExpr>, Box<SExpr>),
    /// Negation.
    Not(Box<SExpr>),
    /// `IS NULL` / `IS NOT NULL`.
    IsNull(Box<SExpr>, bool),
    /// Substring containment.
    Contains(Box<SExpr>, String),
    /// The count behind one component of the tuple's summary object for
    /// `instance` (0 when the tuple has no such object — an unannotated
    /// tuple has empty summaries).
    SummaryCount {
        /// The summary instance.
        instance: InstanceId,
        /// The component to count.
        component: ComponentSel,
    },
}

impl SExpr {
    /// Evaluates against an annotated row.
    pub fn eval(&self, arow: &AnnotatedRow) -> Result<Value> {
        self.eval_parts(&arow.row, &arow.summaries)
    }

    /// Predicate view: NULL and FALSE reject.
    pub fn satisfied(&self, arow: &AnnotatedRow) -> Result<bool> {
        self.satisfied_parts(&arow.row, &arow.summaries)
    }

    /// Core evaluator over a row and a (possibly empty) summary slice.
    /// The raw-propagation baseline evaluates predicates through this
    /// entry point with no summaries attached.
    pub fn eval_parts(
        &self,
        row: &Row,
        summaries: &[(
            insightnotes_common::InstanceId,
            insightnotes_summaries::SharedObject,
        )],
    ) -> Result<Value> {
        match self {
            SExpr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::Execution(format!("column ordinal {i} out of range"))),
            SExpr::Literal(v) => Ok(v.clone()),
            SExpr::Cmp(op, l, r) => {
                let (lv, rv) = (l.eval_parts(row, summaries)?, r.eval_parts(row, summaries)?);
                Ok(match lv.sql_cmp(&rv) {
                    Some(ord) => Value::Bool(op.test(ord)),
                    None => Value::Null,
                })
            }
            SExpr::Arith(op, l, r) => {
                // Reuse the relational evaluator for arithmetic by packing
                // the two already-evaluated operands into a fresh row.
                let (lv, rv) = (l.eval_parts(row, summaries)?, r.eval_parts(row, summaries)?);
                let tmp = Row::new(vec![lv, rv]);
                BoundExpr::Arith(
                    *op,
                    Box::new(BoundExpr::Column(0)),
                    Box::new(BoundExpr::Column(1)),
                )
                .eval(&tmp)
            }
            SExpr::And(l, r) => match l.eval_parts(row, summaries)? {
                Value::Bool(false) => Ok(Value::Bool(false)),
                lv => match (lv, r.eval_parts(row, summaries)?) {
                    (_, Value::Bool(false)) => Ok(Value::Bool(false)),
                    (Value::Bool(true), Value::Bool(true)) => Ok(Value::Bool(true)),
                    _ => Ok(Value::Null),
                },
            },
            SExpr::Or(l, r) => match l.eval_parts(row, summaries)? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                lv => match (lv, r.eval_parts(row, summaries)?) {
                    (_, Value::Bool(true)) => Ok(Value::Bool(true)),
                    (Value::Bool(false), Value::Bool(false)) => Ok(Value::Bool(false)),
                    _ => Ok(Value::Null),
                },
            },
            SExpr::Not(e) => match e.eval_parts(row, summaries)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                v => Err(Error::Type(format!("NOT over non-boolean {v:?}"))),
            },
            SExpr::IsNull(e, negated) => {
                let isnull = e.eval_parts(row, summaries)?.is_null();
                Ok(Value::Bool(isnull != *negated))
            }
            SExpr::Contains(e, needle) => match e.eval_parts(row, summaries)? {
                Value::Text(s) => Ok(Value::Bool(s.contains(needle.as_str()))),
                Value::Null => Ok(Value::Null),
                v => Err(Error::Type(format!("CONTAINS over non-text {v:?}"))),
            },
            SExpr::SummaryCount {
                instance,
                component,
            } => {
                let Some(obj) = summaries
                    .iter()
                    .find(|(i, _)| i == instance)
                    .map(|(_, o)| o)
                else {
                    return Ok(Value::Int(0));
                };
                let count = match component {
                    ComponentSel::Label(i) | ComponentSel::Group(i) => {
                        if *i < obj.component_count() {
                            obj.zoom_ids(*i)?.len()
                        } else {
                            0
                        }
                    }
                };
                Ok(Value::Int(count as i64))
            }
        }
    }

    /// Predicate view over raw parts: NULL and FALSE reject.
    pub fn satisfied_parts(
        &self,
        row: &Row,
        summaries: &[(
            insightnotes_common::InstanceId,
            insightnotes_summaries::SharedObject,
        )],
    ) -> Result<bool> {
        match self.eval_parts(row, summaries)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            v => Err(Error::Type(format!("predicate evaluated to {v:?}"))),
        }
    }

    /// Collects referenced column ordinals.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            SExpr::Column(i) => out.push(*i),
            SExpr::Literal(_) | SExpr::SummaryCount { .. } => {}
            SExpr::Cmp(_, l, r) | SExpr::Arith(_, l, r) | SExpr::And(l, r) | SExpr::Or(l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            SExpr::Not(e) | SExpr::IsNull(e, _) | SExpr::Contains(e, _) => {
                e.referenced_columns(out);
            }
        }
    }

    /// Rewrites column ordinals (predicate pushdown across projections).
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> SExpr {
        match self {
            SExpr::Column(i) => SExpr::Column(map(*i)),
            SExpr::Literal(v) => SExpr::Literal(v.clone()),
            SExpr::Cmp(op, l, r) => SExpr::Cmp(
                *op,
                Box::new(l.remap_columns(map)),
                Box::new(r.remap_columns(map)),
            ),
            SExpr::Arith(op, l, r) => SExpr::Arith(
                *op,
                Box::new(l.remap_columns(map)),
                Box::new(r.remap_columns(map)),
            ),
            SExpr::And(l, r) => SExpr::And(
                Box::new(l.remap_columns(map)),
                Box::new(r.remap_columns(map)),
            ),
            SExpr::Or(l, r) => SExpr::Or(
                Box::new(l.remap_columns(map)),
                Box::new(r.remap_columns(map)),
            ),
            SExpr::Not(e) => SExpr::Not(Box::new(e.remap_columns(map))),
            SExpr::IsNull(e, n) => SExpr::IsNull(Box::new(e.remap_columns(map)), *n),
            SExpr::Contains(e, s) => SExpr::Contains(Box::new(e.remap_columns(map)), s.clone()),
            SExpr::SummaryCount { .. } => self.clone(),
        }
    }

    /// True when the expression reads any summary object (such
    /// expressions cannot be pushed below summary-transforming operators).
    pub fn uses_summaries(&self) -> bool {
        match self {
            SExpr::SummaryCount { .. } => true,
            SExpr::Column(_) | SExpr::Literal(_) => false,
            SExpr::Cmp(_, l, r) | SExpr::Arith(_, l, r) | SExpr::And(l, r) | SExpr::Or(l, r) => {
                l.uses_summaries() || r.uses_summaries()
            }
            SExpr::Not(e) | SExpr::IsNull(e, _) | SExpr::Contains(e, _) => e.uses_summaries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_annotations::ColSig;
    use insightnotes_summaries::{object::ClassifierObject, Contribution, SummaryObject};
    use std::sync::Arc;

    fn arow_with_counts(counts: &[(u64, usize)]) -> AnnotatedRow {
        let labels: Arc<[String]> = vec!["refute".to_string(), "approve".to_string()].into();
        let mut obj = SummaryObject::Classifier(ClassifierObject::new(labels));
        for &(id, label) in counts {
            obj.apply(id, ColSig::whole_row(2), &Contribution::Label(label))
                .unwrap();
        }
        AnnotatedRow::new(
            Row::new(vec![Value::Int(5), Value::Text("x".into())]),
            vec![(InstanceId(1), obj)],
        )
    }

    #[test]
    fn summary_count_reads_label_cardinality() {
        let r = arow_with_counts(&[(1, 0), (2, 0), (3, 1)]);
        let e = SExpr::SummaryCount {
            instance: InstanceId(1),
            component: ComponentSel::Label(0),
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Int(2));
        // Out-of-range component and missing instance both read 0.
        let e2 = SExpr::SummaryCount {
            instance: InstanceId(1),
            component: ComponentSel::Label(9),
        };
        assert_eq!(e2.eval(&r).unwrap(), Value::Int(0));
        let e3 = SExpr::SummaryCount {
            instance: InstanceId(9),
            component: ComponentSel::Label(0),
        };
        assert_eq!(e3.eval(&r).unwrap(), Value::Int(0));
    }

    #[test]
    fn summary_predicates_compose_with_relational_ones() {
        let r = arow_with_counts(&[(1, 0)]);
        let pred = SExpr::And(
            Box::new(SExpr::Cmp(
                CmpOp::Gt,
                Box::new(SExpr::SummaryCount {
                    instance: InstanceId(1),
                    component: ComponentSel::Label(0),
                }),
                Box::new(SExpr::Literal(Value::Int(0))),
            )),
            Box::new(SExpr::Cmp(
                CmpOp::Eq,
                Box::new(SExpr::Column(0)),
                Box::new(SExpr::Literal(Value::Int(5))),
            )),
        );
        assert!(pred.satisfied(&r).unwrap());
        assert!(pred.uses_summaries());
    }

    #[test]
    fn is_null_negation() {
        let r = AnnotatedRow::bare(Row::new(vec![Value::Null]));
        assert!(SExpr::IsNull(Box::new(SExpr::Column(0)), false)
            .satisfied(&r)
            .unwrap());
        assert!(!SExpr::IsNull(Box::new(SExpr::Column(0)), true)
            .satisfied(&r)
            .unwrap());
    }

    #[test]
    fn arithmetic_delegates_to_relational_semantics() {
        let r = AnnotatedRow::bare(Row::new(vec![Value::Int(7)]));
        let e = SExpr::Arith(
            ArithOp::Mul,
            Box::new(SExpr::Column(0)),
            Box::new(SExpr::Literal(Value::Int(6))),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Int(42));
        let div0 = SExpr::Arith(
            ArithOp::Div,
            Box::new(SExpr::Column(0)),
            Box::new(SExpr::Literal(Value::Int(0))),
        );
        assert!(div0.eval(&r).is_err());
    }

    #[test]
    fn referenced_columns_skip_summary_leaves() {
        let e = SExpr::And(
            Box::new(SExpr::Cmp(
                CmpOp::Eq,
                Box::new(SExpr::Column(3)),
                Box::new(SExpr::Literal(Value::Int(1))),
            )),
            Box::new(SExpr::SummaryCount {
                instance: InstanceId(1),
                component: ComponentSel::Group(0),
            }),
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec![3]);
        let remapped = e.remap_columns(&|c| c - 3);
        let mut cols2 = Vec::new();
        remapped.referenced_columns(&mut cols2);
        assert_eq!(cols2, vec![0]);
    }
}
