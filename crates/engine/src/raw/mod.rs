//! The raw-propagation baseline engine.
//!
//! Pre-InsightNotes annotation managers (DBNotes, Mondrian, and the
//! systems the paper's related work surveys) propagate the *raw
//! annotations themselves* through the query pipeline: every tuple carries
//! its full annotation list (content included), projection filters that
//! list by attached columns, and join unions the two sides' lists.
//! This module implements exactly that over the same [`LogicalPlan`], so
//! experiment E2 can compare summary-aware propagation against the
//! baseline on identical plans and data.
//!
//! Annotation text is an owned `String` per tuple, because that is the
//! DBNotes model: annotations are materialized as additional attribute
//! values, so every tuple copy (scan, join output) copies its annotation
//! values. The per-tuple annotation vectors and their union/dedup/filter
//! work scale with the annotation ratio — the effect experiment E2
//! measures. The join algorithm is the same hash join the summary engine
//! uses, so the comparison isolates propagation cost.

use crate::plan::logical::{AggSpec, LogicalPlan, SortKey};
use insightnotes_annotations::{AnnotationStore, ColSig};
use insightnotes_common::{AnnotationId, Error, Result};
use insightnotes_sql::AggFunc;
use insightnotes_storage::{Catalog, Row, Value};
use std::collections::HashMap;

/// One propagated raw annotation.
#[derive(Debug, Clone)]
pub struct RawAnn {
    /// Annotation id.
    pub id: AnnotationId,
    /// Columns it is attached to, in the current schema's ordinals.
    pub sig: ColSig,
    /// The annotation's free text (owned per tuple, as a raw-propagation
    /// system materializes it).
    pub text: String,
}

/// A tuple carrying its raw annotations.
#[derive(Debug, Clone)]
pub struct RawRow {
    /// The data values.
    pub row: Row,
    /// Attached annotations, sorted by id.
    pub anns: Vec<RawAnn>,
}

impl RawRow {
    fn project_anns(&mut self, remap: &dyn Fn(u16) -> Option<u16>) {
        self.anns.retain_mut(|a| {
            let sig = a.sig.remap(remap);
            if sig.is_empty() {
                false
            } else {
                a.sig = sig;
                true
            }
        });
    }

    fn merge_anns(&mut self, other: &[RawAnn]) {
        for a in other {
            match self.anns.binary_search_by_key(&a.id, |x| x.id) {
                Ok(i) => {
                    // Same annotation on both sides: count once, union
                    // its column coverage.
                    self.anns[i].sig = self.anns[i].sig.union(a.sig);
                }
                Err(i) => self.anns.insert(i, a.clone()),
            }
        }
    }
}

/// Executes a plan with raw-annotation propagation.
pub struct RawExecutor<'a> {
    catalog: &'a Catalog,
    store: &'a AnnotationStore,
}

impl<'a> RawExecutor<'a> {
    /// Creates a raw executor.
    pub fn new(catalog: &'a Catalog, store: &'a AnnotationStore) -> Self {
        Self { catalog, store }
    }

    /// Executes a plan to completion.
    pub fn execute(&self, plan: &LogicalPlan) -> Result<Vec<RawRow>> {
        match plan {
            LogicalPlan::IndexScan {
                table, col, value, ..
            } => {
                let t = self.catalog.table(*table)?;
                let rids = t.index_lookup(*col, value).ok_or_else(|| {
                    Error::Execution(format!(
                        "plan expects an index on column {col} of `{}`",
                        t.name()
                    ))
                })?;
                let mut out = Vec::with_capacity(rids.len());
                for &rid in rids {
                    let row = t.get(rid).ok_or_else(|| {
                        Error::Execution(format!("index points at missing row {rid}"))
                    })?;
                    let mut anns: Vec<RawAnn> = self
                        .store
                        .on_row(*table, rid)
                        .iter()
                        .map(|&(id, sig)| {
                            let text = self
                                .store
                                .get(id)
                                .map(|a| a.body.text.clone())
                                .unwrap_or_default();
                            RawAnn { id, sig, text }
                        })
                        .collect();
                    anns.sort_by_key(|a| a.id);
                    out.push(RawRow {
                        row: row.clone(),
                        anns,
                    });
                }
                Ok(out)
            }
            LogicalPlan::Scan { table, .. } => {
                let t = self.catalog.table(*table)?;
                let mut out = Vec::with_capacity(t.len());
                for (rid, row) in t.scan() {
                    let mut anns: Vec<RawAnn> = self
                        .store
                        .on_row(*table, rid)
                        .iter()
                        .map(|&(id, sig)| {
                            let text = self
                                .store
                                .get(id)
                                .map(|a| a.body.text.clone())
                                .unwrap_or_default();
                            RawAnn { id, sig, text }
                        })
                        .collect();
                    anns.sort_by_key(|a| a.id);
                    out.push(RawRow {
                        row: row.clone(),
                        anns,
                    });
                }
                Ok(out)
            }
            LogicalPlan::Filter { input, predicate } => {
                if predicate.uses_summaries() {
                    return Err(Error::Execution(
                        "raw-propagation engine has no summaries to filter on".into(),
                    ));
                }
                let rows = self.execute(input)?;
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    if predicate.satisfied_parts(&r.row, &[])? {
                        out.push(r);
                    }
                }
                Ok(out)
            }
            LogicalPlan::Project {
                input,
                exprs,
                col_map,
                ..
            } => {
                let rows = self.execute(input)?;
                let mut out = Vec::with_capacity(rows.len());
                for mut r in rows {
                    let mut values = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        values.push(e.eval_parts(&r.row, &[])?);
                    }
                    let map = col_map.clone();
                    r.project_anns(&move |c| map.get(c as usize).copied().flatten());
                    out.push(RawRow {
                        row: Row::new(values),
                        anns: r.anns,
                    });
                }
                Ok(out)
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                ..
            } => {
                let l = self.execute(left)?;
                let mut r = self.execute(right)?;
                let left_arity = left.schema().arity();
                let shift = left_arity as u16;
                for rr in &mut r {
                    rr.project_anns(&move |c| Some(c + shift));
                }
                let (equi, residual) =
                    crate::exec::join::split_equi(predicate.as_ref(), left_arity);
                let mut out = Vec::new();
                if equi.is_empty() {
                    for lr in &l {
                        for rr in &r {
                            let row = lr.row.concat(&rr.row);
                            let ok = match &residual {
                                Some(p) => p.satisfied_parts(&row, &[])?,
                                None => true,
                            };
                            if ok {
                                let mut candidate = RawRow {
                                    row,
                                    anns: lr.anns.clone(),
                                };
                                candidate.merge_anns(&rr.anns);
                                out.push(candidate);
                            }
                        }
                    }
                } else {
                    let right_cols: Vec<usize> = equi.iter().map(|&(_, rc)| rc).collect();
                    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(r.len());
                    for (i, rr) in r.iter().enumerate() {
                        if right_cols.iter().any(|&c| rr.row[c].is_null()) {
                            continue;
                        }
                        table
                            .entry(rr.row.group_key(&right_cols))
                            .or_default()
                            .push(i);
                    }
                    let left_cols: Vec<usize> = equi.iter().map(|&(lc, _)| lc).collect();
                    for lr in &l {
                        if left_cols.iter().any(|&c| lr.row[c].is_null()) {
                            continue;
                        }
                        if let Some(matches) = table.get(&lr.row.group_key(&left_cols)) {
                            for &ri in matches {
                                let rr = &r[ri];
                                let row = lr.row.concat(&rr.row);
                                let ok = match &residual {
                                    Some(p) => p.satisfied_parts(&row, &[])?,
                                    None => true,
                                };
                                if ok {
                                    let mut candidate = RawRow {
                                        row,
                                        anns: lr.anns.clone(),
                                    };
                                    candidate.merge_anns(&rr.anns);
                                    out.push(candidate);
                                }
                            }
                        }
                    }
                }
                Ok(out)
            }
            LogicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                ..
            } => {
                let rows = self.execute(input)?;
                self.aggregate(rows, group_cols, aggs)
            }
            LogicalPlan::Distinct { input } => {
                let rows = self.execute(input)?;
                let mut seen: HashMap<Vec<u8>, usize> = HashMap::new();
                let mut out: Vec<RawRow> = Vec::new();
                for r in rows {
                    let all: Vec<usize> = (0..r.row.arity()).collect();
                    let key = r.row.group_key(&all);
                    match seen.get(&key) {
                        Some(&i) => out[i].merge_anns(&r.anns),
                        None => {
                            seen.insert(key, out.len());
                            out.push(r);
                        }
                    }
                }
                Ok(out)
            }
            LogicalPlan::Sort { input, keys } => {
                let rows = self.execute(input)?;
                self.sort(rows, keys)
            }
            LogicalPlan::Limit { input, n } => {
                let mut rows = self.execute(input)?;
                rows.truncate(*n as usize);
                Ok(rows)
            }
        }
    }

    fn aggregate(
        &self,
        rows: Vec<RawRow>,
        group_cols: &[usize],
        aggs: &[AggSpec],
    ) -> Result<Vec<RawRow>> {
        struct Group {
            key_row: Vec<Value>,
            counts: Vec<(i64, f64, Option<Value>, Option<Value>)>,
            carrier: RawRow,
        }
        let mut order: Vec<Vec<u8>> = Vec::new();
        let mut groups: HashMap<Vec<u8>, Group> = HashMap::new();
        for mut r in rows {
            let key = r.row.group_key(group_cols);
            let cols = group_cols.to_vec();
            r.project_anns(&move |c| cols.iter().position(|&g| g == c as usize).map(|p| p as u16));
            let group = match groups.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    order.push(key);
                    v.insert(Group {
                        key_row: group_cols.iter().map(|&c| r.row[c].clone()).collect(),
                        counts: vec![(0, 0.0, None, None); aggs.len()],
                        carrier: RawRow {
                            row: Row::default(),
                            anns: Vec::new(),
                        },
                    })
                }
            };
            for (slot, spec) in group.counts.iter_mut().zip(aggs) {
                let value = spec
                    .arg
                    .as_ref()
                    .map(|e| e.eval_parts(&r.row, &[]))
                    .transpose()?;
                match value {
                    None => slot.0 += 1,
                    Some(v) if !v.is_null() => {
                        slot.0 += 1;
                        if let Some(f) = v.as_f64() {
                            slot.1 += f;
                        }
                        let lt = slot
                            .2
                            .as_ref()
                            .is_none_or(|b| v.sql_cmp(b) == Some(std::cmp::Ordering::Less));
                        if lt {
                            slot.2 = Some(v.clone());
                        }
                        let gt = slot
                            .3
                            .as_ref()
                            .is_none_or(|b| v.sql_cmp(b) == Some(std::cmp::Ordering::Greater));
                        if gt {
                            slot.3 = Some(v);
                        }
                    }
                    _ => {}
                }
            }
            group.carrier.merge_anns(&r.anns);
        }
        let mut out = Vec::with_capacity(order.len());
        for key in order {
            let g = groups.remove(&key).expect("recorded");
            let mut values = g.key_row;
            for (slot, spec) in g.counts.iter().zip(aggs) {
                values.push(match spec.func {
                    AggFunc::Count => Value::Int(slot.0),
                    AggFunc::Sum => {
                        if slot.0 > 0 {
                            Value::Float(slot.1)
                        } else {
                            Value::Null
                        }
                    }
                    AggFunc::Avg => {
                        if slot.0 > 0 {
                            Value::Float(slot.1 / slot.0 as f64)
                        } else {
                            Value::Null
                        }
                    }
                    AggFunc::Min => slot.2.clone().unwrap_or(Value::Null),
                    AggFunc::Max => slot.3.clone().unwrap_or(Value::Null),
                });
            }
            out.push(RawRow {
                row: Row::new(values),
                anns: g.carrier.anns,
            });
        }
        Ok(out)
    }

    fn sort(&self, mut rows: Vec<RawRow>, keys: &[SortKey]) -> Result<Vec<RawRow>> {
        let mut keyed: Vec<(Vec<Value>, RawRow)> = Vec::with_capacity(rows.len());
        for r in rows.drain(..) {
            let mut k = Vec::with_capacity(keys.len());
            for key in keys {
                k.push(key.expr.eval_parts(&r.row, &[])?);
            }
            keyed.push((k, r));
        }
        keyed.sort_by(|(ka, _), (kb, _)| {
            for (i, key) in keys.iter().enumerate() {
                let ord = ka[i].sort_cmp(&kb[i]);
                let ord = if key.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        Ok(keyed.into_iter().map(|(_, r)| r).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_annotations::{AnnotationBody, Target};
    use insightnotes_common::TableId;
    use insightnotes_storage::{Column, DataType, Schema};

    fn setup() -> (Catalog, AnnotationStore, TableId) {
        let mut cat = Catalog::new();
        let id = cat
            .create_table(
                "t",
                Schema::new(vec![
                    Column::new("x", DataType::Int),
                    Column::new("note", DataType::Text),
                ]),
            )
            .unwrap();
        let t = cat.table_mut(id).unwrap();
        let r1 = t
            .insert(Row::new(vec![Value::Int(1), Value::Text("a".into())]))
            .unwrap();
        let r2 = t
            .insert(Row::new(vec![Value::Int(2), Value::Text("b".into())]))
            .unwrap();
        let mut store = AnnotationStore::new();
        store
            .add(
                AnnotationBody::text("whole row note", "u"),
                vec![Target::new(id, r1, ColSig::whole_row(2))],
            )
            .unwrap();
        store
            .add(
                AnnotationBody::text("on note column", "u"),
                vec![Target::new(
                    id,
                    r1,
                    ColSig::single(insightnotes_common::ColumnId(1)),
                )],
            )
            .unwrap();
        store
            .add(
                AnnotationBody::text("shared", "u"),
                vec![
                    Target::new(id, r1, ColSig::whole_row(2)),
                    Target::new(id, r2, ColSig::whole_row(2)),
                ],
            )
            .unwrap();
        (cat, store, id)
    }

    fn scan(id: TableId, cat: &Catalog) -> LogicalPlan {
        LogicalPlan::Scan {
            table: id,
            binding: "t".into(),
            schema: cat.table(id).unwrap().schema().qualify("t"),
        }
    }

    #[test]
    fn scan_attaches_raw_annotations() {
        let (cat, store, id) = setup();
        let rows = RawExecutor::new(&cat, &store)
            .execute(&scan(id, &cat))
            .unwrap();
        assert_eq!(rows[0].anns.len(), 3);
        assert_eq!(rows[1].anns.len(), 1);
        assert_eq!(rows[1].anns[0].text, "shared");
    }

    #[test]
    fn projection_drops_column_scoped_annotations() {
        let (cat, store, id) = setup();
        let plan = LogicalPlan::Project {
            input: Box::new(scan(id, &cat)),
            exprs: vec![crate::expr::SExpr::Column(0)],
            schema: Schema::new(vec![Column::new("x", DataType::Int)]),
            col_map: vec![Some(0), None],
        };
        let rows = RawExecutor::new(&cat, &store).execute(&plan).unwrap();
        // "on note column" drops with the note column; others survive.
        assert_eq!(rows[0].anns.len(), 2);
    }

    #[test]
    fn join_unions_without_duplicating_shared_annotation() {
        let (cat, store, id) = setup();
        // Self-join on x = x: row1 ⋈ row1 carries a shared annotation on
        // both sides; merged list must count it once.
        let plan = LogicalPlan::Join {
            left: Box::new(scan(id, &cat)),
            right: Box::new(scan(id, &cat)),
            predicate: Some(crate::expr::SExpr::Cmp(
                insightnotes_storage::CmpOp::Eq,
                Box::new(crate::expr::SExpr::Column(0)),
                Box::new(crate::expr::SExpr::Column(2)),
            )),
            schema: cat
                .table(id)
                .unwrap()
                .schema()
                .qualify("a")
                .concat(&cat.table(id).unwrap().schema().qualify("b")),
        };
        let rows = RawExecutor::new(&cat, &store).execute(&plan).unwrap();
        let row1 = rows.iter().find(|r| r.row[0] == Value::Int(1)).unwrap();
        assert_eq!(row1.anns.len(), 3, "no duplicate ids after merge");
    }

    #[test]
    fn summary_predicates_are_rejected() {
        let (cat, store, id) = setup();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(id, &cat)),
            predicate: crate::expr::SExpr::SummaryCount {
                instance: insightnotes_common::InstanceId(1),
                component: crate::expr::ComponentSel::Label(0),
            },
        };
        assert!(RawExecutor::new(&cat, &store).execute(&plan).is_err());
    }
}
