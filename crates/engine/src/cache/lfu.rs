//! Least-frequently-used baseline policy.

use crate::cache::{EntryMeta, ReplacementPolicy};

/// Classic LFU: retention score is the access count, with a small recency
/// term breaking ties among equally cold entries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lfu;

impl ReplacementPolicy for Lfu {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn score(&self, entry: &EntryMeta, now: u64) -> f64 {
        let tiebreak = 1.0 / (now.saturating_sub(entry.last_access) + 2) as f64;
        entry.accesses as f64 + tiebreak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::Qid;

    #[test]
    fn fewer_accesses_score_lower() {
        let a = EntryMeta {
            qid: Qid(1),
            size: 10,
            complexity: 1.0,
            inserted: 0,
            last_access: 9,
            accesses: 1,
        };
        let b = EntryMeta { accesses: 5, ..a };
        assert!(Lfu.score(&a, 10) < Lfu.score(&b, 10));
    }

    #[test]
    fn recency_breaks_frequency_ties() {
        let a = EntryMeta {
            qid: Qid(1),
            size: 10,
            complexity: 1.0,
            inserted: 0,
            last_access: 2,
            accesses: 3,
        };
        let b = EntryMeta {
            last_access: 8,
            ..a
        };
        assert!(Lfu.score(&a, 10) < Lfu.score(&b, 10));
    }
}
