//! Least-recently-used baseline policy.

use crate::cache::{EntryMeta, ReplacementPolicy};

/// Classic LRU: retention score is the last-access tick.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lru;

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn score(&self, entry: &EntryMeta, _now: u64) -> f64 {
        entry.last_access as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::Qid;

    #[test]
    fn older_access_scores_lower() {
        let a = EntryMeta {
            qid: Qid(1),
            size: 10,
            complexity: 1.0,
            inserted: 0,
            last_access: 3,
            accesses: 100,
        };
        let b = EntryMeta {
            last_access: 7,
            ..a
        };
        assert!(Lru.score(&a, 10) < Lru.score(&b, 10));
    }
}
