//! The RCO replacement policy (Recency, Complexity, Overhead).
//!
//! The paper's policy weighs three factors when choosing what to keep in
//! the limited zoom-in cache:
//!
//! - **Recency / frequency** — how recently and how often the result has
//!   been referenced by zoom-in operations;
//! - **Complexity** — how expensive the query would be to re-execute on a
//!   cache miss (the planner's cost estimate);
//! - **Overhead** — how much cache space the result occupies.
//!
//! The retention score is `complexity × frequency_boost × recency_decay /
//! size`: an expensive, hot, small result is worth the most; a cheap,
//! cold, bulky one goes first.

use crate::cache::{EntryMeta, ReplacementPolicy};

/// The RCO policy with tunable factor weights.
#[derive(Debug, Clone)]
pub struct Rco {
    /// Exponent applied to the recency decay (1.0 = linear decay).
    pub recency_weight: f64,
    /// Additive boost per past access.
    pub frequency_weight: f64,
}

impl Default for Rco {
    fn default() -> Self {
        Self {
            recency_weight: 1.0,
            frequency_weight: 1.0,
        }
    }
}

impl ReplacementPolicy for Rco {
    fn name(&self) -> &'static str {
        "rco"
    }

    fn score(&self, entry: &EntryMeta, now: u64) -> f64 {
        let age = (now.saturating_sub(entry.last_access) + 1) as f64;
        let recency = 1.0 / age.powf(self.recency_weight);
        let frequency = 1.0 + self.frequency_weight * entry.accesses as f64;
        let size = entry.size.max(1) as f64;
        entry.complexity.max(1.0) * frequency * recency / size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::Qid;

    fn meta(size: u64, complexity: f64, last_access: u64, accesses: u64) -> EntryMeta {
        EntryMeta {
            qid: Qid(1),
            size,
            complexity,
            inserted: 0,
            last_access,
            accesses,
        }
    }

    #[test]
    fn expensive_results_score_higher() {
        let p = Rco::default();
        assert!(p.score(&meta(100, 1000.0, 5, 0), 10) > p.score(&meta(100, 10.0, 5, 0), 10));
    }

    #[test]
    fn smaller_results_score_higher() {
        let p = Rco::default();
        assert!(p.score(&meta(10, 100.0, 5, 0), 10) > p.score(&meta(1000, 100.0, 5, 0), 10));
    }

    #[test]
    fn recent_and_frequent_results_score_higher() {
        let p = Rco::default();
        assert!(p.score(&meta(100, 100.0, 9, 0), 10) > p.score(&meta(100, 100.0, 1, 0), 10));
        assert!(p.score(&meta(100, 100.0, 5, 8), 10) > p.score(&meta(100, 100.0, 5, 0), 10));
    }
}
