//! The disk-based query-result cache behind zoom-in processing.
//!
//! Query results are serialized and "compete with each other over a
//! limited disk-based cache — where they are temporarily kept to serve
//! future zoom-in operations" (paper §2.2). Admission and eviction are
//! controlled by a [`ReplacementPolicy`]; the paper's contribution is the
//! **RCO** policy (Recency, Complexity, Overhead), implemented in
//! [`rco`], with classic [`lru`] and [`lfu`] provided as the ablation
//! baselines experiment E4 compares against.

pub mod lfu;
pub mod lru;
pub mod rco;

pub use lfu::Lfu;
pub use lru::Lru;
pub use rco::Rco;

use insightnotes_common::{Error, LogicalClock, Qid, Result};
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;

/// Metadata a policy scores an entry by.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EntryMeta {
    /// The cached result's query id.
    pub qid: Qid,
    /// Serialized size in bytes (the "Overhead" factor).
    pub size: u64,
    /// Estimated recomputation cost (the "Complexity" factor).
    pub complexity: f64,
    /// Logical tick of insertion.
    pub inserted: u64,
    /// Logical tick of the last zoom-in reference (the "Recency" factor).
    pub last_access: u64,
    /// Number of zoom-in references served.
    pub accesses: u64,
}

/// A cache replacement policy: scores entries; the lowest score is
/// evicted first.
pub trait ReplacementPolicy: Send + Sync {
    /// Policy name (for reports).
    fn name(&self) -> &'static str;
    /// Retention score — higher means keep longer.
    fn score(&self, entry: &EntryMeta, now: u64) -> f64;
}

/// Counters for cache behavior reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Successful `get`s.
    pub hits: u64,
    /// Failed `get`s.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Results rejected at admission (larger than the whole budget).
    pub rejected: u64,
}

/// A byte-budgeted, disk-backed store of serialized query results.
pub struct DiskCache {
    dir: PathBuf,
    budget: u64,
    used: u64,
    entries: HashMap<Qid, EntryMeta>,
    policy: Box<dyn ReplacementPolicy>,
    clock: LogicalClock,
    stats: CacheStats,
}

impl std::fmt::Debug for DiskCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskCache")
            .field("dir", &self.dir)
            .field("budget", &self.budget)
            .field("used", &self.used)
            .field("entries", &self.entries.len())
            .field("policy", &self.policy.name())
            .finish()
    }
}

impl DiskCache {
    /// Creates a cache rooted at `dir` (created if missing) with a byte
    /// budget and a policy.
    pub fn new(dir: PathBuf, budget: u64, policy: Box<dyn ReplacementPolicy>) -> Result<Self> {
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            budget,
            used: 0,
            entries: HashMap::new(),
            policy,
            clock: LogicalClock::new(),
            stats: CacheStats::default(),
        })
    }

    fn path_of(&self, qid: Qid) -> PathBuf {
        self.dir.join(format!("q{}.bin", qid.raw()))
    }

    /// Admits a serialized result. Oversized payloads (larger than the
    /// whole budget) are rejected rather than flushing the cache.
    pub fn put(&mut self, qid: Qid, payload: &[u8], complexity: f64) -> Result<bool> {
        let size = payload.len() as u64;
        if size > self.budget {
            self.stats.rejected += 1;
            return Ok(false);
        }
        if let Some(old) = self.entries.remove(&qid) {
            self.used -= old.size;
            let _ = fs::remove_file(self.path_of(qid));
        }
        while self.used + size > self.budget {
            self.evict_one()?;
        }
        fs::write(self.path_of(qid), payload)?;
        let now = self.clock.tick();
        self.used += size;
        self.entries.insert(
            qid,
            EntryMeta {
                qid,
                size,
                complexity,
                inserted: now,
                last_access: now,
                accesses: 0,
            },
        );
        Ok(true)
    }

    /// Fetches a cached result, bumping its recency and frequency.
    pub fn get(&mut self, qid: Qid) -> Result<Option<Vec<u8>>> {
        if let Some(meta) = self.entries.get_mut(&qid) {
            meta.last_access = self.clock.tick();
            meta.accesses += 1;
            self.stats.hits += 1;
            let bytes = fs::read(self.path_of(qid))?;
            Ok(Some(bytes))
        } else {
            self.stats.misses += 1;
            Ok(None)
        }
    }

    /// True when the cache holds a result for `qid` (no stat bump).
    pub fn contains(&self, qid: Qid) -> bool {
        self.entries.contains_key(&qid)
    }

    /// Removes an entry.
    pub fn remove(&mut self, qid: Qid) -> Result<bool> {
        match self.entries.remove(&qid) {
            Some(meta) => {
                self.used -= meta.size;
                let _ = fs::remove_file(self.path_of(qid));
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn evict_one(&mut self) -> Result<()> {
        let now = self.clock.now();
        let victim = self
            .entries
            .values()
            .min_by(|a, b| {
                self.policy
                    .score(a, now)
                    .partial_cmp(&self.policy.score(b, now))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|m| m.qid)
            .ok_or_else(|| Error::Execution("cache eviction with no entries".into()))?;
        self.remove(victim)?;
        self.stats.evictions += 1;
        Ok(())
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently used.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// The policy in use.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

impl Drop for DiskCache {
    fn drop(&mut self) {
        // Best-effort cleanup of the cache directory's entry files.
        for qid in self.entries.keys() {
            let _ = fs::remove_file(self.dir.join(format!("q{}.bin", qid.raw())));
        }
        let _ = fs::remove_dir(&self.dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "insightnotes-cache-test-{}-{}",
            std::process::id(),
            tag
        ))
    }

    fn cache(tag: &str, budget: u64, policy: Box<dyn ReplacementPolicy>) -> DiskCache {
        DiskCache::new(temp_dir(tag), budget, policy).unwrap()
    }

    #[test]
    fn put_get_round_trip() {
        let mut c = cache("roundtrip", 1024, Box::new(Lru));
        assert!(c.put(Qid(1), b"hello", 10.0).unwrap());
        assert_eq!(c.get(Qid(1)).unwrap().unwrap(), b"hello");
        assert_eq!(c.get(Qid(2)).unwrap(), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn oversized_payloads_rejected() {
        let mut c = cache("oversize", 4, Box::new(Lru));
        assert!(!c.put(Qid(1), b"way too big", 1.0).unwrap());
        assert_eq!(c.stats().rejected, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn budget_is_enforced_with_eviction() {
        let mut c = cache("budget", 10, Box::new(Lru));
        c.put(Qid(1), b"aaaa", 1.0).unwrap();
        c.put(Qid(2), b"bbbb", 1.0).unwrap();
        // Third entry exceeds the budget; LRU evicts qid 1.
        c.put(Qid(3), b"cccc", 1.0).unwrap();
        assert!(!c.contains(Qid(1)));
        assert!(c.contains(Qid(2)) && c.contains(Qid(3)));
        assert_eq!(c.stats().evictions, 1);
        assert!(c.used_bytes() <= 10);
    }

    #[test]
    fn lru_keeps_recently_accessed() {
        let mut c = cache("lru", 10, Box::new(Lru));
        c.put(Qid(1), b"aaaa", 1.0).unwrap();
        c.put(Qid(2), b"bbbb", 1.0).unwrap();
        c.get(Qid(1)).unwrap(); // refresh 1
        c.put(Qid(3), b"cccc", 1.0).unwrap();
        assert!(c.contains(Qid(1)));
        assert!(!c.contains(Qid(2)));
    }

    #[test]
    fn lfu_keeps_frequently_accessed() {
        let mut c = cache("lfu", 10, Box::new(Lfu));
        c.put(Qid(1), b"aaaa", 1.0).unwrap();
        c.put(Qid(2), b"bbbb", 1.0).unwrap();
        for _ in 0..5 {
            c.get(Qid(1)).unwrap();
        }
        c.get(Qid(2)).unwrap();
        c.put(Qid(3), b"cccc", 1.0).unwrap();
        assert!(c.contains(Qid(1)));
        assert!(!c.contains(Qid(2)));
    }

    #[test]
    fn rco_prefers_expensive_small_entries() {
        let mut c = cache("rco", 12, Box::new(Rco::default()));
        // Cheap-to-recompute big result vs expensive small one.
        c.put(Qid(1), b"aaaaaaaa", 1.0).unwrap(); // 8 bytes, cheap
        c.put(Qid(2), b"bb", 1_000.0).unwrap(); // 2 bytes, expensive
        c.put(Qid(3), b"cccc", 50.0).unwrap(); // forces one eviction
        assert!(!c.contains(Qid(1)), "cheap big entry evicted first");
        assert!(c.contains(Qid(2)));
    }

    #[test]
    fn reinsert_replaces_previous_bytes() {
        let mut c = cache("reinsert", 16, Box::new(Lru));
        c.put(Qid(1), b"aaaa", 1.0).unwrap();
        c.put(Qid(1), b"bbbbbbbb", 1.0).unwrap();
        assert_eq!(c.get(Qid(1)).unwrap().unwrap(), b"bbbbbbbb");
        assert_eq!(c.used_bytes(), 8);
        assert_eq!(c.len(), 1);
    }
}
