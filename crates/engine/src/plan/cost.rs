//! Plan cost estimation.
//!
//! The RCO cache policy weighs a cached result by how expensive it would
//! be to recompute (the "Complexity" factor). This estimator produces
//! that number: a unit-less cost from table cardinalities and standard
//! textbook selectivity guesses. It does not drive plan choice — the
//! planner is rule-based — so coarse is fine; it only needs to rank
//! queries by relative expense.

use crate::plan::logical::LogicalPlan;
use insightnotes_storage::Catalog;

/// Default selectivity assumed for a filter predicate.
const FILTER_SELECTIVITY: f64 = 0.3;
/// Default selectivity assumed for a join predicate.
const JOIN_SELECTIVITY: f64 = 0.05;
/// Per-row cost multiplier for summary-merge work at joins and groups.
const MERGE_WEIGHT: f64 = 2.0;

/// Estimated cost and output cardinality of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Unit-less work estimate.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
}

/// Estimates the execution cost of a plan against current table sizes.
pub fn estimate_cost(plan: &LogicalPlan, catalog: &Catalog) -> CostEstimate {
    match plan {
        LogicalPlan::Scan { table, .. } => {
            let rows = catalog
                .table(*table)
                .map_or(0, insightnotes_storage::Table::len) as f64;
            CostEstimate { cost: rows, rows }
        }
        LogicalPlan::IndexScan { table, .. } => {
            // Point lookups touch a small fraction of the table.
            let rows = catalog
                .table(*table)
                .map_or(0, insightnotes_storage::Table::len) as f64;
            let hit = (rows / 10.0).clamp(1.0, rows.max(1.0));
            CostEstimate {
                cost: hit + 1.0,
                rows: hit,
            }
        }
        LogicalPlan::Filter { input, .. } => {
            let c = estimate_cost(input, catalog);
            CostEstimate {
                cost: c.cost + c.rows,
                rows: (c.rows * FILTER_SELECTIVITY).max(1.0),
            }
        }
        LogicalPlan::Project { input, .. } => {
            let c = estimate_cost(input, catalog);
            CostEstimate {
                cost: c.cost + c.rows,
                rows: c.rows,
            }
        }
        LogicalPlan::Join {
            left,
            right,
            predicate,
            ..
        } => {
            let l = estimate_cost(left, catalog);
            let r = estimate_cost(right, catalog);
            let out = if predicate.is_some() {
                (l.rows * r.rows * JOIN_SELECTIVITY).max(1.0)
            } else {
                l.rows * r.rows
            };
            CostEstimate {
                // Hash-join style: build + probe + merge work on outputs.
                cost: l.cost + r.cost + l.rows + r.rows + out * MERGE_WEIGHT,
                rows: out,
            }
        }
        LogicalPlan::Aggregate {
            input, group_cols, ..
        } => {
            let c = estimate_cost(input, catalog);
            let groups = if group_cols.is_empty() {
                1.0
            } else {
                (c.rows / 10.0).max(1.0)
            };
            CostEstimate {
                cost: c.cost + c.rows * MERGE_WEIGHT,
                rows: groups,
            }
        }
        LogicalPlan::Distinct { input } => {
            let c = estimate_cost(input, catalog);
            CostEstimate {
                cost: c.cost + c.rows * MERGE_WEIGHT,
                rows: (c.rows * 0.5).max(1.0),
            }
        }
        LogicalPlan::Sort { input, .. } => {
            let c = estimate_cost(input, catalog);
            let n = c.rows.max(2.0);
            CostEstimate {
                cost: c.cost + n * n.log2(),
                rows: c.rows,
            }
        }
        LogicalPlan::Limit { input, n } => {
            let c = estimate_cost(input, catalog);
            CostEstimate {
                cost: c.cost,
                rows: c.rows.min(*n as f64),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_storage::{Column, DataType, Row, Schema, Value};

    fn catalog_with_rows(n: usize) -> (Catalog, insightnotes_common::TableId) {
        let mut cat = Catalog::new();
        let id = cat
            .create_table("t", Schema::new(vec![Column::new("x", DataType::Int)]))
            .unwrap();
        let t = cat.table_mut(id).unwrap();
        for i in 0..n {
            t.insert(Row::new(vec![Value::Int(i as i64)])).unwrap();
        }
        (cat, id)
    }

    fn scan(id: insightnotes_common::TableId) -> LogicalPlan {
        LogicalPlan::Scan {
            table: id,
            binding: "t".into(),
            schema: Schema::new(vec![Column::new("x", DataType::Int)]).qualify("t"),
        }
    }

    #[test]
    fn scan_cost_tracks_cardinality() {
        let (cat, id) = catalog_with_rows(100);
        let c = estimate_cost(&scan(id), &cat);
        assert_eq!(c.rows, 100.0);
        assert_eq!(c.cost, 100.0);
    }

    #[test]
    fn join_costs_more_than_its_inputs() {
        let (cat, id) = catalog_with_rows(100);
        let join = LogicalPlan::Join {
            left: Box::new(scan(id)),
            right: Box::new(scan(id)),
            predicate: Some(crate::expr::SExpr::Literal(Value::Bool(true))),
            schema: Schema::default(),
        };
        let c = estimate_cost(&join, &cat);
        assert!(c.cost > 200.0);
        assert!(c.rows >= 1.0);
    }

    #[test]
    fn limit_caps_rows() {
        let (cat, id) = catalog_with_rows(100);
        let plan = LogicalPlan::Limit {
            input: Box::new(scan(id)),
            n: 5,
        };
        assert_eq!(estimate_cost(&plan, &cat).rows, 5.0);
    }
}
