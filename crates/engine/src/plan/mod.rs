//! Logical plans, the binder/planner, and cost estimation.

pub mod builder;
pub mod cost;
pub mod logical;

pub use builder::Planner;
pub use cost::{estimate_cost, CostEstimate};
pub use logical::{AggSpec, LogicalPlan, SortKey};
