//! The logical plan tree.
//!
//! Plans are produced by the [`Planner`](crate::plan::Planner) and
//! consumed by the executor. The planner canonicalizes every query into
//! the shape the paper's Theorems 1–2 require — un-needed columns (and
//! with them, their annotations' effects on summary objects) are projected
//! out *below* every merge-performing operator — so equivalent queries
//! propagate identical summaries regardless of how they were written.

use crate::expr::SExpr;
use insightnotes_common::TableId;
use insightnotes_sql::AggFunc;
use insightnotes_storage::{Schema, Value};
use std::fmt::Write as _;

/// One aggregate computation inside an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Its argument (`None` only for `COUNT(*)`).
    pub arg: Option<SExpr>,
}

/// One sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    /// The sort expression (over the node's input schema).
    pub expr: SExpr,
    /// True for descending order.
    pub desc: bool,
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan; attaches each row's summary objects.
    Scan {
        /// The table to scan.
        table: TableId,
        /// The binding (alias) the columns are visible under.
        binding: String,
        /// Qualified schema.
        schema: Schema,
    },
    /// Hash-index point lookup (`col = const` against an indexed column);
    /// attaches summary objects exactly like a scan.
    IndexScan {
        /// The table to probe.
        table: TableId,
        /// The binding (alias) the columns are visible under.
        binding: String,
        /// Qualified schema.
        schema: Schema,
        /// Indexed column ordinal.
        col: u16,
        /// Probe value.
        value: Value,
    },
    /// Row filter. Summaries pass through unchanged (Figure 2 step 2).
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// The predicate.
        predicate: SExpr,
    },
    /// Projection / expression computation. Removes the effect of
    /// annotations attached only to dropped columns (Figure 2 step 1).
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Output expressions, one per output column.
        exprs: Vec<SExpr>,
        /// Output schema.
        schema: Schema,
        /// For each input column, its output ordinal (`None` = dropped).
        /// Drives the summary-signature remap.
        col_map: Vec<Option<u16>>,
    },
    /// Inner join. Merges the two sides' summary objects without double
    /// counting (Figure 2 step 3).
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Join predicate over the concatenated schema.
        predicate: Option<SExpr>,
        /// Concatenated schema.
        schema: Schema,
    },
    /// Grouping + aggregation. Summaries of grouped tuples are projected
    /// onto the grouping columns, then merged per group.
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Grouping column ordinals (input schema).
        group_cols: Vec<usize>,
        /// Aggregates to compute.
        aggs: Vec<AggSpec>,
        /// Output schema: grouping columns then aggregate results.
        schema: Schema,
    },
    /// Duplicate elimination; summaries of eliminated duplicates merge
    /// into the surviving tuple.
    Distinct {
        /// Input plan.
        input: Box<LogicalPlan>,
    },
    /// Sort (stable).
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Sort keys, major first.
        keys: Vec<SortKey>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Maximum rows.
        n: u64,
    },
}

impl LogicalPlan {
    /// The plan's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. }
            | LogicalPlan::IndexScan { schema, .. }
            | LogicalPlan::Project { schema, .. }
            | LogicalPlan::Join { schema, .. }
            | LogicalPlan::Aggregate { schema, .. } => schema,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// The operator's display name.
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::Scan { .. } => "Scan",
            LogicalPlan::IndexScan { .. } => "IndexScan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Join { .. } => "Join",
            LogicalPlan::Aggregate { .. } => "Aggregate",
            LogicalPlan::Distinct { .. } => "Distinct",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::Limit { .. } => "Limit",
        }
    }

    /// Child plans.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::IndexScan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Distinct { input }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Indented multi-line rendering (the `EXPLAIN` view).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let detail = match self {
            LogicalPlan::Scan {
                binding, schema, ..
            } => {
                format!("{binding} {schema}")
            }
            LogicalPlan::IndexScan {
                binding,
                col,
                value,
                ..
            } => format!("{binding} col{col} = {value}"),
            LogicalPlan::Filter { predicate, .. } => format!("{predicate:?}"),
            LogicalPlan::Project { schema, .. } => format!("→ {schema}"),
            LogicalPlan::Join { predicate, .. } => match predicate {
                Some(p) => format!("on {p:?}"),
                None => "cross".to_string(),
            },
            LogicalPlan::Aggregate {
                group_cols, aggs, ..
            } => format!("group {group_cols:?}, {} aggs", aggs.len()),
            LogicalPlan::Distinct { .. } => String::new(),
            LogicalPlan::Sort { keys, .. } => format!("{} keys", keys.len()),
            LogicalPlan::Limit { n, .. } => n.to_string(),
        };
        let _ = writeln!(out, "{pad}{} {detail}", self.name());
        for child in self.children() {
            child.explain_into(out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_storage::{Column, DataType};

    fn scan() -> LogicalPlan {
        LogicalPlan::Scan {
            table: TableId(1),
            binding: "r".into(),
            schema: Schema::new(vec![Column::new("a", DataType::Int)]).qualify("r"),
        }
    }

    #[test]
    fn schema_passes_through_transparent_nodes() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Distinct {
                input: Box::new(scan()),
            }),
            n: 5,
        };
        assert_eq!(plan.schema().arity(), 1);
        assert_eq!(plan.name(), "Limit");
    }

    #[test]
    fn explain_renders_the_tree() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: SExpr::Literal(insightnotes_storage::Value::Bool(true)),
        };
        let text = plan.explain();
        assert!(text.starts_with("Filter"));
        assert!(text.contains("  Scan r"));
    }

    #[test]
    fn children_of_join_are_both_sides() {
        let join = LogicalPlan::Join {
            left: Box::new(scan()),
            right: Box::new(scan()),
            predicate: None,
            schema: Schema::default(),
        };
        assert_eq!(join.children().len(), 2);
    }
}
