//! The binder / planner.
//!
//! Turns a parsed `SELECT` into a [`LogicalPlan`], canonicalizing to the
//! shape the paper's propagation theorems require:
//!
//! 1. **Single-table predicates** are pushed to filters directly above the
//!    scans (Figure 2 step 2 — selection leaves summaries untouched).
//! 2. **Project-before-merge** (Theorems 1–2 of the full paper): each scan
//!    is projected down to the columns the rest of the query needs
//!    *before* any join, so the effects of annotations on un-needed
//!    columns are removed before summary objects merge. This is what
//!    makes equivalent formulations of a query propagate byte-identical
//!    summaries.
//! 3. **Summary-based predicates** (`SUMMARY_COUNT(...)`) are evaluated
//!    after all joins, over the fully merged objects, giving them a
//!    deterministic reading independent of join order.

use crate::expr::{ComponentSel, SExpr};
use crate::plan::logical::{AggSpec, LogicalPlan, SortKey};
use insightnotes_common::{Error, Result};
use insightnotes_sql::{
    AggFunc, BinArith, BinCmp, ColumnRef, Expr, Literal, SelectItem, SelectStmt,
};
use insightnotes_storage::{ArithOp, Catalog, CmpOp, Column, DataType, Schema, Value};
use insightnotes_summaries::{SummaryKind, SummaryRegistry};

/// Binds statements against a catalog and summary registry.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    registry: &'a SummaryRegistry,
}

impl<'a> Planner<'a> {
    /// Creates a planner.
    pub fn new(catalog: &'a Catalog, registry: &'a SummaryRegistry) -> Self {
        Self { catalog, registry }
    }

    /// Plans a SELECT statement.
    pub fn plan_select(&self, stmt: &SelectStmt) -> Result<LogicalPlan> {
        if stmt.from.is_empty() {
            return Err(Error::Parse("SELECT requires a FROM clause".into()));
        }

        // -- bind FROM entries ------------------------------------------
        let mut scans: Vec<ScanInfo> = Vec::with_capacity(stmt.from.len());
        for tref in &stmt.from {
            let binding = tref.binding().to_ascii_lowercase();
            if scans.iter().any(|s| s.binding == binding) {
                return Err(Error::Catalog(format!(
                    "duplicate table binding `{binding}`"
                )));
            }
            let id = self.catalog.table_id(&tref.table)?;
            let schema = self.catalog.table(id)?.schema().qualify(&binding);
            scans.push(ScanInfo {
                table: id,
                binding,
                schema,
            });
        }

        // -- flatten predicates into conjuncts ---------------------------
        let mut conjuncts: Vec<Expr> = Vec::new();
        for on in &stmt.join_on {
            split_conjuncts(on, &mut conjuncts);
        }
        if let Some(w) = &stmt.where_clause {
            split_conjuncts(w, &mut conjuncts);
        }

        // -- determine needed columns per scan ---------------------------
        let wildcard = stmt.items.iter().any(|i| matches!(i, SelectItem::Wildcard));
        let has_agg = stmt
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Aggregate { .. }));
        if wildcard && (has_agg || !stmt.group_by.is_empty()) {
            return Err(Error::Type(
                "`*` cannot be combined with aggregates or GROUP BY".into(),
            ));
        }

        // `needed`: the column's *value* must survive to some operator
        // (predicates, sort keys, output). `output_needed`: the column is
        // part of the query's output, so annotations attached to it
        // propagate. Per the paper's Figure 2, a join-only column like
        // `s.x` keeps its value through the join but has its annotations'
        // effects removed at the leaf — merges must only ever see
        // annotations of output attributes (Theorems 1–2).
        let mut needed: Vec<Vec<bool>> = scans
            .iter()
            .map(|s| vec![wildcard; s.schema.arity()])
            .collect();
        let mut output_needed = needed.clone();
        let mut refs: Vec<ColumnRef> = Vec::new();
        let mut output_refs: Vec<ColumnRef> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {}
                SelectItem::Expr { expr, .. } => collect_refs(expr, &mut output_refs),
                SelectItem::Aggregate { arg, .. } => {
                    if let Some(a) = arg {
                        collect_refs(a, &mut refs);
                    }
                }
            }
        }
        output_refs.extend(stmt.group_by.iter().cloned());
        for c in &conjuncts {
            collect_refs(c, &mut refs);
        }
        // ORDER BY may reference output aliases (e.g. `ORDER BY n` for
        // `COUNT(*) AS n`) that resolve against no scan; such refs are
        // validated later when the sort keys bind against the output
        // schema, so unknown names are tolerated here.
        for k in &stmt.order_by {
            let mut order_refs = Vec::new();
            collect_refs(&k.expr, &mut order_refs);
            for r in order_refs {
                if let Ok((scan_idx, col)) = resolve_ref(&scans, &r) {
                    needed[scan_idx][col] = true;
                }
            }
        }
        for r in &output_refs {
            let (scan_idx, col) = resolve_ref(&scans, r)?;
            needed[scan_idx][col] = true;
            output_needed[scan_idx][col] = true;
        }
        for r in &refs {
            let (scan_idx, col) = resolve_ref(&scans, r)?;
            needed[scan_idx][col] = true;
        }

        // -- classify conjuncts ------------------------------------------
        // placement: Some(i) = single scan i, None = multi-scan / summary.
        struct PendingConjunct {
            expr: Expr,
            scan_set: Vec<usize>,
            summary: bool,
        }
        let mut pending: Vec<PendingConjunct> = Vec::with_capacity(conjuncts.len());
        for c in conjuncts {
            let mut crefs = Vec::new();
            collect_refs(&c, &mut crefs);
            let mut scan_set = Vec::new();
            for r in &crefs {
                let (i, _) = resolve_ref(&scans, r)?;
                if !scan_set.contains(&i) {
                    scan_set.push(i);
                }
            }
            scan_set.sort_unstable();
            pending.push(PendingConjunct {
                summary: uses_summary(&c),
                expr: c,
                scan_set,
            });
        }

        // -- per-scan working plans: scan → filter → project -------------
        let mut working: Vec<LogicalPlan> = Vec::with_capacity(scans.len());
        let mut working_schemas: Vec<Schema> = Vec::with_capacity(scans.len());
        for (i, scan) in scans.iter().enumerate() {
            // Single-scan, non-summary conjuncts bind right above the
            // scan (before projection, so their columns need not survive).
            let mut mine: Vec<SExpr> = Vec::new();
            let mut kept = Vec::new();
            for pc in pending.drain(..) {
                if !pc.summary && pc.scan_set == [i] {
                    mine.push(self.bind_expr(&pc.expr, &scan.schema)?);
                } else {
                    kept.push(pc);
                }
            }
            pending = kept;

            // Access path: the first `col = const` conjunct on an indexed
            // column turns the scan into an index probe; the rest filter.
            let table_ref = self.catalog.table(scan.table)?;
            let probe = mine
                .iter()
                .position(|p| index_probe(p).is_some_and(|(c, _)| table_ref.has_index(c)));
            let mut plan = match probe {
                Some(pos) => {
                    let probe_pred = mine.remove(pos);
                    let (col, value) = index_probe(&probe_pred).expect("matched above");
                    LogicalPlan::IndexScan {
                        table: scan.table,
                        binding: scan.binding.clone(),
                        schema: scan.schema.clone(),
                        col,
                        value,
                    }
                }
                None => LogicalPlan::Scan {
                    table: scan.table,
                    binding: scan.binding.clone(),
                    schema: scan.schema.clone(),
                },
            };
            for predicate in mine {
                plan = LogicalPlan::Filter {
                    input: Box::new(plan),
                    predicate,
                };
            }
            // Project-before-merge: keep the columns the rest of the
            // query still reads, but let only *output* columns keep their
            // annotations (Figure 2 step 1: s.x's value survives for the
            // join while its annotations' effects are removed now).
            let keep: Vec<usize> = (0..scan.schema.arity()).filter(|&c| needed[i][c]).collect();
            let all_output = keep.iter().all(|&c| output_needed[i][c]);
            if keep.len() < scan.schema.arity() || !all_output {
                let schema = scan.schema.project(&keep);
                let col_map: Vec<Option<u16>> = (0..scan.schema.arity())
                    .map(|c| {
                        if output_needed[i][c] {
                            keep.iter().position(|&k| k == c).map(|p| p as u16)
                        } else {
                            None
                        }
                    })
                    .collect();
                let exprs = keep.iter().map(|&c| SExpr::Column(c)).collect();
                plan = LogicalPlan::Project {
                    input: Box::new(plan),
                    exprs,
                    schema: schema.clone(),
                    col_map,
                };
                working_schemas.push(schema);
            } else {
                working_schemas.push(scan.schema.clone());
            }
            working.push(plan);
        }

        // -- left-deep join tree ------------------------------------------
        let mut iter = working.into_iter();
        let mut plan = iter.next().expect("at least one scan");
        let mut combined = working_schemas[0].clone();
        let mut included = vec![0usize];
        for (i, right) in iter.enumerate() {
            let right_idx = i + 1;
            combined = combined.concat(&working_schemas[right_idx]);
            included.push(right_idx);
            // Attach every non-summary conjunct now fully covered.
            let mut preds: Vec<SExpr> = Vec::new();
            let mut kept = Vec::new();
            for pc in pending.drain(..) {
                if !pc.summary && pc.scan_set.iter().all(|s| included.contains(s)) {
                    preds.push(self.bind_expr(&pc.expr, &combined)?);
                } else {
                    kept.push(pc);
                }
            }
            pending = kept;
            let predicate = preds
                .into_iter()
                .reduce(|a, b| SExpr::And(Box::new(a), Box::new(b)));
            plan = LogicalPlan::Join {
                left: Box::new(plan),
                right: Box::new(right),
                predicate,
                schema: combined.clone(),
            };
        }

        // -- residual + summary predicates after all joins ----------------
        for pc in pending {
            if !pc.scan_set.iter().all(|s| included.contains(s)) {
                return Err(Error::Catalog(
                    "predicate references a table not in FROM".into(),
                ));
            }
            let predicate = self.bind_expr(&pc.expr, &combined)?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // -- aggregation ---------------------------------------------------
        let (mut plan, pre_output_schema, out_exprs, out_schema, col_map) =
            if has_agg || !stmt.group_by.is_empty() {
                self.plan_aggregate(plan, &combined, stmt)?
            } else {
                if stmt.having.is_some() {
                    return Err(Error::Type("HAVING requires GROUP BY or aggregates".into()));
                }
                let (exprs, schema, col_map) = self.plan_projection(&combined, stmt)?;
                (plan, combined.clone(), exprs, schema, col_map)
            };

        // HAVING filters groups over the aggregate output (group columns
        // by name, aggregates by alias or default name). Summaries pass
        // through unchanged, like any selection.
        if let Some(having) = &stmt.having {
            let predicate = self.bind_expr(having, &pre_output_schema)?;
            plan = LogicalPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // -- ORDER BY: prefer binding on the output schema ----------------
        let mut sort_below: Vec<SortKey> = Vec::new();
        let mut sort_above: Vec<SortKey> = Vec::new();
        if !stmt.order_by.is_empty() {
            let all_above: Result<Vec<SortKey>> = stmt
                .order_by
                .iter()
                .map(|k| {
                    Ok(SortKey {
                        expr: self.bind_expr(&k.expr, &out_schema)?,
                        desc: k.desc,
                    })
                })
                .collect();
            match all_above {
                Ok(keys) => sort_above = keys,
                Err(_) => {
                    for k in &stmt.order_by {
                        sort_below.push(SortKey {
                            expr: self.bind_expr(&k.expr, &pre_output_schema)?,
                            desc: k.desc,
                        });
                    }
                }
            }
        }
        if !sort_below.is_empty() {
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys: sort_below,
            };
        }

        // -- final projection ----------------------------------------------
        let identity = out_exprs
            .iter()
            .enumerate()
            .all(|(i, e)| matches!(e, SExpr::Column(c) if *c == i))
            && out_exprs.len() == pre_output_schema.arity();
        if !identity {
            plan = LogicalPlan::Project {
                input: Box::new(plan),
                exprs: out_exprs,
                schema: out_schema,
                col_map,
            };
        }

        if stmt.distinct {
            plan = LogicalPlan::Distinct {
                input: Box::new(plan),
            };
        }
        if !sort_above.is_empty() {
            plan = LogicalPlan::Sort {
                input: Box::new(plan),
                keys: sort_above,
            };
        }
        if let Some(n) = stmt.limit {
            plan = LogicalPlan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    /// Plans the projection list of a non-aggregate query. Returns the
    /// output expressions, schema, and the input→output column map that
    /// drives summary projection.
    #[allow(clippy::type_complexity)]
    fn plan_projection(
        &self,
        input: &Schema,
        stmt: &SelectStmt,
    ) -> Result<(Vec<SExpr>, Schema, Vec<Option<u16>>)> {
        let mut exprs: Vec<SExpr> = Vec::new();
        let mut cols: Vec<Column> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in input.columns().iter().enumerate() {
                        exprs.push(SExpr::Column(i));
                        cols.push(c.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = self.bind_expr(expr, input)?;
                    let col =
                        self.output_column(expr, &bound, alias.as_deref(), input, exprs.len());
                    exprs.push(bound);
                    cols.push(col);
                }
                SelectItem::Aggregate { .. } => {
                    return Err(Error::Type(
                        "aggregate without GROUP BY requires all items to be aggregates".into(),
                    ))
                }
            }
        }
        let schema = Schema::new(cols);
        let col_map = build_col_map(input.arity(), &exprs);
        Ok((exprs, schema, col_map))
    }

    /// Plans GROUP BY + aggregates. Returns the (aggregate) plan, the
    /// aggregate output schema, and the final projection pieces.
    #[allow(clippy::type_complexity)]
    fn plan_aggregate(
        &self,
        input_plan: LogicalPlan,
        input: &Schema,
        stmt: &SelectStmt,
    ) -> Result<(LogicalPlan, Schema, Vec<SExpr>, Schema, Vec<Option<u16>>)> {
        // Grouping columns.
        let mut group_cols: Vec<usize> = Vec::new();
        for g in &stmt.group_by {
            let ord = input.resolve(g.qualifier.as_deref(), &g.name)?;
            if !group_cols.contains(&ord) {
                group_cols.push(ord);
            }
        }

        // Aggregates in select-list order.
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut agg_cols: Vec<Column> = Vec::new();
        // Maps each select item to its ordinal in the aggregate output.
        let mut item_source: Vec<usize> = Vec::new();
        let mut item_alias: Vec<Option<String>> = Vec::new();
        for item in &stmt.items {
            match item {
                SelectItem::Wildcard => unreachable!("checked by caller"),
                SelectItem::Expr { expr, alias } => {
                    // Must be a grouping column.
                    let Expr::Column(cref) = expr else {
                        return Err(Error::Type(
                            "non-aggregate SELECT items must be GROUP BY columns".into(),
                        ));
                    };
                    let ord = input.resolve(cref.qualifier.as_deref(), &cref.name)?;
                    let pos = group_cols.iter().position(|&g| g == ord).ok_or_else(|| {
                        Error::Type(format!("column `{cref}` must appear in GROUP BY"))
                    })?;
                    item_source.push(pos);
                    item_alias.push(alias.clone());
                }
                SelectItem::Aggregate { func, arg, alias } => {
                    let bound = arg.as_ref().map(|a| self.bind_expr(a, input)).transpose()?;
                    let dtype = agg_output_type(*func, &bound, input);
                    let name = alias
                        .clone()
                        .unwrap_or_else(|| agg_default_name(*func, aggs.len()));
                    agg_cols.push(Column::new(name, dtype));
                    item_source.push(group_cols.len() + aggs.len());
                    item_alias.push(None); // name already applied
                    aggs.push(AggSpec {
                        func: *func,
                        arg: bound,
                    });
                }
            }
        }

        // Aggregate output schema: group columns then aggregate columns.
        let mut out_cols: Vec<Column> = group_cols
            .iter()
            .map(|&g| input.columns()[g].clone())
            .collect();
        out_cols.extend(agg_cols);
        let agg_schema = Schema::new(out_cols);

        let plan = LogicalPlan::Aggregate {
            input: Box::new(input_plan),
            group_cols: group_cols.clone(),
            aggs,
            schema: agg_schema.clone(),
        };

        // Final projection reorders the aggregate output to select order.
        let mut exprs = Vec::with_capacity(item_source.len());
        let mut cols = Vec::with_capacity(item_source.len());
        for (i, &src) in item_source.iter().enumerate() {
            exprs.push(SExpr::Column(src));
            let mut col = agg_schema.columns()[src].clone();
            if let Some(alias) = &item_alias[i] {
                col = Column::new(alias.clone(), col.dtype);
            }
            cols.push(col);
        }
        let out_schema = Schema::new(cols);
        let col_map = build_col_map(agg_schema.arity(), &exprs);
        Ok((plan, agg_schema, exprs, out_schema, col_map))
    }

    fn output_column(
        &self,
        expr: &Expr,
        _bound: &SExpr,
        alias: Option<&str>,
        input: &Schema,
        ordinal: usize,
    ) -> Column {
        if let Some(a) = alias {
            let dtype = infer_type(expr, input).unwrap_or(DataType::Float);
            return Column::new(a, dtype);
        }
        if let Expr::Column(cref) = expr {
            if let Ok(ord) = input.resolve(cref.qualifier.as_deref(), &cref.name) {
                return input.columns()[ord].clone();
            }
        }
        let dtype = infer_type(expr, input).unwrap_or(DataType::Float);
        Column::new(format!("expr{ordinal}"), dtype)
    }

    /// Binds an unbound expression against a schema.
    pub fn bind_expr(&self, expr: &Expr, schema: &Schema) -> Result<SExpr> {
        Ok(match expr {
            Expr::Column(cref) => {
                SExpr::Column(schema.resolve(cref.qualifier.as_deref(), &cref.name)?)
            }
            Expr::Literal(lit) => SExpr::Literal(literal_to_value(lit)),
            Expr::Cmp(op, l, r) => SExpr::Cmp(
                cmp_op(*op),
                Box::new(self.bind_expr(l, schema)?),
                Box::new(self.bind_expr(r, schema)?),
            ),
            Expr::Arith(op, l, r) => SExpr::Arith(
                arith_op(*op),
                Box::new(self.bind_expr(l, schema)?),
                Box::new(self.bind_expr(r, schema)?),
            ),
            Expr::And(l, r) => SExpr::And(
                Box::new(self.bind_expr(l, schema)?),
                Box::new(self.bind_expr(r, schema)?),
            ),
            Expr::Or(l, r) => SExpr::Or(
                Box::new(self.bind_expr(l, schema)?),
                Box::new(self.bind_expr(r, schema)?),
            ),
            Expr::Not(e) => SExpr::Not(Box::new(self.bind_expr(e, schema)?)),
            Expr::IsNull(e, negated) => {
                SExpr::IsNull(Box::new(self.bind_expr(e, schema)?), *negated)
            }
            Expr::Contains(e, needle) => {
                SExpr::Contains(Box::new(self.bind_expr(e, schema)?), needle.clone())
            }
            Expr::SummaryCount {
                instance,
                component,
            } => {
                let inst_id = self.registry.instance_id(instance)?;
                let component = self.resolve_component(inst_id, component)?;
                SExpr::SummaryCount {
                    instance: inst_id,
                    component,
                }
            }
        })
    }

    /// Resolves a `SUMMARY_COUNT` component name: a classifier label by
    /// name, or a 1-based component index for any type.
    pub fn resolve_component(
        &self,
        instance: insightnotes_common::InstanceId,
        component: &str,
    ) -> Result<ComponentSel> {
        let inst = self.registry.instance(instance)?;
        if let Some(labels) = inst.labels() {
            if let Some(ix) = labels
                .iter()
                .position(|l| l.eq_ignore_ascii_case(component))
            {
                return Ok(ComponentSel::Label(ix));
            }
        }
        let parsed: Option<usize> = component.parse().ok();
        match parsed {
            Some(n) if n >= 1 => Ok(match inst.kind() {
                SummaryKind::Classifier => ComponentSel::Label(n - 1),
                _ => ComponentSel::Group(n - 1),
            }),
            _ => Err(Error::Summary(format!(
                "instance `{}` has no component `{component}`",
                inst.name()
            ))),
        }
    }
}

struct ScanInfo {
    table: insightnotes_common::TableId,
    binding: String,
    schema: Schema,
}

fn split_conjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::And(l, r) => {
            split_conjuncts(l, out);
            split_conjuncts(r, out);
        }
        other => out.push(other.clone()),
    }
}

fn collect_refs(e: &Expr, out: &mut Vec<ColumnRef>) {
    match e {
        Expr::Column(c) => out.push(c.clone()),
        Expr::Literal(_) | Expr::SummaryCount { .. } => {}
        Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
            collect_refs(l, out);
            collect_refs(r, out);
        }
        Expr::Not(i) | Expr::IsNull(i, _) | Expr::Contains(i, _) => collect_refs(i, out),
    }
}

fn uses_summary(e: &Expr) -> bool {
    match e {
        Expr::SummaryCount { .. } => true,
        Expr::Column(_) | Expr::Literal(_) => false,
        Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
            uses_summary(l) || uses_summary(r)
        }
        Expr::Not(i) | Expr::IsNull(i, _) | Expr::Contains(i, _) => uses_summary(i),
    }
}

fn resolve_ref(scans: &[ScanInfo], r: &ColumnRef) -> Result<(usize, usize)> {
    let mut found: Option<(usize, usize)> = None;
    for (i, s) in scans.iter().enumerate() {
        if let Ok(ord) = s.schema.resolve(r.qualifier.as_deref(), &r.name) {
            if found.is_some() {
                return Err(Error::Catalog(format!("ambiguous column `{r}`")));
            }
            found = Some((i, ord));
        }
    }
    found.ok_or_else(|| Error::Catalog(format!("unknown column `{r}`")))
}

fn literal_to_value(lit: &Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Int(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::Str(s) => Value::Text(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

fn cmp_op(op: BinCmp) -> CmpOp {
    match op {
        BinCmp::Eq => CmpOp::Eq,
        BinCmp::Ne => CmpOp::Ne,
        BinCmp::Lt => CmpOp::Lt,
        BinCmp::Le => CmpOp::Le,
        BinCmp::Gt => CmpOp::Gt,
        BinCmp::Ge => CmpOp::Ge,
    }
}

fn arith_op(op: BinArith) -> ArithOp {
    match op {
        BinArith::Add => ArithOp::Add,
        BinArith::Sub => ArithOp::Sub,
        BinArith::Mul => ArithOp::Mul,
        BinArith::Div => ArithOp::Div,
    }
}

fn agg_default_name(func: AggFunc, ordinal: usize) -> String {
    let base = match func {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::Avg => "avg",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
    };
    if ordinal == 0 {
        base.to_string()
    } else {
        format!("{base}{ordinal}")
    }
}

fn agg_output_type(func: AggFunc, arg: &Option<SExpr>, input: &Schema) -> DataType {
    match func {
        AggFunc::Count => DataType::Int,
        AggFunc::Sum | AggFunc::Avg => DataType::Float,
        AggFunc::Min | AggFunc::Max => match arg {
            Some(SExpr::Column(c)) => input.columns()[*c].dtype,
            _ => DataType::Float,
        },
    }
}

/// For each input column, the output ordinal of the first plain-column
/// output expression that reads it (`None` when the column is dropped).
fn build_col_map(input_arity: usize, exprs: &[SExpr]) -> Vec<Option<u16>> {
    let mut map = vec![None; input_arity];
    for (out, e) in exprs.iter().enumerate() {
        if let SExpr::Column(c) = e {
            if map[*c].is_none() {
                map[*c] = Some(out as u16);
            }
        }
    }
    // Computed expressions keep their referenced columns' annotations
    // alive: map each still-unmapped referenced column to the expression's
    // output position (provenance approximation).
    for (out, e) in exprs.iter().enumerate() {
        if matches!(e, SExpr::Column(_)) {
            continue;
        }
        let mut refs = Vec::new();
        e.referenced_columns(&mut refs);
        for c in refs {
            if map[c].is_none() {
                map[c] = Some(out as u16);
            }
        }
    }
    map
}

fn infer_type(expr: &Expr, input: &Schema) -> Option<DataType> {
    match expr {
        Expr::Column(c) => input
            .resolve(c.qualifier.as_deref(), &c.name)
            .ok()
            .map(|i| input.columns()[i].dtype),
        Expr::Literal(Literal::Int(_)) => Some(DataType::Int),
        Expr::Literal(Literal::Float(_)) => Some(DataType::Float),
        Expr::Literal(Literal::Str(_)) => Some(DataType::Text),
        Expr::Literal(Literal::Bool(_)) => Some(DataType::Bool),
        Expr::Literal(Literal::Null) => None,
        Expr::Arith(_, l, r) => match (infer_type(l, input), infer_type(r, input)) {
            (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
            _ => Some(DataType::Float),
        },
        Expr::Cmp(..)
        | Expr::And(..)
        | Expr::Or(..)
        | Expr::Not(_)
        | Expr::IsNull(..)
        | Expr::Contains(..) => Some(DataType::Bool),
        Expr::SummaryCount { .. } => Some(DataType::Int),
    }
}

/// Matches `Column(c) = Literal(v)` (either side) for index probing.
fn index_probe(pred: &SExpr) -> Option<(u16, Value)> {
    let SExpr::Cmp(CmpOp::Eq, l, r) = pred else {
        return None;
    };
    match (l.as_ref(), r.as_ref()) {
        (SExpr::Column(c), SExpr::Literal(v)) | (SExpr::Literal(v), SExpr::Column(c))
            if !v.is_null() =>
        {
            Some((*c as u16, v.clone()))
        }
        _ => None,
    }
}
