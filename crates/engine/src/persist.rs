//! Database snapshots.
//!
//! `Database::save` serializes the durable state — catalog (tables +
//! rows), the raw-annotation store, and the summary registry (instances
//! with their trained models, links, and every maintained summary
//! object) — into a single file with the workspace's binary codec.
//! `Database::open` restores it. Session state (QIDs, the zoom-in cache,
//! the digest cache) is deliberately not persisted: it is rebuildable and
//! belongs to an interactive session, not to the data.
//!
//! Format: magic `INDB`, a version word, the checkpoint epoch and the
//! logical-clock high-water mark (version 2), then the three sections.
//! Decoding is strict — wrong magic, unknown versions, truncation, and
//! trailing bytes are all errors.
//!
//! Saves are crash-safe: bytes go to a sibling `.indb.tmp` file which is
//! fsynced *before* the atomic rename over the target, and the parent
//! directory is fsynced after so the rename itself survives power loss.
//! A crash mid-save can therefore leave a stale temp file next to an
//! intact snapshot — never a torn snapshot — and `Database::open` sweeps
//! such leftovers.

use crate::db::{Database, DbConfig};
use crate::wal;
use insightnotes_annotations::AnnotationStore;
use insightnotes_common::codec::{Decoder, Encodable, Encoder};
use insightnotes_common::{Error, Result};
use insightnotes_storage::Catalog;
use insightnotes_summaries::SummaryRegistry;
use std::path::Path;

const MAGIC: &[u8; 4] = b"INDB";
// Version 3: the annotation store gained lifecycle tombstones and event
// timelines (RETRACT/CORRECT/FLAG). Strict versioning means v2 files are
// refused with a named version, same as every other retired layout.
const VERSION: u32 = 3;

/// Serializes durable state with an explicit checkpoint epoch and
/// logical-clock high-water mark. `Database::save` stamps the database's
/// live values; the WAL replays only against a snapshot of its own epoch.
pub fn snapshot_with(
    catalog: &Catalog,
    store: &AnnotationStore,
    registry: &SummaryRegistry,
    epoch: u64,
    clock: u64,
) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(1 << 16);
    enc.u8(MAGIC[0]);
    enc.u8(MAGIC[1]);
    enc.u8(MAGIC[2]);
    enc.u8(MAGIC[3]);
    enc.u32(VERSION);
    enc.u64(epoch);
    enc.u64(clock);
    catalog.encode(&mut enc);
    store.encode(&mut enc);
    registry.encode(&mut enc);
    enc.finish()
}

/// Serializes the durable state into a byte buffer with a zero epoch and
/// clock — a pure state image, handy for comparing two databases
/// byte-for-byte regardless of how many ticks each consumed.
pub fn snapshot(catalog: &Catalog, store: &AnnotationStore, registry: &SummaryRegistry) -> Vec<u8> {
    snapshot_with(catalog, store, registry, 0, 0)
}

/// Restores durable state from snapshot bytes, returning the sections
/// plus the stamped `(epoch, clock)`.
#[allow(clippy::type_complexity)]
pub fn restore(bytes: &[u8]) -> Result<(Catalog, AnnotationStore, SummaryRegistry, u64, u64)> {
    let mut dec = Decoder::new(bytes);
    let magic = [dec.u8()?, dec.u8()?, dec.u8()?, dec.u8()?];
    if &magic != MAGIC {
        return Err(Error::Codec("not an InsightNotes database file".into()));
    }
    let version = dec.u32()?;
    if version != VERSION {
        return Err(Error::Codec(format!(
            "unsupported database file version {version} (expected {VERSION})"
        )));
    }
    let epoch = dec.u64()?;
    let clock = dec.u64()?;
    let catalog = Catalog::decode(&mut dec)?;
    let store = AnnotationStore::decode(&mut dec)?;
    let registry = SummaryRegistry::decode(&mut dec)?;
    dec.expect_end()?;
    Ok((catalog, store, registry, epoch, clock))
}

/// The sibling temp file a save streams through before its atomic rename.
pub(crate) fn tmp_path(path: &Path) -> std::path::PathBuf {
    path.with_extension("indb.tmp")
}

/// Writes `bytes` to `path` durably: temp file → fsync → rename →
/// parent-directory fsync. On return the new content survives power
/// loss; on a crash at any point the old content (or absence) does.
pub(crate) fn write_durable(path: &Path, bytes: &[u8]) -> Result<()> {
    use std::io::Write;
    let tmp = tmp_path(path);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    wal::crash_point("snapshot.write.after");
    f.sync_all()?;
    drop(f);
    wal::crash_point("snapshot.rename.before");
    std::fs::rename(&tmp, path)?;
    wal::crash_point("snapshot.rename.after");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            wal::sync_dir(parent)?;
        }
    }
    Ok(())
}

impl Database {
    /// Writes a snapshot of the database's durable state to `path`,
    /// atomically and durably (temp file, fsync, rename, directory
    /// fsync).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let bytes = snapshot_with(
            self.catalog(),
            self.store(),
            self.registry(),
            self.epoch(),
            self.clock_now(),
        );
        write_durable(path, &bytes)
    }

    /// Opens a database from a snapshot file with default configuration.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_config(path, DbConfig::default())
    }

    /// Opens a database from a snapshot file with an explicit
    /// configuration (cache policy / budget / maintenance mode). When
    /// the configuration names a WAL directory, prefer
    /// [`Database::recover`], which also replays the log tail.
    pub fn open_with_config(path: impl AsRef<Path>, config: DbConfig) -> Result<Self> {
        let path = path.as_ref();
        remove_stale_tmp(path);
        let bytes = std::fs::read(path)?;
        let (catalog, store, registry, epoch, clock) = restore(&bytes)?;
        let mut db = Database::with_config(config)?;
        db.replace_state(catalog, store, registry, epoch, clock);
        Ok(db)
    }
}

/// Sweeps a `.indb.tmp` leftover from a save that crashed before its
/// rename. Returns whether one was removed.
pub(crate) fn remove_stale_tmp(path: &Path) -> bool {
    let tmp = tmp_path(path);
    tmp.exists() && std::fs::remove_file(&tmp).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "insightnotes-persist-test-{}-{tag}.indb",
            std::process::id()
        ))
    }

    fn populated_db() -> Database {
        let mut db = Database::new();
        db.execute_sql(
            "CREATE TABLE birds (id INT, name TEXT, weight FLOAT);
             INSERT INTO birds VALUES (1, 'Swan Goose', 3.2), (2, 'Mallard', 1.1);
             CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
               LABELS ('Behavior', 'Other')
               TRAIN ('Behavior': 'eating stonewort diving', 'Other': 'reference photo');
             CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5;
             LINK SUMMARY C TO birds;
             LINK SUMMARY K TO birds;
             ADD ANNOTATION 'found eating stonewort' ON birds WHERE id = 1;
             ADD ANNOTATION 'eating stonewort by lake' ON birds WHERE id = 1;
             ADD ANNOTATION 'see reference photo' ON birds WHERE id = 2;",
        )
        .unwrap();
        db
    }

    #[test]
    fn snapshot_round_trips_full_state() {
        let original = populated_db();
        let path = snapshot_path("roundtrip");
        original.save(&path).unwrap();
        let reopened = Database::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Data round-trips.
        let a = original
            .query("SELECT id, name, weight FROM birds")
            .unwrap();
        let b = reopened
            .query("SELECT id, name, weight FROM birds")
            .unwrap();
        assert_eq!(a.rows, b.rows);

        // Annotations round-trip.
        assert_eq!(original.store().stats(), reopened.store().stats());

        // The logical clock resumes past the saved high-water mark, so
        // restored `created` stamps can never collide with new ones.
        assert_eq!(reopened.clock_now(), original.clock_now());

        // Summary objects round-trip byte-identically.
        let t = reopened.catalog().table_id("birds").unwrap();
        let c = reopened.registry().instance_id("C").unwrap();
        assert_eq!(
            original
                .registry()
                .object(t, insightnotes_common::RowId::new(1), c),
            reopened
                .registry()
                .object(t, insightnotes_common::RowId::new(1), c)
        );
    }

    #[test]
    fn reopened_database_keeps_working() {
        let original = populated_db();
        let path = snapshot_path("continue");
        original.save(&path).unwrap();
        let mut db = Database::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // The restored classifier model still classifies.
        db.execute_sql("ADD ANNOTATION 'diving and eating stonewort' ON birds WHERE id = 2")
            .unwrap();
        let result = db
            .query("SELECT name FROM birds WHERE SUMMARY_COUNT(C, 'Behavior') > 0 ORDER BY name")
            .unwrap();
        let names: Vec<String> = result.rows.iter().map(|r| r.row[0].to_string()).collect();
        assert_eq!(names, vec!["Mallard", "Swan Goose"]);

        // Ids keep advancing from the snapshot point (no reuse).
        assert_eq!(db.store().stats().count, 4);

        // Zoom-in works against fresh QIDs.
        let out = db
            .execute_sql(&format!(
                "ZOOMIN REFERENCE QID {} ON C LABEL 'Behavior'",
                result.qid.raw()
            ))
            .unwrap();
        let crate::db::ExecOutcome::ZoomIn(z) = &out[0] else {
            panic!()
        };
        assert_eq!(z.annotations.len(), 3);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let db = populated_db();
        let path = snapshot_path("corrupt");
        db.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(restore(&bad).is_err());

        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(restore(&bad).is_err());

        // Truncation.
        bytes.truncate(bytes.len() / 2);
        assert!(restore(&bytes).is_err());

        std::fs::remove_file(&path).ok();
        assert!(Database::open(snapshot_path("missing")).is_err());
    }

    #[test]
    fn decode_failures_carry_the_codec_class() {
        let db = populated_db();
        let bytes = snapshot(db.catalog(), db.store(), db.registry());
        assert!(restore(&bytes).is_ok(), "baseline snapshot must decode");

        // Trailing bytes after a well-formed snapshot: strict decoding
        // treats them as corruption, not padding.
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0xAB, 0xCD]);
        let err = restore(&trailing).unwrap_err();
        assert_eq!(err.class(), "codec", "{err}");

        // A future format version: rejected up front, and the message
        // names the version so the operator knows it is a compatibility
        // problem rather than corruption.
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&7u32.to_le_bytes());
        let err = restore(&future).unwrap_err();
        assert_eq!(err.class(), "codec");
        assert!(err.to_string().contains('7'), "{err}");

        // The retired version-1 layout: same treatment — a named
        // version in a classified error, not a misdecode.
        let mut v1 = bytes.clone();
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let err = restore(&v1).unwrap_err();
        assert_eq!(err.class(), "codec");
        assert!(err.to_string().contains('1'), "{err}");

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[..4].copy_from_slice(b"NOPE");
        assert_eq!(restore(&bad).unwrap_err().class(), "codec");

        // Truncation at every structurally interesting point: inside the
        // magic, inside the version word, inside the epoch/clock stamps,
        // and one byte short of the end.
        for cut in [2usize, 6, 12, 20, bytes.len() - 1] {
            let err = restore(&bytes[..cut]).unwrap_err();
            assert_eq!(err.class(), "codec", "cut at {cut}: {err}");
        }
    }

    #[test]
    fn empty_database_round_trips() {
        let db = Database::new();
        let path = snapshot_path("empty");
        db.save(&path).unwrap();
        let reopened = Database::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(reopened.catalog().table_names().is_empty());
        assert_eq!(reopened.store().stats().count, 0);
    }

    #[test]
    fn open_sweeps_a_stale_temp_file() {
        let db = populated_db();
        let path = snapshot_path("staletmp");
        db.save(&path).unwrap();
        let tmp = tmp_path(&path);
        std::fs::write(&tmp, b"half-written snapshot from a crashed save").unwrap();
        let reopened = Database::open(&path).unwrap();
        assert!(!tmp.exists(), "stale temp file should be swept on open");
        assert_eq!(reopened.store().stats().count, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_replaces_existing_snapshot_atomically() {
        let mut db = populated_db();
        let path = snapshot_path("atomic");
        db.save(&path).unwrap();
        let before = std::fs::read(&path).unwrap();
        db.execute_sql("ADD ANNOTATION 'late arrival' ON birds WHERE id = 1")
            .unwrap();
        db.save(&path).unwrap();
        let after = std::fs::read(&path).unwrap();
        assert_ne!(before, after);
        assert!(!tmp_path(&path).exists(), "no temp residue after save");
        let reopened = Database::open(&path).unwrap();
        assert_eq!(reopened.store().stats().count, 4);
        std::fs::remove_file(&path).ok();
    }
}
