//! Database snapshots.
//!
//! `Database::save` serializes the durable state — catalog (tables +
//! rows), the raw-annotation store, and the summary registry (instances
//! with their trained models, links, and every maintained summary
//! object) — into a single file with the workspace's binary codec.
//! `Database::open` restores it. Session state (QIDs, the zoom-in cache,
//! the digest cache) is deliberately not persisted: it is rebuildable and
//! belongs to an interactive session, not to the data.
//!
//! Format: magic `INDB`, a version word, then the three sections. Decoding
//! is strict — wrong magic, unknown versions, truncation, and trailing
//! bytes are all errors.

use crate::db::{Database, DbConfig};
use insightnotes_annotations::AnnotationStore;
use insightnotes_common::codec::{Decoder, Encodable, Encoder};
use insightnotes_common::{Error, Result};
use insightnotes_storage::Catalog;
use insightnotes_summaries::SummaryRegistry;
use std::path::Path;

const MAGIC: &[u8; 4] = b"INDB";
const VERSION: u32 = 1;

/// Serializes the durable state into a byte buffer.
pub fn snapshot(catalog: &Catalog, store: &AnnotationStore, registry: &SummaryRegistry) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(1 << 16);
    enc.u8(MAGIC[0]);
    enc.u8(MAGIC[1]);
    enc.u8(MAGIC[2]);
    enc.u8(MAGIC[3]);
    enc.u32(VERSION);
    catalog.encode(&mut enc);
    store.encode(&mut enc);
    registry.encode(&mut enc);
    enc.finish()
}

/// Restores the durable state from snapshot bytes.
pub fn restore(bytes: &[u8]) -> Result<(Catalog, AnnotationStore, SummaryRegistry)> {
    let mut dec = Decoder::new(bytes);
    let magic = [dec.u8()?, dec.u8()?, dec.u8()?, dec.u8()?];
    if &magic != MAGIC {
        return Err(Error::Codec("not an InsightNotes database file".into()));
    }
    let version = dec.u32()?;
    if version != VERSION {
        return Err(Error::Codec(format!(
            "unsupported database file version {version} (expected {VERSION})"
        )));
    }
    let catalog = Catalog::decode(&mut dec)?;
    let store = AnnotationStore::decode(&mut dec)?;
    let registry = SummaryRegistry::decode(&mut dec)?;
    dec.expect_end()?;
    Ok((catalog, store, registry))
}

impl Database {
    /// Writes a snapshot of the database's durable state to `path`
    /// (atomically: written to a sibling temp file, then renamed).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let bytes = snapshot(self.catalog(), self.store(), self.registry());
        let tmp = path.with_extension("indb.tmp");
        std::fs::write(&tmp, &bytes)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Opens a database from a snapshot file with default configuration.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_config(path, DbConfig::default())
    }

    /// Opens a database from a snapshot file with an explicit
    /// configuration (cache policy / budget / maintenance mode).
    pub fn open_with_config(path: impl AsRef<Path>, config: DbConfig) -> Result<Self> {
        let bytes = std::fs::read(path.as_ref())?;
        let (catalog, store, registry) = restore(&bytes)?;
        let mut db = Database::with_config(config)?;
        db.replace_state(catalog, store, registry);
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "insightnotes-persist-test-{}-{tag}.indb",
            std::process::id()
        ))
    }

    fn populated_db() -> Database {
        let mut db = Database::new();
        db.execute_sql(
            "CREATE TABLE birds (id INT, name TEXT, weight FLOAT);
             INSERT INTO birds VALUES (1, 'Swan Goose', 3.2), (2, 'Mallard', 1.1);
             CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
               LABELS ('Behavior', 'Other')
               TRAIN ('Behavior': 'eating stonewort diving', 'Other': 'reference photo');
             CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5;
             LINK SUMMARY C TO birds;
             LINK SUMMARY K TO birds;
             ADD ANNOTATION 'found eating stonewort' ON birds WHERE id = 1;
             ADD ANNOTATION 'eating stonewort by lake' ON birds WHERE id = 1;
             ADD ANNOTATION 'see reference photo' ON birds WHERE id = 2;",
        )
        .unwrap();
        db
    }

    #[test]
    fn snapshot_round_trips_full_state() {
        let original = populated_db();
        let path = snapshot_path("roundtrip");
        original.save(&path).unwrap();
        let reopened = Database::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Data round-trips.
        let a = original
            .query("SELECT id, name, weight FROM birds")
            .unwrap();
        let b = reopened
            .query("SELECT id, name, weight FROM birds")
            .unwrap();
        assert_eq!(a.rows, b.rows);

        // Annotations round-trip.
        assert_eq!(original.store().stats(), reopened.store().stats());

        // Summary objects round-trip byte-identically.
        let t = reopened.catalog().table_id("birds").unwrap();
        let c = reopened.registry().instance_id("C").unwrap();
        assert_eq!(
            original
                .registry()
                .object(t, insightnotes_common::RowId::new(1), c),
            reopened
                .registry()
                .object(t, insightnotes_common::RowId::new(1), c)
        );
    }

    #[test]
    fn reopened_database_keeps_working() {
        let original = populated_db();
        let path = snapshot_path("continue");
        original.save(&path).unwrap();
        let mut db = Database::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // The restored classifier model still classifies.
        db.execute_sql("ADD ANNOTATION 'diving and eating stonewort' ON birds WHERE id = 2")
            .unwrap();
        let result = db
            .query("SELECT name FROM birds WHERE SUMMARY_COUNT(C, 'Behavior') > 0 ORDER BY name")
            .unwrap();
        let names: Vec<String> = result.rows.iter().map(|r| r.row[0].to_string()).collect();
        assert_eq!(names, vec!["Mallard", "Swan Goose"]);

        // Ids keep advancing from the snapshot point (no reuse).
        assert_eq!(db.store().stats().count, 4);

        // Zoom-in works against fresh QIDs.
        let out = db
            .execute_sql(&format!(
                "ZOOMIN REFERENCE QID {} ON C LABEL 'Behavior'",
                result.qid.raw()
            ))
            .unwrap();
        let crate::db::ExecOutcome::ZoomIn(z) = &out[0] else {
            panic!()
        };
        assert_eq!(z.annotations.len(), 3);
    }

    #[test]
    fn corrupt_files_are_rejected() {
        let db = populated_db();
        let path = snapshot_path("corrupt");
        db.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(restore(&bad).is_err());

        // Unsupported version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(restore(&bad).is_err());

        // Truncation.
        bytes.truncate(bytes.len() / 2);
        assert!(restore(&bytes).is_err());

        std::fs::remove_file(&path).ok();
        assert!(Database::open(snapshot_path("missing")).is_err());
    }

    #[test]
    fn decode_failures_carry_the_codec_class() {
        let db = populated_db();
        let bytes = snapshot(db.catalog(), db.store(), db.registry());
        assert!(restore(&bytes).is_ok(), "baseline snapshot must decode");

        // Trailing bytes after a well-formed snapshot: strict decoding
        // treats them as corruption, not padding.
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0xAB, 0xCD]);
        let err = restore(&trailing).unwrap_err();
        assert_eq!(err.class(), "codec", "{err}");

        // A future format version: rejected up front, and the message
        // names the version so the operator knows it is a compatibility
        // problem rather than corruption.
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&7u32.to_le_bytes());
        let err = restore(&future).unwrap_err();
        assert_eq!(err.class(), "codec");
        assert!(err.to_string().contains('7'), "{err}");

        // Wrong magic.
        let mut bad = bytes.clone();
        bad[..4].copy_from_slice(b"NOPE");
        assert_eq!(restore(&bad).unwrap_err().class(), "codec");

        // Truncation at every structurally interesting point: inside the
        // magic, inside the version word, and one byte short of the end.
        for cut in [2usize, 6, bytes.len() - 1] {
            let err = restore(&bytes[..cut]).unwrap_err();
            assert_eq!(err.class(), "codec", "cut at {cut}: {err}");
        }
    }

    #[test]
    fn empty_database_round_trips() {
        let db = Database::new();
        let path = snapshot_path("empty");
        db.save(&path).unwrap();
        let reopened = Database::open(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(reopened.catalog().table_names().is_empty());
        assert_eq!(reopened.store().stats().count, 0);
    }
}
