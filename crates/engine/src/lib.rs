#![warn(missing_docs)]
//! # insightnotes-engine
//!
//! The InsightNotes query engine: a relational executor whose tuples carry
//! summary objects, extended operator semantics that transform those
//! objects in-pipeline (projection subtracts, join merges without double
//! counting, grouping/distinct fold — Figure 2 of the paper), zoom-in
//! query processing over QID-addressed results (Figure 3), and the
//! disk-based result cache with the RCO replacement policy that makes
//! zoom-in interactive.
//!
//! Layout:
//!
//! - [`annotated`] — the pipeline tuple: a row plus its summary objects;
//! - [`expr`] — scalar expressions extended with `SUMMARY_COUNT`
//!   (summary-based predicates);
//! - [`plan`] — logical plans, the binder/planner (which enforces the
//!   project-before-merge rule of Theorems 1–2), and cost estimation;
//! - [`exec`] — the summary-aware operators plus the Figure-2 trace mode;
//! - [`raw`] — the raw-propagation baseline engine (DBNotes-style), used
//!   by the comparison experiments;
//! - [`zoomin`] — QID registry and zoom-in execution;
//! - [`cache`] — the disk result cache with RCO / LRU / LFU policies;
//! - [`db`] — the [`db::Database`] facade tying it all together
//!   behind `execute_sql`;
//! - [`persist`] — durable snapshots (`Database::save` / `Database::open`);
//! - [`wal`] — the write-ahead log behind `Database::recover`, which turns
//!   server acks into a durability promise.

pub mod annotated;
pub mod cache;
pub mod db;
pub mod exec;
pub mod expr;
pub mod persist;
pub mod plan;
pub mod raw;
pub mod shard;
pub mod wal;
pub mod zoomin;

pub use annotated::AnnotatedRow;
pub use db::{
    Database, DbConfig, ExecOutcome, PolicyKind, QueryResult, RecoveryReport, RowAnnotation,
    SqlStatement, StampedRowAnnotation, ZoomInResult,
};
pub use exec::TraceLog;
pub use expr::SExpr;
pub use insightnotes_annotations::{LifecycleEvent, LifecycleKind};
pub use plan::LogicalPlan;
pub use shard::{
    shard_of, RoutedAnnotation, ShardRecovery, ShardedDatabase, ShardedRecoveryReport,
};
pub use wal::SyncPolicy;
