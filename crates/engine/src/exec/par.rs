//! Morsel-driven parallel execution primitives.
//!
//! The executor splits operator inputs into fixed-size **morsels**
//! (following the HyPer-style morsel-driven model): a pool of scoped
//! worker threads claims morsels from a shared atomic counter, processes
//! each independently, and the results are re-concatenated in morsel
//! order. Claiming by counter gives dynamic load balancing (a worker
//! stuck on an expensive morsel does not delay the others), while
//! ordered reassembly keeps every operator's output order identical to
//! the serial executor's — parallel execution is a pure throughput
//! change, never a semantic one.
//!
//! Workers are plain [`std::thread::scope`] threads, so borrowed state
//! (catalog, registry, expressions) is shared without `'static` bounds
//! and without any runtime dependency.

use insightnotes_common::Result;
use parking_lot::witness::class as lock_class;
use parking_lot::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Rows per morsel. Small enough to load-balance skewed operators,
/// large enough that claim/merge overhead stays well under 1% per row.
pub const MORSEL_SIZE: usize = 1024;

/// Caps the worker count at what the input can actually feed: there is
/// no point spawning eight workers for two morsels.
pub fn effective_threads(requested: usize, items: usize) -> usize {
    requested.min(items.div_ceil(MORSEL_SIZE)).max(1)
}

/// Splits `items` into owned morsels of at most [`MORSEL_SIZE`] rows.
fn into_morsels<T>(items: Vec<T>) -> Vec<Vec<T>> {
    let mut morsels = Vec::with_capacity(items.len().div_ceil(MORSEL_SIZE).max(1));
    let mut rest = items;
    while rest.len() > MORSEL_SIZE {
        let tail = rest.split_off(MORSEL_SIZE);
        morsels.push(rest);
        rest = tail;
    }
    morsels.push(rest);
    morsels
}

/// Runs `f` over morsels of `items` on up to `threads` workers and
/// concatenates the per-morsel outputs in morsel order, so the result
/// equals the serial `f(items)` for any per-row map/filter `f`.
///
/// `f` receives the morsel's rows (owned) and the morsel index. The
/// first error aborts the remaining morsels and is returned.
pub fn map_morsels<T, U, F>(items: Vec<T>, threads: usize, f: &F) -> Result<Vec<U>>
where
    T: Send,
    U: Send,
    F: Fn(Vec<T>, usize) -> Result<Vec<U>> + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 {
        return f(items, 0);
    }
    let per_morsel = run_units(into_morsels(items), threads, f)?;
    Ok(per_morsel.into_iter().flatten().collect())
}

/// Runs `f` once per item on up to `threads` workers — for
/// coarse-grained stages where each item is already a big unit of work
/// (e.g. one hash-join partition). Outputs are returned in item order.
pub fn map_items<T, U, F>(items: Vec<T>, threads: usize, f: &F) -> Result<Vec<U>>
where
    T: Send,
    U: Send,
    F: Fn(T, usize) -> Result<U> + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(item, i))
            .collect();
    }
    run_units(items, threads, f)
}

/// The claim-by-counter worker pool behind both entry points: `units`
/// are claimed by index from a shared atomic, processed by `f`, and the
/// outputs returned in unit order. The first error wins and aborts
/// still-unclaimed units.
fn run_units<T, U, F>(units: Vec<T>, threads: usize, f: &F) -> Result<Vec<U>>
where
    T: Send,
    U: Send,
    F: Fn(T, usize) -> Result<U> + Sync,
{
    let units: Vec<Mutex<Option<T>>> = units
        .into_iter()
        .map(|u| Mutex::new(Some(u)).with_class(lock_class::MORSEL))
        .collect();
    let slots: Vec<Mutex<Option<Result<U>>>> = (0..units.len())
        .map(|_| Mutex::new(None).with_class(lock_class::MORSEL))
        .collect();
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= units.len() {
                    break;
                }
                let unit = lock(&units[i]).take().expect("unit claimed once");
                let out = f(unit, i);
                if out.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                *lock(&slots[i]) = Some(out);
            });
        }
    });
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot.into_inner() {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            None => {} // skipped after another unit failed
        }
    }
    Ok(out)
}

/// Runs `fold` over morsels of `items`, producing **one partial
/// accumulator per morsel**, returned in morsel order. Callers merge the
/// partials left-to-right; because the morsel decomposition is a pure
/// function of the input (never of thread scheduling), the merge order —
/// and with it the result of order-sensitive folds like cluster summary
/// merges — is deterministic for every thread count.
pub fn fold_morsels<T, A, F>(items: Vec<T>, threads: usize, fold: &F) -> Result<Vec<A>>
where
    T: Send,
    A: Send,
    F: Fn(Vec<T>) -> Result<A> + Sync,
{
    map_morsels(items, threads, &|chunk, _| fold(chunk).map(|a| vec![a]))
}

/// Locks a per-unit morsel slot (the `parking_lot` shim already rides
/// through poisoning: a worker that panicked has aborted the query, and
/// these protect independent slots).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock() // lint: lock-class(morsel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::Error;

    #[test]
    fn effective_threads_is_bounded_by_morsel_count() {
        assert_eq!(effective_threads(8, 0), 1);
        assert_eq!(effective_threads(8, 10), 1);
        assert_eq!(effective_threads(8, MORSEL_SIZE + 1), 2);
        assert_eq!(effective_threads(2, 100 * MORSEL_SIZE), 2);
    }

    #[test]
    fn map_matches_serial_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).filter(|x| x % 2 == 0).collect();
        for threads in [1, 2, 8] {
            let got = map_morsels(items.clone(), threads, &|chunk, _| {
                Ok(chunk
                    .into_iter()
                    .map(|x| x * 3)
                    .filter(|x| x % 2 == 0)
                    .collect())
            })
            .unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn map_items_preserves_item_order() {
        let items: Vec<u64> = (0..13).collect();
        for threads in [1, 2, 8] {
            let got = map_items(items.clone(), threads, &|x, _| Ok(x * 2)).unwrap();
            assert_eq!(got, (0..13).map(|x| x * 2).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn map_propagates_errors() {
        let items: Vec<u64> = (0..10_000).collect();
        let got = map_morsels(items, 4, &|chunk, _| {
            if chunk.contains(&5000) {
                Err(Error::Execution("boom".into()))
            } else {
                Ok(chunk)
            }
        });
        assert!(got.is_err());
    }

    #[test]
    fn fold_partials_cover_all_items_once() {
        let items: Vec<u64> = (0..50_000).collect();
        for threads in [1, 2, 8] {
            let partials = fold_morsels(items.clone(), threads, &|chunk| {
                let mut a = (0u64, 0u64, u64::MAX);
                for x in chunk {
                    a.0 += x;
                    a.1 += 1;
                    a.2 = a.2.min(x);
                }
                Ok(a)
            })
            .unwrap();
            let sum: u64 = partials.iter().map(|(s, _, _)| s).sum();
            let count: u64 = partials.iter().map(|(_, c, _)| c).sum();
            assert_eq!(sum, 49_999 * 50_000 / 2, "threads={threads}");
            assert_eq!(count, 50_000);
            assert!(
                partials.windows(2).all(|w| w[0].2 < w[1].2),
                "partials arrive in morsel order"
            );
        }
    }
}
