//! The summary-aware executor.
//!
//! Executes a [`LogicalPlan`] over the catalog + summary registry,
//! producing [`AnnotatedRow`]s. Each operator implements the paper's
//! extended semantics:
//!
//! - **Scan** attaches each row's maintained summary objects;
//! - **Filter** passes summaries through untouched (Figure 2 step 2);
//! - **Project** removes the effect of annotations attached only to
//!   projected-out columns (Figure 2 step 1);
//! - **Join** merges the two sides' objects without double counting
//!   (Figure 2 step 3) — see [`join`];
//! - **Aggregate** / **Distinct** fold the summaries of the tuples they
//!   coalesce — see [`aggregate`];
//! - **Sort** / **Limit** reorder / truncate without touching summaries.
//!
//! With a [`TraceLog`] attached, the executor records every operator's
//! output (rows plus rendered summary objects) — the "under-the-hood"
//! visualization of demo scenario 3.

pub mod aggregate;
pub mod join;
pub mod trace;

pub use trace::{TraceLog, TraceStep};

use crate::annotated::AnnotatedRow;
use crate::plan::logical::{LogicalPlan, SortKey};
use insightnotes_common::Result;
use insightnotes_storage::{Catalog, Row};
use insightnotes_summaries::SummaryRegistry;

/// Execution context: the data and summary state a query runs against.
pub struct Executor<'a> {
    /// Table storage.
    pub catalog: &'a Catalog,
    /// Summary instances and per-row objects.
    pub registry: &'a SummaryRegistry,
    /// Optional per-operator trace sink.
    pub trace: Option<TraceLog>,
}

impl<'a> Executor<'a> {
    /// Creates an executor without tracing.
    pub fn new(catalog: &'a Catalog, registry: &'a SummaryRegistry) -> Self {
        Self {
            catalog,
            registry,
            trace: None,
        }
    }

    /// Creates an executor that records every operator's output.
    pub fn with_trace(catalog: &'a Catalog, registry: &'a SummaryRegistry) -> Self {
        Self {
            catalog,
            registry,
            trace: Some(TraceLog::default()),
        }
    }

    /// Executes a plan to completion.
    pub fn execute(&mut self, plan: &LogicalPlan) -> Result<Vec<AnnotatedRow>> {
        let rows = match plan {
            LogicalPlan::Scan { table, .. } => self.scan(*table)?,
            LogicalPlan::IndexScan {
                table, col, value, ..
            } => self.index_scan(*table, *col, value)?,
            LogicalPlan::Filter { input, predicate } => {
                let input_rows = self.execute(input)?;
                let mut out = Vec::with_capacity(input_rows.len());
                for r in input_rows {
                    if predicate.satisfied(&r)? {
                        out.push(r);
                    }
                }
                out
            }
            LogicalPlan::Project {
                input,
                exprs,
                col_map,
                ..
            } => {
                let input_rows = self.execute(input)?;
                let mut out = Vec::with_capacity(input_rows.len());
                for mut r in input_rows {
                    let mut values = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        values.push(e.eval(&r)?);
                    }
                    let map = col_map.clone();
                    r.project_summaries(&move |c| map.get(c as usize).copied().flatten());
                    out.push(AnnotatedRow {
                        row: Row::new(values),
                        summaries: r.summaries,
                    });
                }
                out
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                ..
            } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                join::join(l, r, left.schema().arity(), predicate.as_ref())?
            }
            LogicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                ..
            } => {
                let input_rows = self.execute(input)?;
                aggregate::aggregate(input_rows, group_cols, aggs)?
            }
            LogicalPlan::Distinct { input } => {
                let input_rows = self.execute(input)?;
                aggregate::distinct(input_rows)?
            }
            LogicalPlan::Sort { input, keys } => {
                let rows = self.execute(input)?;
                sort(rows, keys)?
            }
            LogicalPlan::Limit { input, n } => {
                let mut rows = self.execute(input)?;
                rows.truncate(*n as usize);
                rows
            }
        };
        if let Some(trace) = &mut self.trace {
            trace.record(plan, self.registry, &rows);
        }
        Ok(rows)
    }

    fn index_scan(
        &self,
        table: insightnotes_common::TableId,
        col: u16,
        value: &insightnotes_storage::Value,
    ) -> Result<Vec<AnnotatedRow>> {
        let t = self.catalog.table(table)?;
        let rids = t.index_lookup(col, value).ok_or_else(|| {
            insightnotes_common::Error::Execution(format!(
                "plan expects an index on column {col} of `{}`",
                t.name()
            ))
        })?;
        let mut out = Vec::with_capacity(rids.len());
        for &rid in rids {
            let row = t.get(rid).ok_or_else(|| {
                insightnotes_common::Error::Execution(format!("index points at missing row {rid}"))
            })?;
            let summaries = self.registry.objects_on(table, rid).to_vec();
            out.push(AnnotatedRow::new(row.clone(), summaries));
        }
        Ok(out)
    }

    fn scan(&self, table: insightnotes_common::TableId) -> Result<Vec<AnnotatedRow>> {
        let t = self.catalog.table(table)?;
        let mut out = Vec::with_capacity(t.len());
        for (rid, row) in t.scan() {
            let summaries = self.registry.objects_on(table, rid).to_vec();
            out.push(AnnotatedRow::new(row.clone(), summaries));
        }
        Ok(out)
    }
}

fn sort(mut rows: Vec<AnnotatedRow>, keys: &[SortKey]) -> Result<Vec<AnnotatedRow>> {
    // Pre-evaluate keys so comparator closures stay infallible.
    let mut keyed: Vec<(Vec<insightnotes_storage::Value>, AnnotatedRow)> =
        Vec::with_capacity(rows.len());
    for r in rows.drain(..) {
        let mut k = Vec::with_capacity(keys.len());
        for key in keys {
            k.push(key.expr.eval(&r)?);
        }
        keyed.push((k, r));
    }
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, key) in keys.iter().enumerate() {
            let ord = ka[i].sort_cmp(&kb[i]);
            let ord = if key.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::SExpr;
    use insightnotes_storage::{CmpOp, Column, DataType, Schema, Value};

    fn setup() -> (Catalog, SummaryRegistry, insightnotes_common::TableId) {
        let mut cat = Catalog::new();
        let id = cat
            .create_table(
                "t",
                Schema::new(vec![
                    Column::new("x", DataType::Int),
                    Column::new("name", DataType::Text),
                ]),
            )
            .unwrap();
        let t = cat.table_mut(id).unwrap();
        for (x, name) in [(1, "swan"), (2, "goose"), (3, "heron")] {
            t.insert(Row::new(vec![Value::Int(x), Value::Text(name.into())]))
                .unwrap();
        }
        (cat, SummaryRegistry::new(), id)
    }

    fn scan_plan(id: insightnotes_common::TableId, cat: &Catalog) -> LogicalPlan {
        LogicalPlan::Scan {
            table: id,
            binding: "t".into(),
            schema: cat.table(id).unwrap().schema().qualify("t"),
        }
    }

    #[test]
    fn scan_filter_limit() {
        let (cat, reg, id) = setup();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan_plan(id, &cat)),
                predicate: SExpr::Cmp(
                    CmpOp::Ge,
                    Box::new(SExpr::Column(0)),
                    Box::new(SExpr::Literal(Value::Int(2))),
                ),
            }),
            n: 1,
        };
        let rows = Executor::new(&cat, &reg).execute(&plan).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].row[0], Value::Int(2));
    }

    #[test]
    fn sort_orders_with_desc_and_nulls() {
        let (mut cat, reg, id) = setup();
        cat.table_mut(id)
            .unwrap()
            .insert(Row::new(vec![Value::Null, Value::Text("mystery".into())]))
            .unwrap();
        let plan = LogicalPlan::Sort {
            input: Box::new(scan_plan(id, &cat)),
            keys: vec![SortKey {
                expr: SExpr::Column(0),
                desc: true,
            }],
        };
        let rows = Executor::new(&cat, &reg).execute(&plan).unwrap();
        assert_eq!(rows[0].row[0], Value::Int(3));
        assert!(rows[3].row[0].is_null(), "nulls sort first → last on desc");
    }

    #[test]
    fn project_computes_expressions() {
        let (cat, reg, id) = setup();
        let schema = Schema::new(vec![Column::new("doubled", DataType::Int)]);
        let plan = LogicalPlan::Project {
            input: Box::new(scan_plan(id, &cat)),
            exprs: vec![SExpr::Arith(
                insightnotes_storage::ArithOp::Mul,
                Box::new(SExpr::Column(0)),
                Box::new(SExpr::Literal(Value::Int(2))),
            )],
            schema,
            col_map: vec![Some(0), None],
        };
        let rows = Executor::new(&cat, &reg).execute(&plan).unwrap();
        assert_eq!(rows[1].row[0], Value::Int(4));
        assert_eq!(rows[0].row.arity(), 1);
    }

    #[test]
    fn trace_records_each_operator() {
        let (cat, reg, id) = setup();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan_plan(id, &cat)),
            predicate: SExpr::Literal(Value::Bool(true)),
        };
        let mut ex = Executor::with_trace(&cat, &reg);
        ex.execute(&plan).unwrap();
        let trace = ex.trace.unwrap();
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.steps[0].operator, "Scan");
        assert_eq!(trace.steps[1].operator, "Filter");
        assert_eq!(trace.steps[1].rows.len(), 3);
    }
}
