//! The summary-aware executor.
//!
//! Executes a [`LogicalPlan`] over the catalog + summary registry,
//! producing [`AnnotatedRow`]s. Each operator implements the paper's
//! extended semantics:
//!
//! - **Scan** attaches each row's maintained summary objects;
//! - **Filter** passes summaries through untouched (Figure 2 step 2);
//! - **Project** removes the effect of annotations attached only to
//!   projected-out columns (Figure 2 step 1);
//! - **Join** merges the two sides' objects without double counting
//!   (Figure 2 step 3) — see [`join`];
//! - **Aggregate** / **Distinct** fold the summaries of the tuples they
//!   coalesce — see [`aggregate`];
//! - **Sort** / **Limit** reorder / truncate without touching summaries.
//!
//! With a [`TraceLog`] attached, the executor records every operator's
//! output (rows plus rendered summary objects) — the "under-the-hood"
//! visualization of demo scenario 3. Tracing forces serial, streaming-free
//! execution so the recorded per-operator outputs stay deterministic and
//! complete.
//!
//! With a parallelism degree above one (and no trace attached), operators
//! run **morsel-driven parallel** — see [`par`] for the execution model
//! and why parallel output order matches serial exactly.

pub mod aggregate;
pub mod join;
pub mod par;
pub mod trace;

pub use trace::{TraceLog, TraceStep};

use crate::annotated::AnnotatedRow;
use crate::expr::SExpr;
use crate::plan::logical::{LogicalPlan, SortKey};
use insightnotes_common::{InstanceId, Result};
use insightnotes_storage::{Catalog, Row};
use insightnotes_summaries::{SharedObject, SummaryRegistry};

/// Where a scan finds the summary objects attached to a row.
///
/// A single-shard database answers from its one [`SummaryRegistry`];
/// the shard router answers from a facade that hash-routes each
/// `(table, row)` to the owning shard's registry. Must be `Sync` in
/// practice: [`Executor::attach`] calls it from morsel workers.
pub trait ObjectSource {
    /// The summary objects maintained on `(table, row)`, in instance
    /// order — same contract as [`SummaryRegistry::objects_on`].
    fn objects_on(
        &self,
        table: insightnotes_common::TableId,
        row: insightnotes_common::RowId,
    ) -> &[(InstanceId, SharedObject)];
}

impl ObjectSource for SummaryRegistry {
    fn objects_on(
        &self,
        table: insightnotes_common::TableId,
        row: insightnotes_common::RowId,
    ) -> &[(InstanceId, SharedObject)] {
        SummaryRegistry::objects_on(self, table, row)
    }
}

/// Execution context: the data and summary state a query runs against.
pub struct Executor<'a> {
    /// Table storage.
    pub catalog: &'a Catalog,
    /// Summary instances and per-row objects.
    pub registry: &'a SummaryRegistry,
    /// Optional per-operator trace sink.
    pub trace: Option<TraceLog>,
    /// Worker threads for morsel-driven execution (1 = serial).
    parallelism: usize,
    /// Overrides where scans fetch per-row summary objects (the shard
    /// router's cross-shard facade); `None` = read `registry`.
    objects: Option<&'a (dyn ObjectSource + Sync)>,
}

impl<'a> Executor<'a> {
    /// Creates a serial executor without tracing.
    pub fn new(catalog: &'a Catalog, registry: &'a SummaryRegistry) -> Self {
        Self {
            catalog,
            registry,
            trace: None,
            parallelism: 1,
            objects: None,
        }
    }

    /// Redirects per-row summary-object lookups to `objects` (the shard
    /// router's cross-shard facade). `registry` still provides instance
    /// metadata (names, linked instances) for planning and tracing.
    pub fn with_objects(mut self, objects: &'a (dyn ObjectSource + Sync)) -> Self {
        self.objects = Some(objects);
        self
    }

    /// Creates an executor running morsel-driven parallel on up to
    /// `threads` workers.
    pub fn with_parallelism(
        catalog: &'a Catalog,
        registry: &'a SummaryRegistry,
        threads: usize,
    ) -> Self {
        Self {
            catalog,
            registry,
            trace: None,
            parallelism: threads.max(1),
            objects: None,
        }
    }

    /// Creates an executor that records every operator's output. Tracing
    /// implies serial execution.
    pub fn with_trace(catalog: &'a Catalog, registry: &'a SummaryRegistry) -> Self {
        Self {
            catalog,
            registry,
            trace: Some(TraceLog::default()),
            parallelism: 1,
            objects: None,
        }
    }

    /// The worker budget for this query: the configured degree, forced
    /// to 1 while tracing (the trace must observe serial operator order).
    fn threads(&self) -> usize {
        if self.trace.is_some() {
            1
        } else {
            self.parallelism.max(1)
        }
    }

    /// Executes a plan to completion.
    pub fn execute(&mut self, plan: &LogicalPlan) -> Result<Vec<AnnotatedRow>> {
        let threads = self.threads();
        let rows = match plan {
            LogicalPlan::Scan { table, .. } => self.scan(*table)?,
            LogicalPlan::IndexScan {
                table, col, value, ..
            } => self.index_scan(*table, *col, value)?,
            LogicalPlan::Filter { input, predicate } => {
                let input_rows = self.execute(input)?;
                par::map_morsels(input_rows, threads, &|chunk, _| {
                    let mut out = Vec::with_capacity(chunk.len());
                    for r in chunk {
                        if predicate.satisfied(&r)? {
                            out.push(r);
                        }
                    }
                    Ok(out)
                })?
            }
            LogicalPlan::Project {
                input,
                exprs,
                col_map,
                ..
            } => {
                let input_rows = self.execute(input)?;
                let remap = |c: u16| col_map.get(c as usize).copied().flatten();
                par::map_morsels(input_rows, threads, &|chunk, _| {
                    let mut out = Vec::with_capacity(chunk.len());
                    for mut r in chunk {
                        let mut values = Vec::with_capacity(exprs.len());
                        for e in exprs {
                            values.push(e.eval(&r)?);
                        }
                        r.project_summaries(&remap);
                        out.push(AnnotatedRow {
                            row: Row::new(values),
                            summaries: r.summaries,
                        });
                    }
                    Ok(out)
                })?
            }
            LogicalPlan::Join {
                left,
                right,
                predicate,
                ..
            } => {
                let l = self.execute(left)?;
                let r = self.execute(right)?;
                join::join(l, r, left.schema().arity(), predicate.as_ref(), threads)?
            }
            LogicalPlan::Aggregate {
                input,
                group_cols,
                aggs,
                ..
            } => {
                let input_rows = self.execute(input)?;
                if threads > 1 {
                    aggregate::aggregate_parallel(input_rows, group_cols, aggs, threads)?
                } else {
                    aggregate::aggregate(input_rows, group_cols, aggs)?
                }
            }
            LogicalPlan::Distinct { input } => {
                let input_rows = self.execute(input)?;
                if threads > 1 {
                    aggregate::distinct_parallel(input_rows, threads)?
                } else {
                    aggregate::distinct(input_rows)?
                }
            }
            LogicalPlan::Sort { input, keys } => {
                let rows = self.execute(input)?;
                sort(rows, keys, threads)?
            }
            LogicalPlan::Limit { input, n } => {
                let n = *n as usize;
                // Early termination: with no trace attached (tracing must
                // observe full operator outputs), LIMIT over a Scan or a
                // Filter-over-Scan streams rows and stops at the n-th
                // survivor instead of materializing the whole table.
                match (self.trace.is_none(), input.as_ref()) {
                    (true, LogicalPlan::Scan { table, .. }) => {
                        self.scan_limited(*table, None, n)?
                    }
                    (
                        true,
                        LogicalPlan::Filter {
                            input: scan,
                            predicate,
                        },
                    ) if matches!(scan.as_ref(), LogicalPlan::Scan { .. }) => {
                        let LogicalPlan::Scan { table, .. } = scan.as_ref() else {
                            unreachable!("guarded by matches!");
                        };
                        self.scan_limited(*table, Some(predicate), n)?
                    }
                    _ => {
                        let mut rows = self.execute(input)?;
                        rows.truncate(n);
                        rows
                    }
                }
            }
        };
        if let Some(trace) = &mut self.trace {
            trace.record(plan, self.registry, &rows);
        }
        Ok(rows)
    }

    fn index_scan(
        &self,
        table: insightnotes_common::TableId,
        col: u16,
        value: &insightnotes_storage::Value,
    ) -> Result<Vec<AnnotatedRow>> {
        let t = self.catalog.table(table)?;
        let rids = t.index_lookup(col, value).ok_or_else(|| {
            insightnotes_common::Error::Execution(format!(
                "plan expects an index on column {col} of `{}`",
                t.name()
            ))
        })?;
        let sources: Vec<(insightnotes_common::RowId, &Row)> = rids
            .iter()
            .map(|&rid| {
                t.get(rid).map(|row| (rid, row)).ok_or_else(|| {
                    insightnotes_common::Error::Execution(format!(
                        "index points at missing row {rid}"
                    ))
                })
            })
            .collect::<Result<_>>()?;
        self.attach(table, sources)
    }

    fn scan(&self, table: insightnotes_common::TableId) -> Result<Vec<AnnotatedRow>> {
        let t = self.catalog.table(table)?;
        let sources: Vec<(insightnotes_common::RowId, &Row)> = t.scan().collect();
        self.attach(table, sources)
    }

    /// Clones rows out of storage and attaches their summary objects —
    /// Arc handle clones off the registry, not payload copies
    /// (copy-on-write) — morsel-parallel when the executor allows.
    fn attach(
        &self,
        table: insightnotes_common::TableId,
        sources: Vec<(insightnotes_common::RowId, &Row)>,
    ) -> Result<Vec<AnnotatedRow>> {
        let objects = self.object_source();
        par::map_morsels(sources, self.threads(), &|chunk, _| {
            Ok(chunk
                .into_iter()
                .map(|(rid, row)| {
                    let summaries = objects.objects_on(table, rid).to_vec();
                    AnnotatedRow::from_shared(row.clone(), summaries)
                })
                .collect())
        })
    }

    /// Where this executor's scans read per-row summary objects.
    fn object_source(&self) -> &(dyn ObjectSource + Sync) {
        self.objects.unwrap_or(self.registry)
    }

    /// Streaming scan (+ optional filter) that stops after `n` output
    /// rows — the LIMIT pushdown path.
    fn scan_limited(
        &self,
        table: insightnotes_common::TableId,
        predicate: Option<&SExpr>,
        n: usize,
    ) -> Result<Vec<AnnotatedRow>> {
        let t = self.catalog.table(table)?;
        let objects = self.object_source();
        let mut out = Vec::with_capacity(n.min(t.len()));
        for (rid, row) in t.scan() {
            if out.len() >= n {
                break;
            }
            let summaries = objects.objects_on(table, rid).to_vec();
            let arow = AnnotatedRow::from_shared(row.clone(), summaries);
            let keep = match predicate {
                Some(p) => p.satisfied(&arow)?,
                None => true,
            };
            if keep {
                out.push(arow);
            }
        }
        Ok(out)
    }
}

fn sort(rows: Vec<AnnotatedRow>, keys: &[SortKey], threads: usize) -> Result<Vec<AnnotatedRow>> {
    // Pre-evaluate keys (morsel-parallel — expression evaluation is the
    // expensive part) so comparator closures stay infallible.
    let mut keyed: Vec<(Vec<insightnotes_storage::Value>, AnnotatedRow)> =
        par::map_morsels(rows, threads, &|chunk, _| {
            let mut out = Vec::with_capacity(chunk.len());
            for r in chunk {
                let mut k = Vec::with_capacity(keys.len());
                for key in keys {
                    k.push(key.expr.eval(&r)?);
                }
                out.push((k, r));
            }
            Ok(out)
        })?;
    keyed.sort_by(|(ka, _), (kb, _)| {
        for (i, key) in keys.iter().enumerate() {
            let ord = ka[i].sort_cmp(&kb[i]);
            let ord = if key.desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::SExpr;
    use insightnotes_storage::{CmpOp, Column, DataType, Schema, Value};

    fn setup() -> (Catalog, SummaryRegistry, insightnotes_common::TableId) {
        let mut cat = Catalog::new();
        let id = cat
            .create_table(
                "t",
                Schema::new(vec![
                    Column::new("x", DataType::Int),
                    Column::new("name", DataType::Text),
                ]),
            )
            .unwrap();
        let t = cat.table_mut(id).unwrap();
        for (x, name) in [(1, "swan"), (2, "goose"), (3, "heron")] {
            t.insert(Row::new(vec![Value::Int(x), Value::Text(name.into())]))
                .unwrap();
        }
        (cat, SummaryRegistry::new(), id)
    }

    fn scan_plan(id: insightnotes_common::TableId, cat: &Catalog) -> LogicalPlan {
        LogicalPlan::Scan {
            table: id,
            binding: "t".into(),
            schema: cat.table(id).unwrap().schema().qualify("t"),
        }
    }

    #[test]
    fn scan_filter_limit() {
        let (cat, reg, id) = setup();
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(scan_plan(id, &cat)),
                predicate: SExpr::Cmp(
                    CmpOp::Ge,
                    Box::new(SExpr::Column(0)),
                    Box::new(SExpr::Literal(Value::Int(2))),
                ),
            }),
            n: 1,
        };
        let rows = Executor::new(&cat, &reg).execute(&plan).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].row[0], Value::Int(2));
    }

    #[test]
    fn sort_orders_with_desc_and_nulls() {
        let (mut cat, reg, id) = setup();
        cat.table_mut(id)
            .unwrap()
            .insert(Row::new(vec![Value::Null, Value::Text("mystery".into())]))
            .unwrap();
        let plan = LogicalPlan::Sort {
            input: Box::new(scan_plan(id, &cat)),
            keys: vec![SortKey {
                expr: SExpr::Column(0),
                desc: true,
            }],
        };
        let rows = Executor::new(&cat, &reg).execute(&plan).unwrap();
        assert_eq!(rows[0].row[0], Value::Int(3));
        assert!(rows[3].row[0].is_null(), "nulls sort first → last on desc");
    }

    #[test]
    fn project_computes_expressions() {
        let (cat, reg, id) = setup();
        let schema = Schema::new(vec![Column::new("doubled", DataType::Int)]);
        let plan = LogicalPlan::Project {
            input: Box::new(scan_plan(id, &cat)),
            exprs: vec![SExpr::Arith(
                insightnotes_storage::ArithOp::Mul,
                Box::new(SExpr::Column(0)),
                Box::new(SExpr::Literal(Value::Int(2))),
            )],
            schema,
            col_map: vec![Some(0), None],
        };
        let rows = Executor::new(&cat, &reg).execute(&plan).unwrap();
        assert_eq!(rows[1].row[0], Value::Int(4));
        assert_eq!(rows[0].row.arity(), 1);
    }

    #[test]
    fn trace_records_each_operator() {
        let (cat, reg, id) = setup();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan_plan(id, &cat)),
            predicate: SExpr::Literal(Value::Bool(true)),
        };
        let mut ex = Executor::with_trace(&cat, &reg);
        ex.execute(&plan).unwrap();
        let trace = ex.trace.unwrap();
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.steps[0].operator, "Scan");
        assert_eq!(trace.steps[1].operator, "Filter");
        assert_eq!(trace.steps[1].rows.len(), 3);
    }
}
