//! The under-the-hood execution trace (demo scenario 3).
//!
//! When attached, the executor snapshots every operator's output: the data
//! tuples *and* their summary objects rendered in the paper's notation
//! (`ClassBird1 [(Behavior, 14), …]`). Replaying the trace shows exactly
//! how Figure 2's pipeline transforms summaries step by step.

use crate::annotated::AnnotatedRow;
use crate::plan::logical::LogicalPlan;
use insightnotes_annotations::AnnotationStore;
use insightnotes_common::{AnnotationId, InstanceId};
use insightnotes_storage::Schema;
use insightnotes_summaries::{SummaryObject, SummaryRegistry};
use std::fmt;

/// One operator's snapshot.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Operator name (`Scan`, `Project`, `Join`, …).
    pub operator: String,
    /// Operator detail (binding, predicate, …) from the explain rendering.
    pub detail: String,
    /// The operator's output schema.
    pub schema: Schema,
    /// One rendered line per output row: values plus summary objects.
    pub rows: Vec<String>,
}

/// An ordered list of operator snapshots (leaf to root).
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// The snapshots, in execution (post-order) sequence.
    pub steps: Vec<TraceStep>,
}

impl TraceLog {
    /// Records one operator's output.
    pub fn record(
        &mut self,
        plan: &LogicalPlan,
        registry: &SummaryRegistry,
        rows: &[AnnotatedRow],
    ) {
        let explain = plan.explain();
        let first_line = explain.lines().next().unwrap_or("");
        let detail = first_line
            .strip_prefix(plan.name())
            .unwrap_or("")
            .trim()
            .to_string();
        self.steps.push(TraceStep {
            operator: plan.name().to_string(),
            detail,
            schema: plan.schema().clone(),
            rows: rows.iter().map(|r| render_row(r, registry)).collect(),
        });
    }
}

/// Renders a tuple with its summaries in the paper's notation.
pub fn render_row(arow: &AnnotatedRow, registry: &SummaryRegistry) -> String {
    render_row_resolved(arow, registry, None)
}

/// Renders a tuple, optionally resolving missing cluster-representative
/// previews from the raw store. A representative elected *during* query
/// processing (after its predecessor's annotation was projected out) has
/// no preview in the carried object — the paper's query pipeline never
/// reads raw content — so the display layer fills it in here.
pub fn render_row_resolved(
    arow: &AnnotatedRow,
    registry: &SummaryRegistry,
    store: Option<&AnnotationStore>,
) -> String {
    let mut out = arow.row.to_string();
    for (inst, obj) in &arow.summaries {
        out.push_str("  ");
        out.push_str(&instance_name(*inst, registry));
        out.push(' ');
        match (store, obj.as_ref()) {
            (Some(store), SummaryObject::Cluster(c)) => {
                out.push_str(&render_cluster_resolved(c, store));
            }
            _ => out.push_str(&obj.to_string()),
        }
    }
    out
}

fn render_cluster_resolved(
    cluster: &insightnotes_summaries::object::ClusterObject,
    store: &AnnotationStore,
) -> String {
    let parts: Vec<String> = cluster
        .groups()
        .iter()
        .map(|g| {
            let rep = g
                .representative
                .map_or_else(|| "-".into(), |r| format!("a{r}"));
            let preview = g.preview.clone().or_else(|| {
                let rep_id = g.representative?;
                let text = &store.get(AnnotationId::new(rep_id)).ok()?.body.text;
                Some(text.chars().take(60).collect())
            });
            match preview {
                Some(p) => format!("{{{} members, rep={rep} \"{p}\"}}", g.size),
                None => format!("{{{} members, rep={rep}}}", g.size),
            }
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

fn instance_name(id: InstanceId, registry: &SummaryRegistry) -> String {
    registry
        .instance(id)
        .map_or_else(|_| id.to_string(), |i| i.name().to_string())
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "── step {} ─ {} {}", i + 1, step.operator, step.detail)?;
            for row in &step.rows {
                writeln!(f, "   {row}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_storage::{Row, Value};

    #[test]
    fn render_bare_row_is_just_the_tuple() {
        let reg = SummaryRegistry::new();
        let r = AnnotatedRow::bare(Row::new(vec![Value::Int(1), Value::Text("x".into())]));
        assert_eq!(render_row(&r, &reg), "(1, x)");
    }

    #[test]
    fn display_lists_steps() {
        let mut log = TraceLog::default();
        log.steps.push(TraceStep {
            operator: "Scan".into(),
            detail: "r".into(),
            schema: Schema::default(),
            rows: vec!["(1)".into()],
        });
        let text = log.to_string();
        assert!(text.contains("step 1"));
        assert!(text.contains("Scan"));
        assert!(text.contains("(1)"));
    }
}
