//! The summary-aware join.
//!
//! Joining two annotated tuples produces the concatenated row and the
//! *merge* of their summary objects (Figure 2 step 3):
//!
//! - objects of an instance present on both sides merge without double
//!   counting annotations attached to both tuples;
//! - objects present on only one side propagate unchanged;
//! - the right side's column signatures are shifted by the left arity so
//!   they speak the output schema's ordinals.
//!
//! Equi-join conjuncts (`left.col = right.col`) are detected and executed
//! as a hash join; any residual predicate is applied per candidate pair.
//!
//! Under parallel execution the equi path becomes a **partitioned hash
//! join**: build keys are computed morsel-parallel, rows are split into
//! one partition per worker by a deterministic hash of the key, the
//! per-partition hash tables build in parallel, and probing runs
//! morsel-parallel over the left side (each probe row hashes straight to
//! its partition's table). Partitioning is a pure function of the data,
//! so output order and content match the serial hash join exactly.

use super::par;
use crate::annotated::AnnotatedRow;
use crate::expr::SExpr;
use insightnotes_common::Result;
use insightnotes_storage::CmpOp;
use std::collections::HashMap;

/// Joins two annotated row sets. `left_arity` is the arity of the left
/// schema (right signatures shift by it); `threads` caps worker
/// parallelism (1 = serial).
pub fn join(
    left: Vec<AnnotatedRow>,
    right: Vec<AnnotatedRow>,
    left_arity: usize,
    predicate: Option<&SExpr>,
    threads: usize,
) -> Result<Vec<AnnotatedRow>> {
    // Shift right-side summary signatures once, up front.
    let shift = left_arity as u16;
    let right: Vec<AnnotatedRow> = par::map_morsels(right, threads, &|chunk, _| {
        Ok(chunk
            .into_iter()
            .map(|mut r| {
                r.project_summaries(&|c| Some(c + shift));
                r
            })
            .collect())
    })?;

    let (equi, residual) = split_equi(predicate, left_arity);
    if equi.is_empty() {
        nested_loop(left, &right, residual.as_ref(), threads)
    } else if threads > 1 {
        partitioned_hash_join(left, right, &equi, residual.as_ref(), threads)
    } else {
        hash_join(left, &right, &equi, residual.as_ref())
    }
}

/// Extracts `(left_col, right_col)` equality pairs from the conjunction;
/// returns them plus the residual predicate (conjuncts that are not such
/// equalities). Shared with the raw-propagation baseline so both engines
/// run the same join algorithm.
pub(crate) fn split_equi(
    predicate: Option<&SExpr>,
    left_arity: usize,
) -> (Vec<(usize, usize)>, Option<SExpr>) {
    let Some(pred) = predicate else {
        return (Vec::new(), None);
    };
    let mut conjuncts = Vec::new();
    flatten_and(pred, &mut conjuncts);
    let mut equi = Vec::new();
    let mut residual: Option<SExpr> = None;
    for c in conjuncts {
        if let SExpr::Cmp(CmpOp::Eq, l, r) = &c {
            if let (SExpr::Column(a), SExpr::Column(b)) = (l.as_ref(), r.as_ref()) {
                let (a, b) = (*a, *b);
                if a < left_arity && b >= left_arity {
                    equi.push((a, b - left_arity));
                    continue;
                }
                if b < left_arity && a >= left_arity {
                    equi.push((b, a - left_arity));
                    continue;
                }
            }
        }
        residual = Some(match residual {
            Some(prev) => SExpr::And(Box::new(prev), Box::new(c)),
            None => c,
        });
    }
    (equi, residual)
}

fn flatten_and(e: &SExpr, out: &mut Vec<SExpr>) {
    match e {
        SExpr::And(l, r) => {
            flatten_and(l, out);
            flatten_and(r, out);
        }
        other => out.push(other.clone()),
    }
}

fn combine(l: &AnnotatedRow, r: &AnnotatedRow) -> Result<AnnotatedRow> {
    let mut out = AnnotatedRow {
        row: l.row.concat(&r.row),
        summaries: l.summaries.clone(),
    };
    out.merge_summaries(r)?;
    Ok(out)
}

fn nested_loop(
    left: Vec<AnnotatedRow>,
    right: &[AnnotatedRow],
    residual: Option<&SExpr>,
    threads: usize,
) -> Result<Vec<AnnotatedRow>> {
    // Morsel-parallel over the outer side; the left-major output order is
    // identical at every thread count.
    par::map_morsels(left, threads, &|chunk, _| {
        let mut out = Vec::new();
        for l in &chunk {
            for r in right {
                let candidate = combine(l, r)?;
                if match residual {
                    Some(p) => p.satisfied(&candidate)?,
                    None => true,
                } {
                    out.push(candidate);
                }
            }
        }
        Ok(out)
    })
}

fn hash_join(
    left: Vec<AnnotatedRow>,
    right: &[AnnotatedRow],
    equi: &[(usize, usize)],
    residual: Option<&SExpr>,
) -> Result<Vec<AnnotatedRow>> {
    // Build on the right side.
    let right_cols: Vec<usize> = equi.iter().map(|&(_, r)| r).collect();
    let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, r) in right.iter().enumerate() {
        if right_cols.iter().any(|&c| r.row[c].is_null()) {
            continue; // NULL keys never match
        }
        table
            .entry(r.row.group_key(&right_cols))
            .or_default()
            .push(i);
    }
    let left_cols: Vec<usize> = equi.iter().map(|&(l, _)| l).collect();
    let mut out = Vec::new();
    for l in &left {
        if left_cols.iter().any(|&c| l.row[c].is_null()) {
            continue;
        }
        let key = l.row.group_key(&left_cols);
        if let Some(matches) = table.get(&key) {
            for &ri in matches {
                let candidate = combine(l, &right[ri])?;
                if match residual {
                    Some(p) => p.satisfied(&candidate)?,
                    None => true,
                } {
                    out.push(candidate);
                }
            }
        }
    }
    Ok(out)
}

/// Deterministic partition hash (FNV-1a) over a join key's bytes. Must
/// be a pure function of the key so build and probe agree and results
/// are reproducible across runs and thread counts.
fn partition_of(key: &[u8], partitions: usize) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % partitions as u64) as usize
}

/// The parallel equi path: keys morsel-parallel, one partition per
/// worker, per-partition tables built in parallel, probe morsel-parallel.
/// Within a partition, build indices stay in right-input order, so the
/// per-key match lists — and with them the output — equal the serial
/// [`hash_join`]'s.
fn partitioned_hash_join(
    left: Vec<AnnotatedRow>,
    right: Vec<AnnotatedRow>,
    equi: &[(usize, usize)],
    residual: Option<&SExpr>,
    threads: usize,
) -> Result<Vec<AnnotatedRow>> {
    let right_cols: Vec<usize> = equi.iter().map(|&(_, r)| r).collect();
    let indices: Vec<usize> = (0..right.len()).collect();
    let keys: Vec<Option<Vec<u8>>> = par::map_morsels(indices, threads, &|chunk, _| {
        Ok(chunk
            .into_iter()
            .map(|i| {
                let r = &right[i];
                if right_cols.iter().any(|&c| r.row[c].is_null()) {
                    None // NULL keys never match
                } else {
                    Some(r.row.group_key(&right_cols))
                }
            })
            .collect())
    })?;

    let parts_n = threads;
    let mut parts: Vec<Vec<(Vec<u8>, usize)>> = (0..parts_n).map(|_| Vec::new()).collect();
    for (i, key) in keys.into_iter().enumerate() {
        if let Some(key) = key {
            let p = partition_of(&key, parts_n);
            parts[p].push((key, i));
        }
    }

    let tables: Vec<HashMap<Vec<u8>, Vec<usize>>> = par::map_items(parts, threads, &|part, _| {
        let mut table: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(part.len());
        for (key, i) in part {
            table.entry(key).or_default().push(i);
        }
        Ok(table)
    })?;

    let left_cols: Vec<usize> = equi.iter().map(|&(l, _)| l).collect();
    par::map_morsels(left, threads, &|chunk, _| {
        let mut out = Vec::new();
        for l in &chunk {
            if left_cols.iter().any(|&c| l.row[c].is_null()) {
                continue;
            }
            let key = l.row.group_key(&left_cols);
            if let Some(matches) = tables[partition_of(&key, parts_n)].get(&key) {
                for &ri in matches {
                    let candidate = combine(l, &right[ri])?;
                    if match residual {
                        Some(p) => p.satisfied(&candidate)?,
                        None => true,
                    } {
                        out.push(candidate);
                    }
                }
            }
        }
        Ok(out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_annotations::ColSig;
    use insightnotes_common::InstanceId;
    use insightnotes_storage::{Row, Value};
    use insightnotes_summaries::{object::ClassifierObject, Contribution, SummaryObject};
    use std::sync::Arc;

    fn classifier(ids: &[u64], arity: usize) -> SummaryObject {
        let labels: Arc<[String]> = vec!["L".to_string()].into();
        let mut obj = SummaryObject::Classifier(ClassifierObject::new(labels));
        for &id in ids {
            obj.apply(id, ColSig::whole_row(arity), &Contribution::Label(0))
                .unwrap();
        }
        obj
    }

    fn arow(vals: Vec<Value>, ids: &[u64]) -> AnnotatedRow {
        let arity = vals.len();
        let summaries = if ids.is_empty() {
            vec![]
        } else {
            vec![(InstanceId(1), classifier(ids, arity))]
        };
        AnnotatedRow::new(Row::new(vals), summaries)
    }

    fn eq_pred(l: usize, r: usize) -> SExpr {
        SExpr::Cmp(
            CmpOp::Eq,
            Box::new(SExpr::Column(l)),
            Box::new(SExpr::Column(r)),
        )
    }

    #[test]
    fn hash_join_matches_equal_keys() {
        let left = vec![
            arow(vec![Value::Int(1), Value::Int(10)], &[]),
            arow(vec![Value::Int(2), Value::Int(20)], &[]),
        ];
        let right = vec![
            arow(vec![Value::Int(1), Value::Text("a".into())], &[]),
            arow(vec![Value::Int(3), Value::Text("b".into())], &[]),
        ];
        let out = join(left, right, 2, Some(&eq_pred(0, 2)), 1).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].row.arity(), 4);
        assert_eq!(out[0].row[3], Value::Text("a".into()));
    }

    #[test]
    fn null_keys_never_match() {
        let left = vec![arow(vec![Value::Null], &[])];
        let right = vec![arow(vec![Value::Null], &[])];
        let out = join(left, right, 1, Some(&eq_pred(0, 1)), 1).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn cross_join_without_predicate() {
        let left = vec![
            arow(vec![Value::Int(1)], &[]),
            arow(vec![Value::Int(2)], &[]),
        ];
        let right = vec![arow(vec![Value::Int(3)], &[])];
        let out = join(left, right, 1, None, 1).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn summaries_merge_without_double_counting() {
        // Figure 2: 20 + 7 annotations with 5 shared → 22 after merge.
        let left = vec![arow(vec![Value::Int(1)], &(0..20).collect::<Vec<_>>())];
        let right = vec![arow(vec![Value::Int(1)], &(15..22).collect::<Vec<_>>())];
        let out = join(left, right, 1, Some(&eq_pred(0, 1)), 1).unwrap();
        assert_eq!(out.len(), 1);
        let c = out[0]
            .summary(InstanceId(1))
            .unwrap()
            .as_classifier()
            .unwrap();
        assert_eq!(c.count(0), 22);
    }

    #[test]
    fn one_sided_instances_propagate() {
        let mut left_row = arow(vec![Value::Int(1)], &[1, 2]);
        // A second instance only on the left.
        left_row
            .summaries
            .push((InstanceId(2), Arc::new(classifier(&[9], 1))));
        let right = vec![arow(vec![Value::Int(1)], &[3])];
        let out = join(vec![left_row], right, 1, Some(&eq_pred(0, 1)), 1).unwrap();
        assert_eq!(out[0].summaries.len(), 2);
        assert_eq!(out[0].summary(InstanceId(1)).unwrap().annotation_count(), 3);
        assert_eq!(out[0].summary(InstanceId(2)).unwrap().annotation_count(), 1);
    }

    #[test]
    fn residual_predicate_filters_candidates() {
        let left = vec![
            arow(vec![Value::Int(1), Value::Int(5)], &[]),
            arow(vec![Value::Int(1), Value::Int(50)], &[]),
        ];
        let right = vec![arow(vec![Value::Int(1)], &[])];
        // a = c AND b > 10: equality hashed, inequality residual.
        let pred = SExpr::And(
            Box::new(eq_pred(0, 2)),
            Box::new(SExpr::Cmp(
                CmpOp::Gt,
                Box::new(SExpr::Column(1)),
                Box::new(SExpr::Literal(Value::Int(10))),
            )),
        );
        let out = join(left, right, 2, Some(&pred), 1).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].row[1], Value::Int(50));
    }

    #[test]
    fn right_signatures_shift_into_output_ordinals() {
        // Right annotation on its col 0 must end up on output col 1;
        // projecting output col 0 away must keep it.
        let left = vec![arow(vec![Value::Int(1)], &[])];
        let right = vec![arow(vec![Value::Int(1)], &[7])];
        let out = join(left, right, 1, None, 1).unwrap();
        let mut merged = out.into_iter().next().unwrap();
        merged.project_summaries(&|c| if c == 1 { Some(0) } else { None });
        assert_eq!(
            merged.summary(InstanceId(1)).unwrap().annotation_count(),
            1,
            "right-side annotation survives projection of left columns"
        );
    }
}
