//! Grouping, aggregation, and duplicate elimination.
//!
//! Both operators coalesce multiple input tuples into one output tuple,
//! and in InsightNotes the output tuple's summary objects are the *merge*
//! of the coalesced tuples' objects. For GROUP BY, each member's summaries
//! are first projected onto the grouping columns (project-before-merge
//! again — the aggregate result columns have no annotation provenance).

use crate::annotated::AnnotatedRow;
use crate::plan::logical::AggSpec;
use insightnotes_common::{Error, Result};
use insightnotes_sql::AggFunc;
use insightnotes_storage::{Row, Value};
use std::collections::HashMap;

/// One in-flight aggregate computation.
#[derive(Debug, Clone)]
enum Accumulator {
    Count(i64),
    Sum { total: f64, seen: bool },
    Avg { total: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Accumulator {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::Sum {
                total: 0.0,
                seen: false,
            },
            AggFunc::Avg => Accumulator::Avg { total: 0.0, n: 0 },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
        }
    }

    fn update(&mut self, value: Option<Value>) -> Result<()> {
        match self {
            Accumulator::Count(n) => {
                // COUNT(*) counts rows (value None); COUNT(e) skips NULLs.
                match value {
                    None => *n += 1,
                    Some(v) if !v.is_null() => *n += 1,
                    _ => {}
                }
            }
            Accumulator::Sum { total, seen } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *total += v
                            .as_f64()
                            .ok_or_else(|| Error::Type(format!("SUM over non-numeric {v:?}")))?;
                        *seen = true;
                    }
                }
            }
            Accumulator::Avg { total, n } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *total += v
                            .as_f64()
                            .ok_or_else(|| Error::Type(format!("AVG over non-numeric {v:?}")))?;
                        *n += 1;
                    }
                }
            }
            Accumulator::Min(best) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match best {
                            Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Less),
                            None => true,
                        };
                        if replace {
                            *best = Some(v);
                        }
                    }
                }
            }
            Accumulator::Max(best) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match best {
                            Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Greater),
                            None => true,
                        };
                        if replace {
                            *best = Some(v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Folds another accumulator of the same function into this one
    /// (partial-aggregate merge). Exact for COUNT/MIN/MAX and for
    /// SUM/AVG over integers; float SUM/AVG merge is subject to the
    /// usual addition reordering.
    fn absorb(&mut self, other: Accumulator) -> Result<()> {
        match (self, other) {
            (Accumulator::Count(n), Accumulator::Count(m)) => *n += m,
            (Accumulator::Sum { total, seen }, Accumulator::Sum { total: t, seen: s }) => {
                *total += t;
                *seen |= s;
            }
            (Accumulator::Avg { total, n }, Accumulator::Avg { total: t, n: m }) => {
                *total += t;
                *n += m;
            }
            (acc @ Accumulator::Min(_), Accumulator::Min(v))
            | (acc @ Accumulator::Max(_), Accumulator::Max(v)) => {
                if let Some(v) = v {
                    acc.update(Some(v))?;
                }
            }
            _ => {
                return Err(Error::Execution(
                    "partial aggregates disagree on function".into(),
                ))
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(n),
            Accumulator::Sum { total, seen } => {
                if seen {
                    Value::Float(total)
                } else {
                    Value::Null
                }
            }
            Accumulator::Avg { total, n } => {
                if n > 0 {
                    Value::Float(total / n as f64)
                } else {
                    Value::Null
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

struct Group {
    key_row: Vec<Value>,
    accumulators: Vec<Accumulator>,
    carrier: AnnotatedRow,
}

/// Partial grouping state: the groups seen so far, in first-seen order.
/// One state per input morsel under parallel execution; partials merge
/// left-to-right in morsel order, which reproduces the serial executor's
/// first-seen group order exactly.
struct GroupState {
    order: Vec<Vec<u8>>,
    groups: HashMap<Vec<u8>, Group>,
}

impl GroupState {
    fn new() -> Self {
        Self {
            order: Vec::new(),
            groups: HashMap::new(),
        }
    }

    fn fold_row(
        &mut self,
        mut r: AnnotatedRow,
        group_cols: &[usize],
        aggs: &[AggSpec],
    ) -> Result<()> {
        let key = r.row.group_key(group_cols);
        // Project member summaries onto the grouping columns, speaking
        // output ordinals.
        r.project_summaries(&|c| {
            group_cols
                .iter()
                .position(|&g| g == c as usize)
                .map(|p| p as u16)
        });
        let group = match self.groups.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                self.order.push(key);
                v.insert(Group {
                    key_row: group_cols.iter().map(|&c| r.row[c].clone()).collect(),
                    accumulators: aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                    carrier: AnnotatedRow::bare(Row::default()),
                })
            }
        };
        for (acc, spec) in group.accumulators.iter_mut().zip(aggs) {
            let value = spec.arg.as_ref().map(|e| e.eval(&r)).transpose()?;
            acc.update(value)?;
        }
        group.carrier.merge_summaries(&r)
    }

    /// Merges a later partial into this one: matching groups absorb
    /// accumulators and merge carriers (the no-double-count algebra);
    /// new groups append in the partial's first-seen order.
    fn absorb(&mut self, other: GroupState) -> Result<()> {
        let mut groups = other.groups;
        for key in other.order {
            let theirs = groups.remove(&key).expect("key recorded");
            match self.groups.entry(key.clone()) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    let mine = o.into_mut();
                    for (acc, t) in mine.accumulators.iter_mut().zip(theirs.accumulators) {
                        acc.absorb(t)?;
                    }
                    mine.carrier.merge_summaries(&theirs.carrier)?;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    self.order.push(key);
                    v.insert(theirs);
                }
            }
        }
        Ok(())
    }

    fn finish(mut self, group_cols: &[usize], aggs: &[AggSpec]) -> Result<Vec<AnnotatedRow>> {
        // SQL: a global aggregate over empty input still yields one row.
        if self.groups.is_empty() && group_cols.is_empty() {
            let values: Vec<Value> = aggs
                .iter()
                .map(|a| Accumulator::new(a.func).finish())
                .collect();
            return Ok(vec![AnnotatedRow::bare(Row::new(values))]);
        }
        let mut out = Vec::with_capacity(self.order.len());
        for key in self.order {
            let group = self.groups.remove(&key).expect("key recorded");
            let mut values = group.key_row;
            values.extend(group.accumulators.into_iter().map(Accumulator::finish));
            out.push(AnnotatedRow {
                row: Row::new(values),
                summaries: group.carrier.summaries,
            });
        }
        Ok(out)
    }
}

/// Groups rows and computes aggregates. Output rows are
/// `[group values…, aggregate values…]`; output summaries are the merge of
/// member summaries projected onto the grouping columns. With no grouping
/// columns, a single global group is produced (even over empty input, per
/// SQL semantics).
pub fn aggregate(
    rows: Vec<AnnotatedRow>,
    group_cols: &[usize],
    aggs: &[AggSpec],
) -> Result<Vec<AnnotatedRow>> {
    let mut state = GroupState::new();
    for r in rows {
        state.fold_row(r, group_cols, aggs)?;
    }
    state.finish(group_cols, aggs)
}

/// Parallel aggregation: each input morsel folds into a partial
/// [`GroupState`]; the partials merge left-to-right in morsel order.
/// Group output order and the summary algebra match the serial path;
/// float SUM/AVG may differ by addition reordering.
pub fn aggregate_parallel(
    rows: Vec<AnnotatedRow>,
    group_cols: &[usize],
    aggs: &[AggSpec],
    threads: usize,
) -> Result<Vec<AnnotatedRow>> {
    let partials = super::par::fold_morsels(rows, threads, &|chunk| {
        let mut state = GroupState::new();
        for r in chunk {
            state.fold_row(r, group_cols, aggs)?;
        }
        Ok(state)
    })?;
    let mut merged = GroupState::new();
    for partial in partials {
        merged.absorb(partial)?;
    }
    merged.finish(group_cols, aggs)
}

/// Partial duplicate-elimination state: surviving rows with their keys,
/// in first-seen order.
struct DistinctState {
    seen: HashMap<Vec<u8>, usize>,
    out: Vec<AnnotatedRow>,
    keys: Vec<Vec<u8>>,
}

impl DistinctState {
    fn new() -> Self {
        Self {
            seen: HashMap::new(),
            out: Vec::new(),
            keys: Vec::new(),
        }
    }

    fn fold_row(&mut self, r: AnnotatedRow, key: Vec<u8>) -> Result<()> {
        match self.seen.get(&key) {
            Some(&i) => self.out[i].merge_summaries(&r)?,
            None => {
                self.seen.insert(key.clone(), self.out.len());
                self.out.push(r);
                self.keys.push(key);
            }
        }
        Ok(())
    }
}

fn row_key(r: &AnnotatedRow) -> Vec<u8> {
    let all: Vec<usize> = (0..r.row.arity()).collect();
    r.row.group_key(&all)
}

/// Duplicate elimination: the first occurrence survives and absorbs the
/// summaries of every eliminated duplicate.
pub fn distinct(rows: Vec<AnnotatedRow>) -> Result<Vec<AnnotatedRow>> {
    let mut state = DistinctState::new();
    for r in rows {
        let key = row_key(&r);
        state.fold_row(r, key)?;
    }
    Ok(state.out)
}

/// Parallel duplicate elimination: per-morsel partials merged in morsel
/// order, reproducing the serial first-occurrence order.
pub fn distinct_parallel(rows: Vec<AnnotatedRow>, threads: usize) -> Result<Vec<AnnotatedRow>> {
    let partials = super::par::fold_morsels(rows, threads, &|chunk| {
        let mut state = DistinctState::new();
        for r in chunk {
            let key = row_key(&r);
            state.fold_row(r, key)?;
        }
        Ok(state)
    })?;
    let mut merged = DistinctState::new();
    for partial in partials {
        for (r, key) in partial.out.into_iter().zip(partial.keys) {
            merged.fold_row(r, key)?;
        }
    }
    Ok(merged.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::SExpr;
    use insightnotes_annotations::ColSig;
    use insightnotes_common::InstanceId;
    use insightnotes_summaries::{object::ClassifierObject, Contribution, SummaryObject};
    use std::sync::Arc;

    fn arow(vals: Vec<Value>, ids: &[u64]) -> AnnotatedRow {
        let arity = vals.len();
        let summaries = if ids.is_empty() {
            vec![]
        } else {
            let labels: Arc<[String]> = vec!["L".to_string()].into();
            let mut obj = SummaryObject::Classifier(ClassifierObject::new(labels));
            for &id in ids {
                obj.apply(id, ColSig::whole_row(arity), &Contribution::Label(0))
                    .unwrap();
            }
            vec![(InstanceId(1), obj)]
        };
        AnnotatedRow::new(Row::new(vals), summaries)
    }

    fn spec(func: AggFunc, col: Option<usize>) -> AggSpec {
        AggSpec {
            func,
            arg: col.map(SExpr::Column),
        }
    }

    #[test]
    fn groups_and_computes_all_aggregates() {
        let rows = vec![
            arow(vec![Value::Text("a".into()), Value::Int(1)], &[]),
            arow(vec![Value::Text("a".into()), Value::Int(3)], &[]),
            arow(vec![Value::Text("b".into()), Value::Int(10)], &[]),
        ];
        let out = aggregate(
            rows,
            &[0],
            &[
                spec(AggFunc::Count, None),
                spec(AggFunc::Sum, Some(1)),
                spec(AggFunc::Avg, Some(1)),
                spec(AggFunc::Min, Some(1)),
                spec(AggFunc::Max, Some(1)),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let a = &out[0].row;
        assert_eq!(a[0], Value::Text("a".into()));
        assert_eq!(a[1], Value::Int(2));
        assert_eq!(a[2], Value::Float(4.0));
        assert_eq!(a[3], Value::Float(2.0));
        assert_eq!(a[4], Value::Int(1));
        assert_eq!(a[5], Value::Int(3));
    }

    #[test]
    fn count_expr_skips_nulls_but_count_star_does_not() {
        let rows = vec![arow(vec![Value::Int(1)], &[]), arow(vec![Value::Null], &[])];
        let out = aggregate(
            rows,
            &[],
            &[spec(AggFunc::Count, None), spec(AggFunc::Count, Some(0))],
        )
        .unwrap();
        assert_eq!(out[0].row[0], Value::Int(2));
        assert_eq!(out[0].row[1], Value::Int(1));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let out = aggregate(
            vec![],
            &[],
            &[spec(AggFunc::Count, None), spec(AggFunc::Sum, Some(0))],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].row[0], Value::Int(0));
        assert!(out[0].row[1].is_null());
    }

    #[test]
    fn grouped_summaries_merge_without_double_count() {
        let rows = vec![
            arow(vec![Value::Text("a".into())], &[1, 2]),
            arow(vec![Value::Text("a".into())], &[2, 3]),
            arow(vec![Value::Text("b".into())], &[9]),
        ];
        let out = aggregate(rows, &[0], &[spec(AggFunc::Count, None)]).unwrap();
        assert_eq!(
            out[0].summary(InstanceId(1)).unwrap().annotation_count(),
            3,
            "annotation 2 counted once across group members"
        );
        assert_eq!(out[1].summary(InstanceId(1)).unwrap().annotation_count(), 1);
    }

    #[test]
    fn distinct_folds_duplicate_summaries() {
        let rows = vec![
            arow(vec![Value::Int(1)], &[1]),
            arow(vec![Value::Int(1)], &[2]),
            arow(vec![Value::Int(2)], &[3]),
        ];
        let out = distinct(rows).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].summary(InstanceId(1)).unwrap().annotation_count(), 2);
    }

    #[test]
    fn distinct_groups_nulls_together() {
        let rows = vec![arow(vec![Value::Null], &[]), arow(vec![Value::Null], &[])];
        assert_eq!(distinct(rows).unwrap().len(), 1);
    }
}
