//! Grouping, aggregation, and duplicate elimination.
//!
//! Both operators coalesce multiple input tuples into one output tuple,
//! and in InsightNotes the output tuple's summary objects are the *merge*
//! of the coalesced tuples' objects. For GROUP BY, each member's summaries
//! are first projected onto the grouping columns (project-before-merge
//! again — the aggregate result columns have no annotation provenance).

use crate::annotated::AnnotatedRow;
use crate::plan::logical::AggSpec;
use insightnotes_common::{Error, Result};
use insightnotes_sql::AggFunc;
use insightnotes_storage::{Row, Value};
use std::collections::HashMap;

/// One in-flight aggregate computation.
#[derive(Debug, Clone)]
enum Accumulator {
    Count(i64),
    Sum { total: f64, seen: bool },
    Avg { total: f64, n: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Accumulator {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::Sum {
                total: 0.0,
                seen: false,
            },
            AggFunc::Avg => Accumulator::Avg { total: 0.0, n: 0 },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
        }
    }

    fn update(&mut self, value: Option<Value>) -> Result<()> {
        match self {
            Accumulator::Count(n) => {
                // COUNT(*) counts rows (value None); COUNT(e) skips NULLs.
                match value {
                    None => *n += 1,
                    Some(v) if !v.is_null() => *n += 1,
                    _ => {}
                }
            }
            Accumulator::Sum { total, seen } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *total += v
                            .as_f64()
                            .ok_or_else(|| Error::Type(format!("SUM over non-numeric {v:?}")))?;
                        *seen = true;
                    }
                }
            }
            Accumulator::Avg { total, n } => {
                if let Some(v) = value {
                    if !v.is_null() {
                        *total += v
                            .as_f64()
                            .ok_or_else(|| Error::Type(format!("AVG over non-numeric {v:?}")))?;
                        *n += 1;
                    }
                }
            }
            Accumulator::Min(best) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match best {
                            Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Less),
                            None => true,
                        };
                        if replace {
                            *best = Some(v);
                        }
                    }
                }
            }
            Accumulator::Max(best) => {
                if let Some(v) = value {
                    if !v.is_null() {
                        let replace = match best {
                            Some(b) => v.sql_cmp(b) == Some(std::cmp::Ordering::Greater),
                            None => true,
                        };
                        if replace {
                            *best = Some(v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(n),
            Accumulator::Sum { total, seen } => {
                if seen {
                    Value::Float(total)
                } else {
                    Value::Null
                }
            }
            Accumulator::Avg { total, n } => {
                if n > 0 {
                    Value::Float(total / n as f64)
                } else {
                    Value::Null
                }
            }
            Accumulator::Min(v) | Accumulator::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

struct Group {
    key_row: Vec<Value>,
    accumulators: Vec<Accumulator>,
    carrier: AnnotatedRow,
}

/// Groups rows and computes aggregates. Output rows are
/// `[group values…, aggregate values…]`; output summaries are the merge of
/// member summaries projected onto the grouping columns. With no grouping
/// columns, a single global group is produced (even over empty input, per
/// SQL semantics).
pub fn aggregate(
    rows: Vec<AnnotatedRow>,
    group_cols: &[usize],
    aggs: &[AggSpec],
) -> Result<Vec<AnnotatedRow>> {
    let mut order: Vec<Vec<u8>> = Vec::new();
    let mut groups: HashMap<Vec<u8>, Group> = HashMap::new();
    let group_cols_owned = group_cols.to_vec();

    for mut r in rows {
        let key = r.row.group_key(group_cols);
        // Project member summaries onto the grouping columns, speaking
        // output ordinals.
        let cols = group_cols_owned.clone();
        r.project_summaries(&move |c| cols.iter().position(|&g| g == c as usize).map(|p| p as u16));
        let entry = groups.entry(key.clone());
        let group = match entry {
            std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                order.push(key);
                v.insert(Group {
                    key_row: group_cols.iter().map(|&c| r.row[c].clone()).collect(),
                    accumulators: aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                    carrier: AnnotatedRow::bare(Row::default()),
                })
            }
        };
        for (acc, spec) in group.accumulators.iter_mut().zip(aggs) {
            let value = spec.arg.as_ref().map(|e| e.eval(&r)).transpose()?;
            acc.update(value)?;
        }
        group.carrier.merge_summaries(&r)?;
    }

    // SQL: a global aggregate over empty input still yields one row.
    if groups.is_empty() && group_cols.is_empty() {
        let values: Vec<Value> = aggs
            .iter()
            .map(|a| Accumulator::new(a.func).finish())
            .collect();
        return Ok(vec![AnnotatedRow::bare(Row::new(values))]);
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let group = groups.remove(&key).expect("key recorded");
        let mut values = group.key_row;
        values.extend(group.accumulators.into_iter().map(Accumulator::finish));
        out.push(AnnotatedRow {
            row: Row::new(values),
            summaries: group.carrier.summaries,
        });
    }
    Ok(out)
}

/// Duplicate elimination: the first occurrence survives and absorbs the
/// summaries of every eliminated duplicate.
pub fn distinct(rows: Vec<AnnotatedRow>) -> Result<Vec<AnnotatedRow>> {
    let mut seen: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut out: Vec<AnnotatedRow> = Vec::new();
    for r in rows {
        let all: Vec<usize> = (0..r.row.arity()).collect();
        let key = r.row.group_key(&all);
        match seen.get(&key) {
            Some(&i) => out[i].merge_summaries(&r)?,
            None => {
                seen.insert(key, out.len());
                out.push(r);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::SExpr;
    use insightnotes_annotations::ColSig;
    use insightnotes_common::InstanceId;
    use insightnotes_summaries::{object::ClassifierObject, Contribution, SummaryObject};
    use std::sync::Arc;

    fn arow(vals: Vec<Value>, ids: &[u64]) -> AnnotatedRow {
        let arity = vals.len();
        let summaries = if ids.is_empty() {
            vec![]
        } else {
            let labels: Arc<[String]> = vec!["L".to_string()].into();
            let mut obj = SummaryObject::Classifier(ClassifierObject::new(labels));
            for &id in ids {
                obj.apply(id, ColSig::whole_row(arity), &Contribution::Label(0))
                    .unwrap();
            }
            vec![(InstanceId(1), obj)]
        };
        AnnotatedRow::new(Row::new(vals), summaries)
    }

    fn spec(func: AggFunc, col: Option<usize>) -> AggSpec {
        AggSpec {
            func,
            arg: col.map(SExpr::Column),
        }
    }

    #[test]
    fn groups_and_computes_all_aggregates() {
        let rows = vec![
            arow(vec![Value::Text("a".into()), Value::Int(1)], &[]),
            arow(vec![Value::Text("a".into()), Value::Int(3)], &[]),
            arow(vec![Value::Text("b".into()), Value::Int(10)], &[]),
        ];
        let out = aggregate(
            rows,
            &[0],
            &[
                spec(AggFunc::Count, None),
                spec(AggFunc::Sum, Some(1)),
                spec(AggFunc::Avg, Some(1)),
                spec(AggFunc::Min, Some(1)),
                spec(AggFunc::Max, Some(1)),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let a = &out[0].row;
        assert_eq!(a[0], Value::Text("a".into()));
        assert_eq!(a[1], Value::Int(2));
        assert_eq!(a[2], Value::Float(4.0));
        assert_eq!(a[3], Value::Float(2.0));
        assert_eq!(a[4], Value::Int(1));
        assert_eq!(a[5], Value::Int(3));
    }

    #[test]
    fn count_expr_skips_nulls_but_count_star_does_not() {
        let rows = vec![arow(vec![Value::Int(1)], &[]), arow(vec![Value::Null], &[])];
        let out = aggregate(
            rows,
            &[],
            &[spec(AggFunc::Count, None), spec(AggFunc::Count, Some(0))],
        )
        .unwrap();
        assert_eq!(out[0].row[0], Value::Int(2));
        assert_eq!(out[0].row[1], Value::Int(1));
    }

    #[test]
    fn global_aggregate_over_empty_input_yields_one_row() {
        let out = aggregate(
            vec![],
            &[],
            &[spec(AggFunc::Count, None), spec(AggFunc::Sum, Some(0))],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].row[0], Value::Int(0));
        assert!(out[0].row[1].is_null());
    }

    #[test]
    fn grouped_summaries_merge_without_double_count() {
        let rows = vec![
            arow(vec![Value::Text("a".into())], &[1, 2]),
            arow(vec![Value::Text("a".into())], &[2, 3]),
            arow(vec![Value::Text("b".into())], &[9]),
        ];
        let out = aggregate(rows, &[0], &[spec(AggFunc::Count, None)]).unwrap();
        assert_eq!(
            out[0].summary(InstanceId(1)).unwrap().annotation_count(),
            3,
            "annotation 2 counted once across group members"
        );
        assert_eq!(out[1].summary(InstanceId(1)).unwrap().annotation_count(), 1);
    }

    #[test]
    fn distinct_folds_duplicate_summaries() {
        let rows = vec![
            arow(vec![Value::Int(1)], &[1]),
            arow(vec![Value::Int(1)], &[2]),
            arow(vec![Value::Int(2)], &[3]),
        ];
        let out = distinct(rows).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].summary(InstanceId(1)).unwrap().annotation_count(), 2);
    }

    #[test]
    fn distinct_groups_nulls_together() {
        let rows = vec![arow(vec![Value::Null], &[]), arow(vec![Value::Null], &[])];
        assert_eq!(distinct(rows).unwrap().len(), 1);
    }
}
