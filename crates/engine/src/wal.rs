//! Write-ahead log: the durability backbone behind `insightd`'s acks.
//!
//! The engine's write entry points append one **logical** record — the
//! SQL source text of a script, the statement texts of one group-committed
//! annotation batch, or a typed row-annotation batch — *before* executing
//! it, and the server releases a client's acknowledgement only after the
//! log has been fsynced (see [`SyncPolicy`]). Recovery
//! ([`crate::db::Database::recover`]) loads the latest snapshot and
//! re-executes the log tail through the very same execution paths, which
//! makes the recovered state byte-identical to a serial replay: ids,
//! logical-clock ticks, and cluster-vocabulary interning order all come
//! out of the replayed execution, not out of the log.
//!
//! ## File format
//!
//! ```text
//! header:  "INWL" | u32 version | u64 epoch
//! record:  u32 payload_len | u32 crc32(payload) | payload
//! ```
//!
//! All integers little-endian. The `epoch` pairs the log with the
//! snapshot it extends: a checkpoint writes a durable snapshot stamped
//! with `epoch + 1` and only then rotates the log to the new epoch, so a
//! crash between the two steps leaves a stale log (`log epoch <
//! snapshot epoch`) that recovery discards instead of double-applying.
//! Payloads use the workspace codec ([`insightnotes_common::codec`]).
//!
//! Recovery scans the record frames, verifying length bounds, CRC, and
//! strict payload decode; the first violation is treated as a torn tail —
//! the file is truncated there and the scan stops. Corruption *behind*
//! a valid tail is indistinguishable from a torn append by design: both
//! lose the suffix, never the prefix.
//!
//! ## Crash points
//!
//! Setting `INSIGHTNOTES_CRASH_POINT` to one of the names passed to
//! [`crash_point`] makes the process abort (SIGABRT, no unwinding, no
//! destructors — as close to `kill -9` as an in-process hook gets) the
//! moment that point is reached. The fault-injection tests drive every
//! append/fsync/rename/rotate window through this hook.

use insightnotes_common::codec::{Decoder, Encodable, Encoder};
use insightnotes_common::{crc32, Error, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"INWL";
const VERSION: u32 = 1;
/// Fixed size of the log header (`"INWL" | u32 version | u64 epoch`).
/// Record frames start at this file offset; replication offsets are
/// file offsets, so a fresh subscription starts here.
pub const HEADER_BYTES: u64 = 16;
/// Upper bound on one record's payload (matches the wire frame cap).
pub const MAX_RECORD_BYTES: usize = 64 << 20;
/// The log's file name inside [`crate::db::DbConfig::wal_dir`].
pub const WAL_FILE: &str = "insightnotes.wal";

/// Aborts the process when `INSIGHTNOTES_CRASH_POINT` names this point.
/// Fault-injection hook; a no-op in normal operation.
pub fn crash_point(name: &str) {
    if let Ok(target) = std::env::var("INSIGHTNOTES_CRASH_POINT") {
        if target == name {
            eprintln!("crash point `{name}` reached; aborting");
            std::process::abort();
        }
    }
}

/// Reads `INSIGHTNOTES_SYNC_FAIL_AFTER` once per log construction: the
/// number of fsyncs allowed to succeed before every later one fails
/// (without aborting). Fault-injection hook; `None` in normal operation.
fn sync_fail_limit() -> Option<u64> {
    std::env::var("INSIGHTNOTES_SYNC_FAIL_AFTER")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// When appended records are forced to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync inside every append — maximum durability, one fsync per
    /// write statement.
    Always,
    /// Appends buffer in the OS; an explicit [`Wal::sync`] (the server's
    /// group-commit point, one per drained batch) makes them durable
    /// before any ack is released.
    #[default]
    Batch,
    /// Never fsync (crash durability limited to what the OS flushes on
    /// its own). The log still replays after a clean process exit.
    Off,
}

impl SyncPolicy {
    /// Parses a policy name (`always` / `batch` / `off`), as spelled in
    /// `insightd --sync`.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "batch" => Ok(SyncPolicy::Batch),
            "off" => Ok(SyncPolicy::Off),
            other => Err(Error::Execution(format!(
                "unknown sync policy `{other}` (expected always | batch | off)"
            ))),
        }
    }
}

impl std::fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SyncPolicy::Always => "always",
            SyncPolicy::Batch => "batch",
            SyncPolicy::Off => "off",
        })
    }
}

/// A typed row-annotation item, as logged by the
/// [`crate::db::Database::annotate_rows`] family. The `created` tick is
/// *not* logged: replay re-stages the item and the clock re-ticks
/// deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRowAnnotation {
    /// Target table name.
    pub table: String,
    /// Explicit target row ids.
    pub rows: Vec<u64>,
    /// Covered-column bitmask ([`insightnotes_annotations::ColSig`] bits).
    pub cols: u64,
    /// Annotation text.
    pub text: String,
    /// Attached document, if any.
    pub document: Option<String>,
    /// Curator.
    pub author: String,
}

impl Encodable for WalRowAnnotation {
    fn encode(&self, enc: &mut Encoder) {
        enc.str(&self.table);
        enc.seq(&self.rows, |e, r| e.varint(*r));
        enc.u64(self.cols);
        enc.str(&self.text);
        enc.option(&self.document, |e, d| e.str(d));
        enc.str(&self.author);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(WalRowAnnotation {
            table: dec.str()?,
            rows: dec.seq(insightnotes_common::Decoder::varint)?,
            cols: dec.u64()?,
            text: dec.str()?,
            document: dec.option(insightnotes_common::Decoder::str)?,
            author: dec.str()?,
        })
    }
}

/// A row-annotation item carrying its router-assigned annotation id and
/// logical-clock tick. The sharded engine allocates `(id, tick)` once at
/// the router and replicates the stamped item to every owning shard's
/// log, so each shard replays global ids without consulting the others.
#[derive(Debug, Clone, PartialEq)]
pub struct WalStampedAnnotation {
    /// Router-assigned annotation id.
    pub id: u64,
    /// Router-assigned logical-clock tick (the body's `created` stamp).
    pub tick: u64,
    /// The annotation payload and its targets.
    pub item: WalRowAnnotation,
}

impl Encodable for WalStampedAnnotation {
    fn encode(&self, enc: &mut Encoder) {
        enc.varint(self.id);
        enc.varint(self.tick);
        self.item.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(WalStampedAnnotation {
            id: dec.varint()?,
            tick: dec.varint()?,
            item: WalRowAnnotation::decode(dec)?,
        })
    }
}

/// One logical write, as replayed by recovery.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A `;`-separated script ([`crate::db::Database::execute_sql`]
    /// semantics: statements run in order, stopping at the first error).
    Script {
        /// The script's source text.
        sql: String,
    },
    /// One group-committed annotation batch: the statement texts in
    /// submission order, replayed through one
    /// [`crate::db::Database::annotate_batch`] call so maintenance
    /// grouping and per-item failure isolation match the original run.
    Batch {
        /// `ADD ANNOTATION` statement texts.
        statements: Vec<String>,
    },
    /// A typed row-annotation batch
    /// ([`crate::db::Database::annotate_rows_batch`]; singles log a batch
    /// of one).
    Rows {
        /// The batch items in submission order.
        items: Vec<WalRowAnnotation>,
    },
    /// One multi-target annotation
    /// ([`crate::db::Database::annotate_targets`]); table ids are raw
    /// catalog ids, deterministic across replay.
    Targets {
        /// `(table id, row id, column bits)` attachment points.
        targets: Vec<(u32, u64, u64)>,
        /// Annotation text.
        text: String,
        /// Attached document, if any.
        document: Option<String>,
        /// Curator.
        author: String,
    },
    /// A pre-stamped row-annotation batch
    /// ([`crate::db::Database::annotate_rows_batch_stamped`]): ids and
    /// clock ticks were assigned by the shard router, so replay applies
    /// them verbatim instead of re-allocating.
    Stamped {
        /// The stamped batch items in submission order.
        items: Vec<WalStampedAnnotation>,
    },
}

impl Encodable for WalRecord {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            WalRecord::Script { sql } => {
                enc.u8(1);
                enc.str(sql);
            }
            WalRecord::Batch { statements } => {
                enc.u8(2);
                enc.seq(statements, |e, s| e.str(s));
            }
            WalRecord::Rows { items } => {
                enc.u8(3);
                enc.seq(items, |e, i| i.encode(e));
            }
            WalRecord::Targets {
                targets,
                text,
                document,
                author,
            } => {
                enc.u8(4);
                enc.seq(targets, |e, (t, r, c)| {
                    e.u32(*t);
                    e.varint(*r);
                    e.u64(*c);
                });
                enc.str(text);
                enc.option(document, |e, d| e.str(d));
                enc.str(author);
            }
            WalRecord::Stamped { items } => {
                enc.u8(5);
                enc.seq(items, |e, i| i.encode(e));
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        match dec.u8()? {
            1 => Ok(WalRecord::Script { sql: dec.str()? }),
            2 => Ok(WalRecord::Batch {
                statements: dec.seq(insightnotes_common::Decoder::str)?,
            }),
            3 => Ok(WalRecord::Rows {
                items: dec.seq(WalRowAnnotation::decode)?,
            }),
            4 => Ok(WalRecord::Targets {
                targets: dec.seq(|d| Ok((d.u32()?, d.varint()?, d.u64()?)))?,
                text: dec.str()?,
                document: dec.option(insightnotes_common::Decoder::str)?,
                author: dec.str()?,
            }),
            5 => Ok(WalRecord::Stamped {
                items: dec.seq(WalStampedAnnotation::decode)?,
            }),
            tag => Err(Error::Codec(format!("unknown WAL record tag {tag}"))),
        }
    }
}

/// What a [`Wal::open`] scan found.
#[derive(Debug)]
pub struct WalScan {
    /// The reopened log, positioned for appends after the valid tail.
    pub wal: Wal,
    /// Every intact record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes cut off the tail (0 = the log was clean).
    pub truncated_bytes: u64,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    policy: SyncPolicy,
    epoch: u64,
    /// Valid length (header + intact records) — everything appended.
    len: u64,
    /// Prefix known durable (≤ `len`).
    synced_len: u64,
    appends: u64,
    syncs: u64,
    /// Set when an fsync failed: the durable prefix is unknowable, so
    /// the log refuses all further work (DESIGN.md §12).
    poisoned: Option<String>,
    /// Fault injection: fail every fsync once `syncs` reaches this
    /// (captured from `INSIGHTNOTES_SYNC_FAIL_AFTER` at construction).
    sync_fail_after: Option<u64>,
}

impl Wal {
    /// The log's path inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(WAL_FILE)
    }

    /// Creates a fresh log for `epoch` in `dir` (creating the directory
    /// if needed), failing if one already exists — an existing log holds
    /// writes that [`crate::db::Database::recover`] must replay first.
    pub fn create(dir: &Path, epoch: u64, policy: SyncPolicy) -> Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let path = Self::path_in(dir);
        if path.exists() {
            return Err(Error::Execution(format!(
                "write-ahead log {} already exists; recover the database instead of \
                 creating a fresh one over it",
                path.display()
            )));
        }
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)?;
        file.write_all(&header_bytes(epoch))?;
        file.sync_all()?;
        sync_dir(dir)?;
        Ok(Wal {
            file,
            path,
            policy,
            epoch,
            len: HEADER_BYTES,
            synced_len: HEADER_BYTES,
            appends: 0,
            syncs: 0,
            poisoned: None,
            sync_fail_after: sync_fail_limit(),
        })
    }

    /// Opens an existing log, scanning and truncating its torn tail.
    /// Returns `Ok(None)` when `dir` holds no log.
    pub fn open(dir: &Path, policy: SyncPolicy) -> Result<Option<WalScan>> {
        let path = Self::path_in(dir);
        let mut file = match OpenOptions::new().read(true).write(true).open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_BYTES as usize {
            return Err(Error::Codec(format!(
                "write-ahead log {} is shorter than its header ({} bytes)",
                path.display(),
                bytes.len()
            )));
        }
        if bytes.get(..4) != Some(MAGIC.as_slice()) {
            return Err(Error::Codec(format!(
                "{} is not an InsightNotes write-ahead log",
                path.display()
            )));
        }
        // The length check above guarantees the header fields exist, but
        // recovery is a no-panic path: a short read maps to a structured
        // error, never an abort.
        let (Some(version), Some(epoch)) = (le_field(&bytes, 4), le_field(&bytes, 8)) else {
            return Err(Error::Codec(format!(
                "write-ahead log {} header truncated",
                path.display()
            )));
        };
        let version = u32::from_le_bytes(version);
        if version != VERSION {
            return Err(Error::Codec(format!(
                "unsupported write-ahead log version {version} (expected {VERSION})"
            )));
        }
        let epoch = u64::from_le_bytes(epoch);

        // Scan records; the first torn or corrupt frame ends the log.
        let mut records = Vec::new();
        let mut pos = HEADER_BYTES as usize;
        while let Some((record, consumed)) = bytes.get(pos..).and_then(decode_frame) {
            records.push(record);
            pos += consumed;
        }
        let truncated_bytes = (bytes.len() - pos) as u64;
        if truncated_bytes > 0 {
            file.set_len(pos as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        Ok(Some(WalScan {
            wal: Wal {
                file,
                path,
                policy,
                epoch,
                len: pos as u64,
                synced_len: pos as u64,
                appends: 0,
                syncs: 0,
                poisoned: None,
                sync_fail_after: sync_fail_limit(),
            },
            records,
            truncated_bytes,
        }))
    }

    /// The epoch this log extends.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The log's current valid length in bytes (header included). After
    /// a [`Wal::sync`], this prefix is durable — the fault-injection
    /// tests use it as the acked watermark.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == HEADER_BYTES
    }

    /// The committed watermark: the prefix of the log that is safe to
    /// ship to replicas. Under [`SyncPolicy::Off`] there is no fsync
    /// point, so everything appended counts as committed; otherwise this
    /// is the fsynced prefix — acks (and therefore replication frames)
    /// never precede it.
    pub fn committed_len(&self) -> u64 {
        if self.policy == SyncPolicy::Off {
            self.len
        } else {
            self.synced_len
        }
    }

    /// `(appends, fsyncs)` since open — group commit amortization shows
    /// up as appends ≫ fsyncs.
    pub fn io_stats(&self) -> (u64, u64) {
        (self.appends, self.syncs)
    }

    /// Appends one record. Under [`SyncPolicy::Always`] the record is
    /// durable on return; otherwise durability waits for [`Wal::sync`].
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        self.check_poisoned()?;
        let mut enc = Encoder::with_capacity(256);
        record.encode(&mut enc);
        let payload = enc.finish();
        if payload.len() > MAX_RECORD_BYTES {
            return Err(Error::Execution(format!(
                "WAL record of {} bytes exceeds the {MAX_RECORD_BYTES}-byte limit",
                payload.len()
            )));
        }
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        crash_point("wal.append.before");
        if std::env::var("INSIGHTNOTES_CRASH_POINT").as_deref() == Ok("wal.append.torn") {
            // Write (and force out) half the frame, then die: recovery
            // must find a genuinely torn record on disk, not an empty
            // buffer the OS never saw.
            let half = &frame[..frame.len() / 2];
            let _ = self.file.write_all(half);
            let _ = self.file.sync_all();
            crash_point("wal.append.torn");
        }
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.appends += 1;
        crash_point("wal.append.after");
        if self.policy == SyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Appends pre-framed record bytes verbatim — the replication path:
    /// a replica mirrors the primary's shipped frame bytes into its own
    /// log so both files agree byte-for-byte behind the applied offset.
    /// The bytes must parse as a whole number of intact record frames;
    /// anything else is rejected before touching the file.
    pub fn append_raw(&mut self, bytes: &[u8]) -> Result<()> {
        self.check_poisoned()?;
        let mut pos = 0usize;
        while pos < bytes.len() {
            let Some((_, consumed)) = bytes.get(pos..).and_then(decode_frame) else {
                return Err(Error::Codec(format!(
                    "raw WAL append of {} bytes holds a torn or corrupt frame at offset {pos}",
                    bytes.len()
                )));
            };
            pos += consumed;
            self.appends += 1;
        }
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        if self.policy == SyncPolicy::Always {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces every appended record to disk (no-op under
    /// [`SyncPolicy::Off`], or when nothing is pending). This is the
    /// commit point: acks must not be released before it returns.
    ///
    /// A *failed* fsync permanently poisons the log: after it, the
    /// kernel may have dropped any subset of the dirty pages, so the
    /// durable prefix on disk is unknowable from inside the process. If
    /// appends were allowed to continue and a later fsync succeeded,
    /// writes that were already error-acked (and possibly compensated)
    /// could silently resurrect on restart. Every subsequent
    /// append/sync/rotate fails fast instead; recovery is a restart,
    /// which replays exactly the intact durable prefix.
    pub fn sync(&mut self) -> Result<()> {
        self.check_poisoned()?;
        if self.policy == SyncPolicy::Off || self.synced_len == self.len {
            return Ok(());
        }
        crash_point("wal.sync.before");
        if let Err(e) = self.sync_data_with_fault() {
            self.poisoned = Some(e.to_string());
            return Err(e);
        }
        self.synced_len = self.len;
        self.syncs += 1;
        crash_point("wal.sync.after");
        Ok(())
    }

    /// The real fsync, with the `INSIGHTNOTES_SYNC_FAIL_AFTER=<n>`
    /// fault-injection hook in front: once `n` fsyncs have succeeded on
    /// this log, every later one fails (without aborting the process) —
    /// how the poisoning regression tests simulate a dying disk.
    fn sync_data_with_fault(&mut self) -> Result<()> {
        if let Some(limit) = self.sync_fail_after {
            if self.syncs >= limit {
                return Err(Error::Io(std::io::Error::other(
                    "injected fsync failure (INSIGHTNOTES_SYNC_FAIL_AFTER)",
                )));
            }
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// Test-only: arm the fsync fault on this log directly, without
    /// touching the (process-global, race-prone) environment.
    #[cfg(test)]
    pub(crate) fn fail_syncs_after(&mut self, n: u64) {
        self.sync_fail_after = Some(n);
    }

    fn check_poisoned(&self) -> Result<()> {
        if let Some(why) = &self.poisoned {
            return Err(Error::Execution(format!(
                "write-ahead log {} is poisoned after a failed sync ({why}); \
                 restart the server to recover the durable prefix",
                self.path.display()
            )));
        }
        Ok(())
    }

    /// Restarts the log at `new_epoch` after a checkpoint: the snapshot
    /// stamped with `new_epoch` is durable, so every logged record is
    /// already reflected in it and the log can be cut back to a bare
    /// header.
    pub fn rotate(&mut self, new_epoch: u64) -> Result<()> {
        self.check_poisoned()?;
        crash_point("wal.rotate.before");
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header_bytes(new_epoch))?;
        self.file.sync_all()?;
        self.epoch = new_epoch;
        self.len = HEADER_BYTES;
        self.synced_len = HEADER_BYTES;
        crash_point("wal.rotate.after");
        Ok(())
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header_bytes(epoch: u64) -> [u8; HEADER_BYTES as usize] {
    let mut h = [0u8; HEADER_BYTES as usize];
    h[..4].copy_from_slice(MAGIC);
    h[4..8].copy_from_slice(&VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&epoch.to_le_bytes());
    h
}

/// Panic-free fixed-width field read: the `N` bytes at `at`, or `None`
/// when `bytes` is too short. Recovery code uses this instead of
/// `bytes[a..b].try_into().unwrap()` so a truncated log can never abort
/// the process.
fn le_field<const N: usize>(bytes: &[u8], at: usize) -> Option<[u8; N]> {
    bytes
        .get(at..at.checked_add(N)?)
        .and_then(|s| s.try_into().ok())
}

/// Decodes one record frame from the front of `bytes`; `None` marks a
/// torn or corrupt frame (truncation point). Public so the replication
/// subsystem can decode shipped frame bytes with the same strictness as
/// recovery.
pub fn decode_frame(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    let len = u32::from_le_bytes(le_field(bytes, 0)?) as usize;
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let crc = u32::from_le_bytes(le_field(bytes, 4)?);
    let payload = bytes.get(8..8 + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let mut dec = Decoder::new(payload);
    let record = WalRecord::decode(&mut dec).ok()?;
    dec.expect_end().ok()?;
    Some((record, 8 + len))
}

/// fsyncs a directory so a just-created or just-renamed entry inside it
/// survives power loss (no-op on platforms where directories cannot be
/// opened for sync).
pub fn sync_dir(dir: &Path) -> Result<()> {
    match File::open(dir) {
        Ok(d) => {
            d.sync_all()?;
            Ok(())
        }
        Err(_) if !cfg!(unix) => Ok(()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "insightnotes-wal-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Script {
                sql: "CREATE TABLE t (a INT); INSERT INTO t VALUES (1)".into(),
            },
            WalRecord::Batch {
                statements: vec![
                    "ADD ANNOTATION 'x' ON t".into(),
                    "ADD ANNOTATION 'y' ON t WHERE a = 1".into(),
                ],
            },
            WalRecord::Rows {
                items: vec![WalRowAnnotation {
                    table: "t".into(),
                    rows: vec![1, 2],
                    cols: 0b11,
                    text: "typed".into(),
                    document: Some("doc".into()),
                    author: "ada".into(),
                }],
            },
            WalRecord::Targets {
                targets: vec![(1, 1, 0b1), (2, 7, 0b10)],
                text: "spans tables".into(),
                document: None,
                author: "brahe".into(),
            },
        ]
    }

    #[test]
    fn records_round_trip_through_append_and_open() {
        let dir = temp_dir("roundtrip");
        let records = sample_records();
        {
            let mut wal = Wal::create(&dir, 3, SyncPolicy::Always).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let scan = Wal::open(&dir, SyncPolicy::Batch).unwrap().unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.wal.epoch(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_to_clobber_an_existing_log() {
        let dir = temp_dir("clobber");
        let _wal = Wal::create(&dir, 0, SyncPolicy::Off).unwrap();
        let err = Wal::create(&dir, 0, SyncPolicy::Off).unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_byte_offset() {
        let dir = temp_dir("torn");
        let records = sample_records();
        {
            let mut wal = Wal::create(&dir, 0, SyncPolicy::Off).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let path = Wal::path_in(&dir);
        let full = std::fs::read(&path).unwrap();
        // Find where the final record starts by re-framing the first three.
        let scan = Wal::open(&dir, SyncPolicy::Off).unwrap().unwrap();
        drop(scan);
        let mut tail_start = HEADER_BYTES as usize;
        for _ in 0..records.len() - 1 {
            let len =
                u32::from_le_bytes(full[tail_start..tail_start + 4].try_into().unwrap()) as usize;
            tail_start += 8 + len;
        }
        for cut in tail_start..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = Wal::open(&dir, SyncPolicy::Off).unwrap().unwrap();
            assert_eq!(
                scan.records,
                records[..records.len() - 1],
                "cut at byte {cut}"
            );
            assert_eq!(scan.truncated_bytes, (cut - tail_start) as u64);
            // The scan physically truncated the file back to the prefix.
            assert_eq!(
                std::fs::metadata(&path).unwrap().len(),
                tail_start as u64,
                "cut at byte {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_byte_in_final_record_drops_only_that_record() {
        let dir = temp_dir("corrupt");
        let records = sample_records();
        {
            let mut wal = Wal::create(&dir, 0, SyncPolicy::Off).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let path = Wal::path_in(&dir);
        let full = std::fs::read(&path).unwrap();
        let mut corrupt = full.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        std::fs::write(&path, &corrupt).unwrap();
        let scan = Wal::open(&dir, SyncPolicy::Off).unwrap().unwrap();
        assert_eq!(scan.records, records[..records.len() - 1]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_and_truncated_headers_are_classified_errors() {
        let dir = temp_dir("badheader");
        std::fs::create_dir_all(&dir).unwrap();
        let path = Wal::path_in(&dir);

        std::fs::write(&path, b"NOPE").unwrap();
        assert_eq!(
            Wal::open(&dir, SyncPolicy::Off).unwrap_err().class(),
            "codec"
        );

        std::fs::write(&path, b"INWLxxxxyyyyzzzz").unwrap();
        assert_eq!(
            Wal::open(&dir, SyncPolicy::Off).unwrap_err().class(),
            "codec"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotate_cuts_the_log_back_to_a_header_with_the_new_epoch() {
        let dir = temp_dir("rotate");
        let mut wal = Wal::create(&dir, 0, SyncPolicy::Batch).unwrap();
        for r in &sample_records() {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        assert!(!wal.is_empty());
        wal.rotate(1).unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.epoch(), 1);
        // Appends keep working after rotation, and reopen sees only them.
        wal.append(&WalRecord::Script { sql: "x".into() }).unwrap();
        wal.sync().unwrap();
        drop(wal);
        let scan = Wal::open(&dir, SyncPolicy::Batch).unwrap().unwrap();
        assert_eq!(scan.wal.epoch(), 1);
        assert_eq!(scan.records.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policies_gate_fsync_counts() {
        let dir = temp_dir("policies");
        let mut wal = Wal::create(&dir, 0, SyncPolicy::Always).unwrap();
        wal.append(&WalRecord::Script { sql: "a".into() }).unwrap();
        wal.append(&WalRecord::Script { sql: "b".into() }).unwrap();
        assert_eq!(wal.io_stats(), (2, 2));
        // A redundant explicit sync is free.
        wal.sync().unwrap();
        assert_eq!(wal.io_stats(), (2, 2));
        std::fs::remove_dir_all(&dir).ok();

        let dir = temp_dir("policies2");
        let mut wal = Wal::create(&dir, 0, SyncPolicy::Batch).unwrap();
        wal.append(&WalRecord::Script { sql: "a".into() }).unwrap();
        wal.append(&WalRecord::Script { sql: "b".into() }).unwrap();
        assert_eq!(wal.io_stats(), (2, 0));
        wal.sync().unwrap();
        assert_eq!(wal.io_stats(), (2, 1));
        std::fs::remove_dir_all(&dir).ok();

        let dir = temp_dir("policies3");
        let mut wal = Wal::create(&dir, 0, SyncPolicy::Off).unwrap();
        wal.append(&WalRecord::Script { sql: "a".into() }).unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.io_stats(), (1, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_raw_mirrors_frames_and_rejects_torn_bytes() {
        let dir = temp_dir("rawsrc");
        let records = sample_records();
        {
            let mut wal = Wal::create(&dir, 5, SyncPolicy::Off).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let frames = std::fs::read(Wal::path_in(&dir)).unwrap()[HEADER_BYTES as usize..].to_vec();
        std::fs::remove_dir_all(&dir).ok();

        let dir = temp_dir("rawdst");
        let mut wal = Wal::create(&dir, 5, SyncPolicy::Batch).unwrap();
        // Torn or corrupt raw bytes are rejected without touching the file.
        let err = wal.append_raw(&frames[..frames.len() - 1]).unwrap_err();
        assert_eq!(err.class(), "codec");
        assert!(wal.is_empty());

        wal.append_raw(&frames).unwrap();
        assert_eq!(wal.committed_len(), HEADER_BYTES);
        wal.sync().unwrap();
        assert_eq!(wal.committed_len(), HEADER_BYTES + frames.len() as u64);
        drop(wal);
        // The mirrored log reopens to the same records, byte-identical
        // behind the shipped frames.
        let scan = Wal::open(&dir, SyncPolicy::Batch).unwrap().unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn committed_len_counts_everything_under_sync_off() {
        let dir = temp_dir("committed-off");
        let mut wal = Wal::create(&dir, 0, SyncPolicy::Off).unwrap();
        wal.append(&WalRecord::Script { sql: "a".into() }).unwrap();
        assert_eq!(wal.committed_len(), wal.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_sync_poisons_the_log_for_good() {
        let dir = temp_dir("poison");
        let mut wal = Wal::create(&dir, 1, SyncPolicy::Batch).unwrap();
        wal.append(&WalRecord::Script { sql: "a".into() }).unwrap();
        wal.sync().unwrap();
        let durable = wal.committed_len();
        wal.fail_syncs_after(1);
        wal.append(&WalRecord::Script { sql: "b".into() }).unwrap();
        let err = wal.sync().unwrap_err();
        assert!(err.to_string().contains("injected fsync failure"), "{err}");
        // Sticky: every later operation refuses, the committed
        // watermark never advances past the last good fsync, and even a
        // checkpoint rotation cannot resurrect the log.
        assert!(wal.append(&WalRecord::Script { sql: "c".into() }).is_err());
        assert!(wal.sync().is_err());
        assert!(wal.rotate(2).is_err());
        assert_eq!(wal.committed_len(), durable);
        // Restart is the recovery path: reopening scans whatever made it
        // to the file intact (in-process the page cache still holds the
        // unsynced append; after power loss it may not — the daemon
        // fault-injection tests cover that side).
        drop(wal);
        let scan = Wal::open(&dir, SyncPolicy::Batch).unwrap().unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_policy_parse_round_trips() {
        for p in [SyncPolicy::Always, SyncPolicy::Batch, SyncPolicy::Off] {
            assert_eq!(SyncPolicy::parse(&p.to_string()).unwrap(), p);
        }
        assert!(SyncPolicy::parse("sometimes").is_err());
    }
}
