//! Shard-per-core engine: N [`Database`] shards behind one router.
//!
//! The single-database engine funnels every write through one
//! `RwLock<Database>` and one WAL, so adding writers past a point *costs*
//! throughput — they serialize on the lock and on one fsync pipeline.
//! [`ShardedDatabase`] partitions that ceiling away (DESIGN.md §12):
//!
//! - **Routing.** Annotations and their summary objects are partitioned
//!   by `hash(table, row_id) % N` ([`shard_of`]); the catalog, table
//!   rows, and summary-instance definitions are *replicated* on every
//!   shard so each shard can plan, resolve predicates, and render tuple
//!   context locally. A single-row annotation therefore touches exactly
//!   one shard: its lock, its WAL segment, its committer.
//! - **Identity.** Annotation ids and logical-clock ticks are allocated
//!   once at the router (one tiny mutex, held for nanoseconds) and
//!   carried into shards as [`StampedRowAnnotation`]s, so the global
//!   id/tick sequence stays monotone exactly as a serial run's would.
//!   A multi-row annotation is stored whole (full target list, same id
//!   and tick) on every shard owning at least one of its rows; reads
//!   always route a row to its owner, so the replicas never conflict.
//!   If one owner fails after another already committed, the committed
//!   owners get a best-effort compensating delete
//!   ([`ShardedDatabase::compensate_partial`]) so the reported failure
//!   converges back to "not written". `DELETE ANNOTATION` likewise
//!   routes to the id's owner shards — never broadcast, since
//!   non-owners don't hold the id and a broadcast would fork the
//!   replicas' statement streams. Lifecycle statements (`RETRACT` /
//!   `CORRECT` / `FLAG ANNOTATION`) route the same way; a correction's
//!   successor identity is allocated once at the router and carried to
//!   every owner as an internal `WITH ID … AT …` stamp, and recovery
//!   runs a cross-shard membership sweep ([`reconcile_membership`])
//!   that converges any annotation a crash left partially committed.
//! - **Lock ordering.** Replicated writes (DDL, INSERT, DELETE)
//!   broadcast to all shards in fixed order `0..N` under one broadcast
//!   mutex; sessions that prepare annotations take all shard read locks
//!   in the same fixed order and drop them before touching any write
//!   lock. Writers never hold two shard write locks at once. No cycle,
//!   no deadlock.
//! - **Durability.** Each shard keeps its own WAL segment under
//!   `wal/shard-<k>/` and checkpoints its own snapshot (`<path>.shard<k>`)
//!   with its own epoch. A manifest in the WAL base directory — and a
//!   sibling `<path>.manifest` next to every sharded snapshot set, for
//!   snapshot-only deployments with no WAL directory — records the
//!   shard count and epoch vector; recovering with a different shard
//!   count (or against an unsharded layout) is a detected, classified
//!   error — never silent corruption.
//!
//! With `shards == 1` the router disappears entirely: every call
//! delegates to the one inner [`Database`], with the legacy on-disk
//! layout (single WAL directory, single snapshot file, no manifest).

use crate::cache::DiskCache;
use crate::db::{
    resolve_annotation_targets, Database, DbConfig, ExecOutcome, QueryResult, RecoveryReport,
    RowAnnotation, SqlStatement, StampedRowAnnotation, ZoomInResult, ZoomedAnnotation,
};
use crate::exec::{Executor, ObjectSource};
use crate::plan::{estimate_cost, Planner};
use crate::zoomin::ZoomRegistry;
use insightnotes_annotations::AnnotationBody;
use insightnotes_common::{AnnotationId, Error, IdSet, InstanceId, Qid, Result, RowId, TableId};
use insightnotes_sql::{
    parse, parse_one, Expr, Statement, StatementClass, ZoomComponent, ZoomInStmt,
};
use insightnotes_summaries::{SharedObject, SummaryRegistry};
use parking_lot::witness::class as lock_class;
use parking_lot::{Mutex, RwLock, RwLockReadGuard};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static ROUTER_COUNTER: AtomicU64 = AtomicU64::new(0);

/// File name of the shard manifest, kept in the WAL base directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Hash-routes `(table, row)` to its owning shard. Deterministic across
/// runs and platforms (splitmix64 finalizer over the raw ids), so a
/// recovered database routes every row exactly as the crashed one did.
pub fn shard_of(table: TableId, row: RowId, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut x = (table.raw() as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(row.raw());
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// The router's id/tick allocator: annotation ids and clock ticks are
/// handed out together under one lock so the global `(id, created)`
/// sequence stays monotone exactly as serial execution's would.
#[derive(Debug)]
struct StampAlloc {
    next_id: u64,
    clock: u64,
}

impl StampAlloc {
    /// Consumes one id and one tick.
    fn stamp(&mut self) -> (u64, u64) {
        self.next_id += 1;
        self.clock += 1;
        (self.next_id, self.clock)
    }
}

/// Cross-shard state that exists only at `shards > 1`.
#[derive(Debug)]
struct RouterState {
    alloc: Mutex<StampAlloc>,
    /// Router-level QID registry and zoom-in result cache: fan-out
    /// queries register here, not in any shard's session registry.
    zoom: Mutex<ZoomRegistry>,
    /// Serializes replicated-write broadcasts. Two concurrent broadcasts
    /// interleaving their per-shard lock acquisitions would apply in
    /// different orders on different shards and diverge the replicas;
    /// holding this across the whole `0..N` sweep makes broadcasts
    /// totally ordered.
    broadcast: Mutex<()>,
    /// Rotates which shard's guard single-guard prepares pin. Catalog
    /// and rows are replicated, so any shard serves; always picking
    /// shard 0 would convoy every preparing session behind shard 0's
    /// committer while the other shards' guards sit uncontended.
    prepare_rr: AtomicU64,
    parallelism: Option<usize>,
    wal_base: Option<PathBuf>,
}

/// A prepared annotation: resolved targets, router-allocated stamp, and
/// the (sorted, deduplicated) shards that own at least one target row.
#[derive(Debug, Clone)]
pub struct RoutedAnnotation {
    /// The stamped item every owner shard stores verbatim.
    pub stamped: StampedRowAnnotation,
    /// Owner shard indices, ascending.
    pub shards: Vec<usize>,
}

/// One shard's recovery outcome.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// The shard's checkpoint epoch after recovery.
    pub epoch: u64,
    /// What the shard's recovery found and did.
    pub report: RecoveryReport,
}

/// What [`ShardedDatabase::recover`] found and did, per shard.
#[derive(Debug, Clone)]
pub struct ShardedRecoveryReport {
    /// Per-shard outcomes, indexed by shard.
    pub shards: Vec<ShardRecovery>,
    /// Annotations repaired by the cross-shard membership sweep: a
    /// multi-owner annotation that a crash left committed on some owner
    /// shards but missing (or already tombstoned) on another — the
    /// DESIGN.md §12 residual window — is converged at recovery instead
    /// of resurfacing partially attached.
    pub reconciled: usize,
}

impl ShardedRecoveryReport {
    /// Total WAL records replayed across all shards.
    pub fn records_replayed(&self) -> usize {
        self.shards.iter().map(|s| s.report.records_replayed).sum()
    }

    /// Whether any shard loaded a snapshot or replayed log records.
    pub fn did_work(&self) -> bool {
        self.shards
            .iter()
            .any(|s| s.report.snapshot_loaded || s.report.records_replayed > 0)
    }
}

/// Reads each row's summary objects from the owning shard's registry.
/// Built over the full fixed-order set of shard read guards; the
/// executor's morsel workers call it concurrently.
struct ShardObjects<'a> {
    regs: Vec<&'a SummaryRegistry>,
}

impl<'a> ShardObjects<'a> {
    fn new(guards: &'a [RwLockReadGuard<'a, Database>]) -> Self {
        Self {
            regs: guards.iter().map(|g| g.registry()).collect(),
        }
    }
}

impl ObjectSource for ShardObjects<'_> {
    fn objects_on(&self, table: TableId, row: RowId) -> &[(InstanceId, SharedObject)] {
        self.regs[shard_of(table, row, self.regs.len())].objects_on(table, row)
    }
}

/// N [`Database`] shards behind hash routing. See the module docs for
/// the partitioning, identity, lock-ordering, and durability rules.
#[derive(Debug)]
pub struct ShardedDatabase {
    shards: Vec<Arc<RwLock<Database>>>,
    /// `None` at `shards == 1`: every call delegates to `shards[0]`
    /// with legacy single-database semantics and on-disk layout.
    router: Option<RouterState>,
}

impl From<Database> for ShardedDatabase {
    fn from(db: Database) -> Self {
        Self {
            shards: vec![Arc::new(
                RwLock::new(db).with_class_indexed(lock_class::SHARD, 0),
            )],
            router: None,
        }
    }
}

impl ShardedDatabase {
    /// Creates a fresh sharded database. With `shards <= 1` this is
    /// exactly [`Database::with_config`] behind the facade; otherwise
    /// the manifest is written (durably) *before* any shard WAL is
    /// created, so a crash mid-construction leaves a layout recovery
    /// can classify.
    pub fn create(config: DbConfig, shards: usize) -> Result<Self> {
        let n = shards.max(1);
        if n == 1 {
            return Ok(Database::with_config(config)?.into());
        }
        if let Some(base) = &config.wal_dir {
            check_layout_sharded(base, n)?;
            write_manifest(base, n, &vec![0; n])?;
        }
        let shards: Vec<Arc<RwLock<Database>>> = (0..n)
            .map(|k| {
                Ok(Arc::new(
                    RwLock::new(Database::with_config(shard_config(&config, k))?)
                        .with_class_indexed(lock_class::SHARD, k as u32),
                ))
            })
            .collect::<Result<_>>()?;
        let router = build_router(&config, &shards)?;
        Ok(Self {
            shards,
            router: Some(router),
        })
    }

    /// Assembles the facade over externally constructed shard databases
    /// — the replica path: the replication subsystem recovers each
    /// shard from its mirrored log segment and hands the set here for
    /// read serving. One database collapses to the legacy facade;
    /// otherwise a router is built over the set (the id/tick allocator
    /// resumes past the maximum any shard has seen, exactly as
    /// [`ShardedDatabase::recover`] does).
    pub fn from_shards(config: &DbConfig, dbs: Vec<Database>) -> Result<Self> {
        if dbs.len() <= 1 {
            let db = dbs.into_iter().next().ok_or_else(|| {
                Error::Execution("cannot assemble a sharded database over zero shards".into())
            })?;
            return Ok(db.into());
        }
        let shards: Vec<Arc<RwLock<Database>>> = dbs
            .into_iter()
            .enumerate()
            .map(|(k, d)| Arc::new(RwLock::new(d).with_class_indexed(lock_class::SHARD, k as u32)))
            .collect();
        let router = build_router(config, &shards)?;
        Ok(Self {
            shards,
            router: Some(router),
        })
    }

    /// Opens a sharded database with full crash recovery: each shard
    /// independently sweeps, loads its snapshot (`<path>.shard<k>`),
    /// and replays its own WAL segment. Layout mismatches — an
    /// unsharded WAL or snapshot recovered with `shards > 1`, a
    /// manifest whose shard count differs from `shards`, shard
    /// directories without a manifest — are classified errors.
    pub fn recover(
        snapshot: Option<&Path>,
        config: DbConfig,
        shards: usize,
    ) -> Result<(Self, ShardedRecoveryReport)> {
        let n = shards.max(1);
        if n == 1 {
            if let Some(base) = &config.wal_dir {
                if base.join(MANIFEST_FILE).exists() {
                    return Err(Error::Execution(format!(
                        "write-ahead log directory {} holds a shard manifest (sharded \
                         layout); recover with the shard count the manifest records",
                        base.display()
                    )));
                }
            }
            if let Some(path) = snapshot {
                if let Some((recorded, _)) = read_manifest_file(&snapshot_manifest_path(path))? {
                    return Err(Error::Execution(format!(
                        "snapshot {} is a sharded snapshot set ({recorded} shard(s) per \
                         its manifest); recover with the shard count the manifest records",
                        path.display()
                    )));
                }
            }
            let (db, report) = Database::recover(snapshot, config)?;
            let epoch = db.epoch();
            return Ok((
                db.into(),
                ShardedRecoveryReport {
                    shards: vec![ShardRecovery { epoch, report }],
                    reconciled: 0,
                },
            ));
        }
        if let Some(path) = snapshot {
            if path.exists() {
                return Err(Error::Execution(format!(
                    "snapshot {} was written by an unsharded engine; recover it with \
                     shards = 1 (shard-count changes require an explicit migration)",
                    path.display()
                )));
            }
            match read_manifest_file(&snapshot_manifest_path(path))? {
                Some((recorded, _)) if recorded != n => {
                    return Err(Error::Execution(format!(
                        "snapshot manifest {} records {recorded} shard(s) but {n} were \
                         configured; shard-count changes require an explicit migration",
                        snapshot_manifest_path(path).display()
                    )));
                }
                Some(_) => {}
                None => {
                    // In snapshot-only mode the sibling manifest is the
                    // only witness of the set's shard count; shard files
                    // without it mean the set is incomplete (crash
                    // mid-checkpoint) or pre-dates manifests, and
                    // loading a guessed subset would silently drop the
                    // other shards' data. With a WAL directory its
                    // manifest stays authoritative, and a crash between
                    // per-shard checkpoints legitimately leaves shard
                    // files newer than the sibling manifest.
                    if config.wal_dir.is_none() && shard_snapshots_present(path)? {
                        return Err(Error::Execution(format!(
                            "shard snapshot files exist next to {} but its snapshot \
                             manifest is missing; the snapshot set is incomplete or \
                             mid-migration",
                            path.display()
                        )));
                    }
                }
            }
        }
        if let Some(base) = &config.wal_dir {
            check_layout_sharded(base, n)?;
            if read_manifest(base)?.is_none() {
                write_manifest(base, n, &vec![0; n])?;
            }
        }
        let mut dbs = Vec::with_capacity(n);
        let mut reports = Vec::with_capacity(n);
        for k in 0..n {
            let snap_k = snapshot.map(|p| shard_snapshot_path(p, k));
            let (db, report) = Database::recover(snap_k.as_deref(), shard_config(&config, k))?;
            reports.push(ShardRecovery {
                epoch: db.epoch(),
                report,
            });
            dbs.push(Arc::new(
                RwLock::new(db).with_class_indexed(lock_class::SHARD, k as u32),
            ));
        }
        // Cross-shard membership reconciliation (closes the DESIGN.md
        // §12 residual): a crash between a multi-owner commit and its
        // compensating deletes leaves the annotation durably stored on
        // some owner shards and absent from others — recovery would
        // resurrect it partially attached. Sweep before the router is
        // built, while the shard set is still private to this thread.
        let reconciled = reconcile_membership(&dbs)?;
        let router = build_router(&config, &dbs)?;
        Ok((
            Self {
                shards: dbs,
                router: Some(router),
            },
            ShardedRecoveryReport {
                shards: reports,
                reconciled,
            },
        ))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the router is active (`shards > 1`).
    pub fn is_sharded(&self) -> bool {
        self.router.is_some()
    }

    /// Direct handle to one shard. The server's per-shard committers
    /// hold these; `shard(0)` is also the legacy `Arc<RwLock<Database>>`
    /// handle tests reach the engine through at `shards == 1`.
    pub fn shard(&self, k: usize) -> &Arc<RwLock<Database>> {
        &self.shards[k]
    }

    /// The owning shard of `(table, row)`.
    pub fn owner(&self, table: TableId, row: RowId) -> usize {
        shard_of(table, row, self.shards.len())
    }

    /// Fixed-order read guards over every shard.
    fn read_all(&self) -> Vec<RwLockReadGuard<'_, Database>> {
        self.shards.iter().map(|s| s.read()).collect() // lint: lock-class(shard)
    }

    // -- statement execution ----------------------------------------------

    /// Parses and executes a script. Routing at `shards > 1`:
    ///
    /// - all Read-class → per-statement fan-out read path;
    /// - writes, none of them touching the *partitioned* annotation
    ///   store → the whole script broadcasts to every shard in fixed
    ///   order under the broadcast mutex (every shard executes it,
    ///   shard 0's outcomes are returned — replicas apply the identical
    ///   statement stream even when a statement fails);
    /// - all statements `ADD ANNOTATION` / `DELETE ANNOTATION` → each
    ///   routes to its owner shards in order, stopping at the first
    ///   failure exactly as serial execution would;
    /// - a mix of partitioned-store statements and replicated writes →
    ///   a classified error. The two routes cannot interleave: a
    ///   partitioned statement succeeds only on the shards that own its
    ///   rows, so broadcasting it would fail on the others, and
    ///   [`Database::execute_sql`]'s stop-at-first-failure would then
    ///   apply the rest of the script to a different set of shards —
    ///   permanently forking the replicated state.
    pub fn execute_sql(&self, sql: &str) -> Result<Vec<ExecOutcome>> {
        if self.router.is_none() {
            return self.shards[0].write().execute_sql(sql);
        }
        let stmts = parse(sql)?;
        if stmts.iter().all(|s| s.class() == StatementClass::Read) {
            return stmts.into_iter().map(|s| self.execute_read(s)).collect();
        }
        let partitioned = stmts
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    Statement::AddAnnotation { .. }
                        | Statement::DeleteAnnotation { .. }
                        | Statement::RetractAnnotation { .. }
                        | Statement::CorrectAnnotation { .. }
                        | Statement::FlagAnnotation { .. }
                )
            })
            .count();
        if partitioned == 0 {
            return self.broadcast_script(sql);
        }
        if partitioned != stmts.len() {
            return Err(Error::Execution(
                "sharded execution cannot mix annotation statements (ADD / DELETE / \
                 RETRACT / CORRECT / FLAG ANNOTATION) with other statements in one \
                 script; submit annotation writes separately"
                    .into(),
            ));
        }
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            match stmt {
                Statement::DeleteAnnotation { id } => {
                    out.push(self.delete_annotation(AnnotationId::new(*id))?);
                }
                Statement::RetractAnnotation { id } => {
                    out.push(self.retract_annotation(AnnotationId::new(*id))?);
                }
                Statement::CorrectAnnotation {
                    id,
                    text,
                    document,
                    author,
                    stamp,
                } => {
                    out.push(self.correct_annotation_routed(
                        AnnotationId::new(*id),
                        text.clone(),
                        document.clone(),
                        author.clone(),
                        *stamp,
                    )?);
                }
                Statement::FlagAnnotation { id, note } => {
                    out.push(self.flag_annotation(AnnotationId::new(*id), note.clone())?);
                }
                _ => {
                    let routed = self.prepare_one(stmt)?;
                    out.push(self.apply_one(&routed)?);
                }
            }
        }
        Ok(out)
    }

    /// Executes one Read-class statement (SELECT / ZOOMIN / EXPLAIN).
    pub fn execute_read(&self, stmt: Statement) -> Result<ExecOutcome> {
        if self.router.is_none() {
            return self.shards[0].read().execute_read(stmt);
        }
        match stmt {
            Statement::Select(sel) => Ok(ExecOutcome::Query(self.run_select_routed(&sel)?)),
            Statement::ZoomIn(z) => Ok(ExecOutcome::ZoomIn(self.zoom_in(&z)?)),
            Statement::Explain(sel) => {
                let g = self.shards[0].read();
                let plan = Planner::new(g.catalog(), g.registry()).plan_select(&sel)?;
                Ok(ExecOutcome::Explain(plan.explain()))
            }
            // Lifecycle statements route to every owner shard, so each
            // owner holds the full identical timeline; the first shard
            // with any version (live or tombstone) answers.
            Statement::HistoryAnnotation { id } => {
                let aid = AnnotationId::new(id);
                let guards = self.read_all();
                for g in &guards {
                    if let Ok(events) = g.store().history(aid) {
                        return Ok(ExecOutcome::History {
                            annotation: aid,
                            events,
                        });
                    }
                }
                Err(Error::Annotation(format!("unknown annotation {aid}")))
            }
            _ => Err(Error::Execution(
                "write-class statement requires exclusive database access".into(),
            )),
        }
    }

    /// Convenience: executes a single SELECT.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        if self.router.is_none() {
            return self.shards[0].read().query(sql);
        }
        let stmt = parse_one(sql)?;
        match stmt {
            Statement::Select(_) => match self.execute_read(stmt)? {
                ExecOutcome::Query(q) => Ok(q),
                _ => unreachable!("select statements produce query outcomes"),
            },
            other => Err(Error::Parse(format!(
                "expected a SELECT statement, found {other:?}"
            ))),
        }
    }

    /// Broadcasts a replicated-write script to every shard in fixed
    /// order under the broadcast mutex; returns shard 0's outcomes.
    fn broadcast_script(&self, sql: &str) -> Result<Vec<ExecOutcome>> {
        let router = self.router.as_ref().ok_or_else(|| {
            Error::Execution(
                "broadcast on a routerless database (single-shard scripts execute directly)".into(),
            )
        })?;
        let _total_order = router.broadcast.lock();
        let mut first: Option<Result<Vec<ExecOutcome>>> = None;
        for shard in &self.shards {
            let res = shard.write().execute_sql(sql);
            if first.is_none() {
                first = Some(res);
            }
        }
        first.ok_or_else(|| Error::Execution("broadcast over an empty shard set".into()))?
    }

    // -- annotation ingestion ---------------------------------------------

    /// Resolves and stamps one `ADD ANNOTATION` under the full set of
    /// shard read guards (dropped on return — the caller applies under
    /// owner write locks afterwards, never holding both).
    fn prepare_one(&self, stmt: &Statement) -> Result<RoutedAnnotation> {
        let router = self
            .router
            .as_ref()
            .ok_or_else(|| Error::Execution("prepare on a routerless database".into()))?;
        let Statement::AddAnnotation {
            text,
            document,
            author,
            table,
            columns,
            where_clause,
        } = stmt
        else {
            return Err(Error::Execution(
                "annotation batches accept only ADD ANNOTATION statements".into(),
            ));
        };
        let guards = self.read_all();
        let objects = ShardObjects::new(&guards);
        let shard0 = &*guards[0];
        let (tid, cols, rows) = resolve_annotation_targets(
            shard0.catalog(),
            shard0.registry(),
            &objects,
            table,
            columns,
            where_clause.clone(),
        )?;
        let owners = owner_set(tid, &rows, self.shards.len());
        let (id, tick) = router.alloc.lock().stamp();
        let mut body = AnnotationBody::text(
            text.clone(),
            author.clone().unwrap_or_else(|| "anonymous".into()),
        );
        if let Some(doc) = document {
            body = body.with_document(doc.clone());
        }
        Ok(RoutedAnnotation {
            stamped: StampedRowAnnotation {
                id,
                tick,
                item: RowAnnotation {
                    table: table.clone(),
                    rows,
                    cols,
                    body,
                },
            },
            shards: owners,
        })
    }

    /// Deletes one annotation through the router. The annotation store
    /// is *partitioned*, so the id lives only on its owner shards; the
    /// deletion routes to the shards actually holding a replica rather
    /// than broadcasting (a non-owner would fail with "unknown
    /// annotation" while the owners deleted — forking both the client's
    /// view of the outcome and, inside a script, the replicated
    /// statement stream). Owners are discovered under the read guards,
    /// which are dropped before any write lock — the same prepare/apply
    /// split every annotation write follows. Every owner is attempted;
    /// the first owner's outcome is returned (each owner stores the
    /// full target list, so summing `rows_refreshed` would
    /// double-count), or any owner's failure.
    pub fn delete_annotation(&self, id: AnnotationId) -> Result<ExecOutcome> {
        if self.router.is_none() {
            return self.shards[0].write().delete_annotation(id);
        }
        let owners: Vec<usize> = {
            let guards = self.read_all();
            guards
                .iter()
                .enumerate()
                .filter(|(_, g)| g.store().get(id).is_ok())
                .map(|(k, _)| k)
                .collect()
        };
        if owners.is_empty() {
            return Err(Error::Annotation(format!("unknown annotation {id}")));
        }
        let mut first: Option<ExecOutcome> = None;
        let mut failure: Option<Error> = None;
        for &k in &owners {
            let res = self.shards[k].write().delete_annotation(id);
            match res {
                Ok(outcome) => {
                    if first.is_none() {
                        first = Some(outcome);
                    }
                }
                Err(e) => failure = Some(e),
            }
        }
        match failure {
            Some(e) => Err(e),
            None => first.ok_or_else(|| {
                Error::Annotation("annotation resolved to zero owner shards".into())
            }),
        }
    }

    /// Best-effort repair of a partially committed multi-owner
    /// annotation: deletes the replica from the owner shards that had
    /// already stored it after another owner failed, so the failure the
    /// client sees converges back to "not written" instead of leaving
    /// the annotation attached to some of its rows and missing from
    /// others. Each compensating delete is WAL-logged and synced on its
    /// shard like any other write. Best-effort by construction: if a
    /// compensating delete itself fails (or the process dies first),
    /// the surviving replicas resurface on recovery — the residual
    /// partial-commit window DESIGN.md §12 documents.
    pub fn compensate_partial(&self, id: AnnotationId, shards: &[usize]) {
        for &k in shards {
            let _ = self.shards[k].write().delete_annotation(id);
            let _ = self.shards[k].read().wal_sync();
        }
    }

    /// The shards holding *any* version of `id` — live or tombstoned.
    /// Lifecycle statements discover owners through this wider probe so
    /// a retract of an already-retracted id reaches an owner shard and
    /// fails with its precise lifecycle status ("already retracted")
    /// instead of a misleading "unknown annotation".
    fn lifecycle_holders(&self, id: AnnotationId) -> Vec<usize> {
        let guards = self.read_all();
        guards
            .iter()
            .enumerate()
            .filter(|(_, g)| g.store().get_any(id).is_ok())
            .map(|(k, _)| k)
            .collect()
    }

    /// Retracts one annotation through the router: routes to the owner
    /// shards actually holding a version of the id (the same
    /// discover-under-read-guards, apply-under-owner-write-locks split
    /// as [`ShardedDatabase::delete_annotation`]). Each owner tombstones
    /// its replica with its shard-local clock tick and decrementally
    /// removes the summary contribution; the first owner's outcome is
    /// returned, or any owner's failure.
    pub fn retract_annotation(&self, id: AnnotationId) -> Result<ExecOutcome> {
        if self.router.is_none() {
            return self.shards[0].write().retract_annotation(id);
        }
        let holders = self.lifecycle_holders(id);
        if holders.is_empty() {
            return Err(Error::Annotation(format!("unknown annotation {id}")));
        }
        let mut first: Option<ExecOutcome> = None;
        let mut failure: Option<Error> = None;
        for &k in &holders {
            match self.shards[k].write().retract_annotation(id) {
                Ok(outcome) => {
                    if first.is_none() {
                        first = Some(outcome);
                    }
                }
                Err(e) => failure = Some(e),
            }
        }
        match failure {
            Some(e) => Err(e),
            None => first.ok_or_else(|| {
                Error::Annotation("annotation resolved to zero owner shards".into())
            }),
        }
    }

    /// Flags one annotation through the router: every owner shard
    /// appends the flag event to its replica's timeline (shard-local
    /// tick), keeping the replicas' histories equivalent.
    pub fn flag_annotation(&self, id: AnnotationId, note: Option<String>) -> Result<ExecOutcome> {
        if self.router.is_none() {
            return self.shards[0].write().flag_annotation(id, note);
        }
        let holders = self.lifecycle_holders(id);
        if holders.is_empty() {
            return Err(Error::Annotation(format!("unknown annotation {id}")));
        }
        let mut first: Option<ExecOutcome> = None;
        let mut failure: Option<Error> = None;
        for &k in &holders {
            match self.shards[k].write().flag_annotation(id, note.clone()) {
                Ok(outcome) => {
                    if first.is_none() {
                        first = Some(outcome);
                    }
                }
                Err(e) => failure = Some(e),
            }
        }
        match failure {
            Some(e) => Err(e),
            None => first.ok_or_else(|| {
                Error::Annotation("annotation resolved to zero owner shards".into())
            }),
        }
    }

    /// Corrects one annotation through the router.
    pub fn correct_annotation(
        &self,
        id: AnnotationId,
        text: String,
        document: Option<String>,
        author: Option<String>,
    ) -> Result<ExecOutcome> {
        self.correct_annotation_routed(id, text, document, author, None)
    }

    /// `CORRECT ANNOTATION` with router-level successor identity: the
    /// successor's `(id, tick)` is allocated **once** from the router's
    /// stamp allocator (unless the statement already carried an internal
    /// `WITH ID … AT …` stamp — the replicated-replay path) and handed
    /// to every owner shard, so all replicas commit a byte-identical
    /// replacement under one global identity. On a partial failure the
    /// successor replicas that did commit get a best-effort compensating
    /// delete; a predecessor left tombstoned on some owners and live on
    /// the failed one is the same residual window as a partial
    /// multi-owner commit (DESIGN.md §12) and is reconciled by the
    /// recovery-time membership sweep.
    fn correct_annotation_routed(
        &self,
        id: AnnotationId,
        text: String,
        document: Option<String>,
        author: Option<String>,
        stamp: Option<(u64, u64)>,
    ) -> Result<ExecOutcome> {
        let Some(router) = &self.router else {
            return match stamp {
                Some(s) => self.shards[0]
                    .write()
                    .correct_annotation_stamped(id, text, document, author, s),
                None => self.shards[0]
                    .write()
                    .correct_annotation(id, text, document, author),
            };
        };
        let holders = self.lifecycle_holders(id);
        if holders.is_empty() {
            return Err(Error::Annotation(format!("unknown annotation {id}")));
        }
        let stamp = match stamp {
            Some(s) => s,
            None => router.alloc.lock().stamp(),
        };
        let mut first: Option<ExecOutcome> = None;
        let mut failure: Option<Error> = None;
        let mut ok_shards: Vec<usize> = Vec::new();
        for &k in &holders {
            let res = self.shards[k].write().correct_annotation_stamped(
                id,
                text.clone(),
                document.clone(),
                author.clone(),
                stamp,
            );
            match res {
                Ok(outcome) => {
                    ok_shards.push(k);
                    if first.is_none() {
                        first = Some(outcome);
                    }
                }
                Err(e) => failure = Some(e),
            }
        }
        match failure {
            Some(e) => {
                // Converge the successor back to "not written" on the
                // owners that already committed it.
                self.compensate_partial(AnnotationId::new(stamp.0), &ok_shards);
                Err(e)
            }
            None => first.ok_or_else(|| {
                Error::Annotation("annotation resolved to zero owner shards".into())
            }),
        }
    }

    /// Applies one prepared annotation to each owner shard in ascending
    /// order. Every owner is attempted (replica convergence before
    /// error reporting); any failure is the returned result, after the
    /// owners that had already stored the replica are compensated.
    fn apply_one(&self, routed: &RoutedAnnotation) -> Result<ExecOutcome> {
        let mut first: Option<ExecOutcome> = None;
        let mut failure: Option<Error> = None;
        let mut ok_shards: Vec<usize> = Vec::new();
        for &k in &routed.shards {
            let res = self.shards[k]
                .write()
                .annotate_rows_batch_stamped(vec![routed.stamped.clone()])
                .pop()
                .unwrap_or_else(|| Err(Error::Execution("batch of one returned no result".into())));
            match res {
                Ok(outcome) => {
                    ok_shards.push(k);
                    if first.is_none() {
                        first = Some(outcome);
                    }
                }
                Err(e) => failure = Some(e),
            }
        }
        match failure {
            Some(e) => {
                self.compensate_partial(AnnotationId::new(routed.stamped.id), &ok_shards);
                Err(e)
            }
            None => first.ok_or_else(|| {
                Error::Annotation("annotation resolved to zero owner shards".into())
            }),
        }
    }

    /// Resolves and stamps a batch of `ADD ANNOTATION` statements under
    /// **one** acquisition of the shard read guards — the sharded
    /// equivalent of [`Database::annotate_batch_sql`]'s staging pass,
    /// with identical per-item failure semantics (a failing item
    /// consumes no id and no tick; `WHERE` predicates over summary
    /// components observe the summary state as of batch start). The
    /// server's sessions call this, then hand each owner shard's slice
    /// to that shard's committer queue.
    pub fn prepare_sql_annotations(&self, stmts: &[SqlStatement]) -> Vec<Result<RoutedAnnotation>> {
        let Some(router) = &self.router else {
            return stmts
                .iter()
                .map(|_| {
                    Err(Error::Execution(
                        "annotation routing requires a sharded database".into(),
                    ))
                })
                .collect();
        };
        let mut out: Vec<Option<Result<RoutedAnnotation>>> = Vec::new();
        out.resize_with(stmts.len(), || None);
        let mut resolved: Vec<(usize, RowAnnotation, Vec<usize>)> = Vec::new();
        {
            // Table rows are replicated on every shard, so plain-column
            // predicates resolve under a single shard's guard — rotated
            // round-robin so concurrent prepares spread across shards
            // instead of convoying behind one committer. Only
            // `SUMMARY_COUNT` predicates read the *partitioned* summary
            // objects and need the full-shard read set — which convoys
            // behind every shard's committer, so high-writer-count
            // pipelines must stay off it in the common case.
            let guards = if stmts.iter().any(|s| match &s.stmt {
                Statement::AddAnnotation {
                    where_clause: Some(w),
                    ..
                } => reads_summaries(w),
                _ => false,
            }) {
                self.read_all()
            } else {
                let k =
                    router.prepare_rr.fetch_add(1, Ordering::Relaxed) as usize % self.shards.len();
                vec![self.shards[k].read()]
            };
            let objects = ShardObjects::new(&guards);
            let shard0 = &*guards[0];
            for (i, s) in stmts.iter().enumerate() {
                let Statement::AddAnnotation {
                    text,
                    document,
                    author,
                    table,
                    columns,
                    where_clause,
                } = &s.stmt
                else {
                    out[i] = Some(Err(Error::Execution(
                        "annotation batches accept only ADD ANNOTATION statements".into(),
                    )));
                    continue;
                };
                match resolve_annotation_targets(
                    shard0.catalog(),
                    shard0.registry(),
                    &objects,
                    table,
                    columns,
                    where_clause.clone(),
                ) {
                    Ok((tid, cols, rows)) => {
                        let owners = owner_set(tid, &rows, self.shards.len());
                        let mut body = AnnotationBody::text(
                            text.clone(),
                            author.clone().unwrap_or_else(|| "anonymous".into()),
                        );
                        if let Some(doc) = document {
                            body = body.with_document(doc.clone());
                        }
                        resolved.push((
                            i,
                            RowAnnotation {
                                table: table.clone(),
                                rows,
                                cols,
                                body,
                            },
                            owners,
                        ));
                    }
                    Err(e) => out[i] = Some(Err(e)),
                }
            }
        }
        // Stamp the whole batch under one allocator lock: ids and ticks
        // come out contiguous and in batch order, as serial staging's
        // would.
        let mut alloc = router.alloc.lock();
        for (i, item, owners) in resolved {
            let (id, tick) = alloc.stamp();
            out[i] = Some(Ok(RoutedAnnotation {
                stamped: StampedRowAnnotation { id, tick, item },
                shards: owners,
            }));
        }
        out.into_iter()
            .map(|r| {
                r.unwrap_or_else(|| Err(Error::Execution("batch item left unresolved".into())))
            })
            .collect()
    }

    /// Applies a prepared batch: groups items per owner shard and
    /// executes each shard's slice as one stamped batch under that
    /// shard's write lock (one WAL record, one amortized maintenance
    /// pass per shard). Multi-owner items report their first shard's
    /// outcome, or any shard's failure — after the owners that did
    /// store the replica are given a best-effort compensating delete
    /// ([`ShardedDatabase::compensate_partial`]).
    pub fn apply_prepared(
        &self,
        prepared: Vec<Result<RoutedAnnotation>>,
    ) -> Vec<Result<ExecOutcome>> {
        let mut results: Vec<Option<Result<ExecOutcome>>> = Vec::new();
        results.resize_with(prepared.len(), || None);
        let mut ids: Vec<Option<AnnotationId>> = vec![None; results.len()];
        let mut ok_shards: Vec<Vec<usize>> = vec![Vec::new(); results.len()];
        let mut per_shard: BTreeMap<usize, Vec<(usize, StampedRowAnnotation)>> = BTreeMap::new();
        for (i, p) in prepared.into_iter().enumerate() {
            match p {
                Err(e) => results[i] = Some(Err(e)),
                Ok(routed) => {
                    ids[i] = Some(AnnotationId::new(routed.stamped.id));
                    for &k in &routed.shards {
                        per_shard
                            .entry(k)
                            .or_default()
                            .push((i, routed.stamped.clone()));
                    }
                }
            }
        }
        for (k, items) in per_shard {
            let indices: Vec<usize> = items.iter().map(|&(i, _)| i).collect();
            let batch: Vec<StampedRowAnnotation> = items.into_iter().map(|(_, s)| s).collect();
            let shard_results = self.shards[k].write().annotate_rows_batch_stamped(batch);
            for (i, res) in indices.into_iter().zip(shard_results) {
                if res.is_ok() {
                    ok_shards[i].push(k);
                }
                let keep_existing = matches!(results[i], Some(Err(_)));
                match res {
                    Err(e) if !keep_existing => results[i] = Some(Err(e)),
                    Ok(outcome) if results[i].is_none() => results[i] = Some(Ok(outcome)),
                    _ => {}
                }
            }
        }
        // A multi-owner item that failed on one owner but stored on
        // another is repaired before its error is reported.
        for (i, result) in results.iter().enumerate() {
            if matches!(result, Some(Err(_))) && !ok_shards[i].is_empty() {
                if let Some(id) = ids[i] {
                    self.compensate_partial(id, &ok_shards[i]);
                }
            }
        }
        results
            .into_iter()
            .map(|r| {
                r.unwrap_or_else(|| Err(Error::Execution("batch item left unresolved".into())))
            })
            .collect()
    }

    /// Sharded [`Database::annotate_batch_sql`]: every item gets its
    /// own result; a failing item does not abort the rest.
    pub fn annotate_batch_sql(&self, stmts: Vec<SqlStatement>) -> Vec<Result<ExecOutcome>> {
        if self.router.is_none() {
            return self.shards[0].write().annotate_batch_sql(stmts);
        }
        let prepared = self.prepare_sql_annotations(&stmts);
        self.apply_prepared(prepared)
    }

    /// Sharded [`Database::annotate_rows_batch`]: typed batch ingestion
    /// with serial-equivalent stamp consumption — an unknown table
    /// consumes nothing; an empty target list (or empty column
    /// signature) consumes its tick but no id, exactly as serial
    /// staging does.
    pub fn annotate_rows_batch(&self, items: Vec<RowAnnotation>) -> Vec<Result<AnnotationId>> {
        let Some(router) = &self.router else {
            return self.shards[0].write().annotate_rows_batch(items);
        };
        let mut prepared: Vec<Result<RoutedAnnotation>> = Vec::with_capacity(items.len());
        {
            let shard0 = self.shards[0].read();
            let mut alloc = router.alloc.lock();
            for item in items {
                let tid = match shard0.catalog().table_id(&item.table) {
                    Ok(t) => t,
                    Err(e) => {
                        prepared.push(Err(e));
                        continue;
                    }
                };
                if item.rows.is_empty() {
                    alloc.clock += 1;
                    prepared.push(Err(Error::Annotation(
                        "annotation must have at least one target".into(),
                    )));
                    continue;
                }
                if item.cols.is_empty() {
                    alloc.clock += 1;
                    prepared.push(Err(Error::Annotation(
                        "annotation target must cover at least one column".into(),
                    )));
                    continue;
                }
                let owners = owner_set(tid, &item.rows, self.shards.len());
                let (id, tick) = alloc.stamp();
                prepared.push(Ok(RoutedAnnotation {
                    stamped: StampedRowAnnotation { id, tick, item },
                    shards: owners,
                }));
            }
        }
        self.apply_prepared(prepared)
            .into_iter()
            .map(|r| {
                r.map(|o| match o {
                    ExecOutcome::Annotated { annotation, .. } => annotation,
                    _ => unreachable!("stamped items produce Annotated outcomes"),
                })
            })
            .collect()
    }

    // -- fan-out reads ----------------------------------------------------

    /// Plans on shard 0's (replicated) catalog, executes through the
    /// morsel executor with per-row summary objects read from each
    /// row's owning shard, and registers the result in the router's
    /// QID registry.
    fn run_select_routed(&self, sel: &insightnotes_sql::SelectStmt) -> Result<QueryResult> {
        let router = self
            .router
            .as_ref()
            .ok_or_else(|| Error::Execution("routed select on a routerless database".into()))?;
        // Execute under the guards, register after dropping them: the
        // QID registry spills result rows to the disk cache, and doing
        // that file I/O while holding every shard's read guard would
        // stall all four committers behind each scan's cache write.
        let (plan, complexity, rows) = {
            let guards = self.read_all();
            let objects = ShardObjects::new(&guards);
            let shard0 = &*guards[0];
            let plan = Planner::new(shard0.catalog(), shard0.registry()).plan_select(sel)?;
            let complexity = estimate_cost(&plan, shard0.catalog()).cost;
            let mut executor = match router.parallelism {
                Some(threads) => {
                    Executor::with_parallelism(shard0.catalog(), shard0.registry(), threads)
                }
                None => Executor::new(shard0.catalog(), shard0.registry()),
            }
            .with_objects(&objects);
            let rows = executor.execute(&plan)?;
            (plan, complexity, rows)
        };
        let schema = plan.schema().clone();
        let qid = router
            .zoom
            .lock()
            .register(schema.clone(), plan, &rows, complexity)?;
        Ok(QueryResult { qid, schema, rows })
    }

    /// Sharded zoom-in: QID metadata and the result cache live at the
    /// router; raw annotation bodies are looked up on whichever shard
    /// owns (a row of) each annotation. Cache I/O — the disk probe, and
    /// the re-offer after a miss — runs with *no* shard guard held
    /// (the same execute-under-guards, file-I/O-after-drop split as
    /// [`ShardedDatabase::run_select_routed`]); only the miss path's
    /// plan re-execution takes the read guards.
    pub fn zoom_in(&self, stmt: &ZoomInStmt) -> Result<ZoomInResult> {
        let Some(router) = &self.router else {
            return self.shards[0].read().zoom_in(stmt);
        };
        let qid = Qid::new(stmt.qid);
        let info_schema = router.zoom.lock().info(qid)?.schema.clone();
        let (predicate, instance, component) = {
            let guards = self.read_all();
            let shard0 = &*guards[0];
            let planner = Planner::new(shard0.catalog(), shard0.registry());
            let predicate = stmt
                .where_clause
                .as_ref()
                .map(|w| planner.bind_expr(w, &info_schema))
                .transpose()?;
            let instance = shard0.registry().instance_id(&stmt.instance)?;
            let component = match &stmt.component {
                ZoomComponent::Index(i) => {
                    if *i == 0 {
                        return Err(Error::ZoomIn("component INDEX is 1-based".into()));
                    }
                    (*i - 1) as usize
                }
                ZoomComponent::Label(name) => match planner.resolve_component(instance, name)? {
                    crate::expr::ComponentSel::Label(i) | crate::expr::ComponentSel::Group(i) => i,
                },
            };
            (predicate, instance, component)
        };

        // Probe the cache under the zoom mutex alone (bound to a `let`
        // so the temporary lock guard drops before the match body — the
        // miss path re-locks the mutex to re-offer).
        let cached = router.zoom.lock().cached_rows(qid)?;
        let (rows, from_cache) = match cached {
            Some(rows) => (rows, true),
            None => {
                let plan = router.zoom.lock().info(qid)?.plan.clone();
                let rows = {
                    let guards = self.read_all();
                    let objects = ShardObjects::new(&guards);
                    let shard0 = &*guards[0];
                    Executor::new(shard0.catalog(), shard0.registry())
                        .with_objects(&objects)
                        .execute(&plan)?
                };
                router.zoom.lock().reoffer(qid, &rows)?;
                (rows, false)
            }
        };

        let guards = self.read_all();
        let mut ids = IdSet::new();
        let mut matched = 0usize;
        for r in &rows {
            let ok = match &predicate {
                Some(p) => p.satisfied(r)?,
                None => true,
            };
            if !ok {
                continue;
            }
            matched += 1;
            if let Some(obj) = r.summary(instance) {
                if component < obj.component_count() {
                    ids = ids.union(&obj.zoom_ids(component)?);
                }
            }
        }

        let mut annotations = Vec::with_capacity(ids.len());
        for id in ids.iter() {
            let aid = AnnotationId::new(id);
            let ann = guards
                .iter()
                .find_map(|g| g.store().get(aid).ok())
                .ok_or_else(|| Error::Annotation(format!("unknown annotation {aid}")))?;
            annotations.push(ZoomedAnnotation {
                id: aid,
                text: ann.body.text.clone(),
                document: ann.body.document.clone(),
                author: ann.body.author.clone(),
            });
        }
        Ok(ZoomInResult {
            annotations,
            from_cache,
            matched_rows: matched,
        })
    }

    // -- durability -------------------------------------------------------

    /// Whether writes are being logged (uniform across shards).
    pub fn wal_enabled(&self) -> bool {
        self.shards[0].read().wal_enabled()
    }

    /// Forces every shard's logged-but-buffered records to disk.
    pub fn wal_sync_all(&self) -> Result<()> {
        for shard in &self.shards {
            shard.read().wal_sync()?;
        }
        Ok(())
    }

    /// Checkpoints every shard in fixed order (`<path>.shard<k>` at
    /// `shards > 1`, the plain legacy path otherwise), then durably
    /// writes the sibling snapshot manifest (`<path>.manifest`) and,
    /// when a WAL directory exists, rewrites its manifest with the new
    /// epoch vector. A crash between per-shard checkpoints is safe:
    /// each shard's own snapshot/WAL epoch pair recovers independently,
    /// and the manifests' epoch vectors are advisory.
    pub fn checkpoint(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        let Some(router) = &self.router else {
            return self.shards[0].write().checkpoint(path);
        };
        let mut epochs = Vec::with_capacity(self.shards.len());
        for (k, shard) in self.shards.iter().enumerate() {
            let mut guard = shard.write();
            guard.checkpoint(shard_snapshot_path(path, k))?;
            epochs.push(guard.epoch());
        }
        // The sibling manifest is written *after* every shard file: in
        // snapshot-only mode it is the commit point of the checkpoint
        // (recovery refuses shard files without one), so it must never
        // describe shard files that are not all on disk yet.
        write_manifest_file(&snapshot_manifest_path(path), self.shards.len(), &epochs)?;
        if let Some(base) = &router.wal_base {
            write_manifest(base, self.shards.len(), &epochs)?;
        }
        Ok(())
    }

    // -- statistics -------------------------------------------------------

    /// Total distinct annotations across shards (a multi-row annotation
    /// replicated to several shards counts once — ids are global).
    pub fn annotation_count(&self) -> usize {
        if self.router.is_none() {
            return self.shards[0].read().store().stats().count;
        }
        let mut seen = IdSet::new();
        for shard in &self.shards {
            let guard = shard.read();
            let names: Vec<String> = guard
                .catalog()
                .table_names()
                .into_iter()
                .map(String::from)
                .collect();
            for name in names {
                let tid = guard.catalog().table_id(&name).expect("listed table");
                for row in guard.store().annotated_rows(tid) {
                    for &(aid, _) in guard.store().on_row(tid, row) {
                        seen.insert(aid.raw());
                    }
                }
            }
        }
        seen.len()
    }

    /// The highest annotation id allocated so far.
    pub fn last_annotation_id(&self) -> u64 {
        match &self.router {
            Some(router) => router.alloc.lock().next_id,
            None => self.shards[0].read().store().last_id(),
        }
    }
}

/// Recovery-time cross-shard membership sweep (the DESIGN.md §12
/// repair): recomputes every live annotation's owner set from its
/// stored targets and converges any annotation a crash left on only
/// part of that set. A missing owner that still holds a *tombstone* of
/// the id means a lifecycle statement (retract / correct) was mid-flight
/// when the crash hit — the surviving live replicas are retracted to
/// complete it, preserving their timelines. A missing owner with no
/// record at all means the original multi-owner commit never finished —
/// the committed replicas are deleted, so the failure the client saw
/// converges back to "not written" instead of resurrecting partially
/// attached. Every repair is WAL-logged and synced on its shard like
/// any other write.
fn reconcile_membership(dbs: &[Arc<RwLock<Database>>]) -> Result<usize> {
    let n = dbs.len();
    let mut live_on: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut owners_of: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (k, db) in dbs.iter().enumerate() {
        let guard = db.read();
        // `as_of(u64::MAX)` is exactly the live set: every tombstone's
        // retirement tick is <= MAX, so none survives the filter.
        for (id, ann) in guard.store().as_of(u64::MAX) {
            live_on.entry(id.raw()).or_default().push(k);
            owners_of.entry(id.raw()).or_insert_with(|| {
                let mut owners: Vec<usize> = ann
                    .targets
                    .iter()
                    .map(|t| shard_of(t.table, t.row, n))
                    .collect();
                owners.sort_unstable();
                owners.dedup();
                owners
            });
        }
    }
    let mut repaired = 0usize;
    for (raw, holders) in &live_on {
        let id = AnnotationId::new(*raw);
        let Some(owners) = owners_of.get(raw) else {
            continue;
        };
        let missing: Vec<usize> = owners
            .iter()
            .copied()
            .filter(|k| !holders.contains(k))
            .collect();
        if missing.is_empty() {
            continue;
        }
        let lifecycle_progressed = missing.iter().any(|&k| {
            dbs.get(k)
                .is_some_and(|db| db.read().store().get_any(id).is_ok())
        });
        for &k in holders {
            let Some(db) = dbs.get(k) else {
                continue;
            };
            let mut guard = db.write();
            if lifecycle_progressed {
                guard.retract_annotation(id)?;
            } else {
                guard.delete_annotation(id)?;
            }
            guard.wal_sync()?;
        }
        repaired += 1;
    }
    Ok(repaired)
}

/// Sorted, deduplicated owner shards of a target row set.
fn owner_set(table: TableId, rows: &[RowId], shards: usize) -> Vec<usize> {
    let mut owners: Vec<usize> = rows.iter().map(|&r| shard_of(table, r, shards)).collect();
    owners.sort_unstable();
    owners.dedup();
    owners
}

/// Per-shard construction config: WAL segment under
/// `<base>/shard-<k>/`, zoom cache under a per-shard subdirectory (a
/// fresh temp dir per shard when unset).
fn shard_config(base: &DbConfig, k: usize) -> DbConfig {
    let mut config = base.clone();
    config.wal_dir = base.wal_dir.as_ref().map(|d| d.join(format!("shard-{k}")));
    config.cache_dir = base
        .cache_dir
        .as_ref()
        .map(|d| d.join(format!("shard-{k}")));
    config
}

/// Whether an unbound predicate reads summary state (`SUMMARY_COUNT`
/// anywhere in the tree). Everything else resolves against replicated
/// row state.
fn reads_summaries(e: &Expr) -> bool {
    match e {
        Expr::SummaryCount { .. } => true,
        Expr::Cmp(_, l, r) | Expr::Arith(_, l, r) | Expr::And(l, r) | Expr::Or(l, r) => {
            reads_summaries(l) || reads_summaries(r)
        }
        Expr::Not(b) | Expr::IsNull(b, _) | Expr::Contains(b, _) => reads_summaries(b),
        Expr::Column(_) | Expr::Literal(_) => false,
    }
}

/// `<path>.shard<k>` — one snapshot file per shard.
pub fn shard_snapshot_path(path: &Path, k: usize) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(format!(".shard{k}"));
    PathBuf::from(os)
}

/// `<path>.manifest` — the sibling manifest of a sharded snapshot set,
/// recording the shard count and epoch vector next to the
/// `<path>.shard<k>` files so a snapshot-only recovery (no WAL
/// directory, hence no WAL-base manifest) detects a shard-count change
/// instead of silently loading a subset of the shard files.
pub fn snapshot_manifest_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".manifest");
    PathBuf::from(os)
}

/// Whether any `<path>.shard<k>` file exists next to `path`.
fn shard_snapshots_present(path: &Path) -> Result<bool> {
    let Some(name) = path.file_name() else {
        return Ok(false);
    };
    let prefix = {
        let mut p = name.to_os_string();
        p.push(".shard");
        p.to_string_lossy().into_owned()
    };
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let entries = match std::fs::read_dir(parent) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        if entry?.file_name().to_string_lossy().starts_with(&prefix) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Rejects WAL-base layouts a sharded open must not touch: an unsharded
/// log, or a manifest recording a different shard count.
fn check_layout_sharded(base: &Path, shards: usize) -> Result<()> {
    if base.join(crate::wal::WAL_FILE).exists() {
        return Err(Error::Execution(format!(
            "write-ahead log at {} was written by an unsharded engine; recover it \
             with shards = 1 (shard-count changes require an explicit migration)",
            base.display()
        )));
    }
    match read_manifest(base)? {
        Some((recorded, _)) if recorded != shards => Err(Error::Execution(format!(
            "shard manifest at {} records {recorded} shard(s) but {shards} were \
             configured; shard-count changes require an explicit migration",
            base.display()
        ))),
        Some(_) => Ok(()),
        None => {
            // No manifest: refuse to guess if shard segments already exist.
            for k in 0..shards.max(2) {
                let dir = base.join(format!("shard-{k}"));
                if dir.exists() {
                    return Err(Error::Execution(format!(
                        "shard WAL segment {} exists but the manifest is missing; \
                         the layout is corrupt or mid-migration",
                        dir.display()
                    )));
                }
            }
            Ok(())
        }
    }
}

/// Durably writes the manifest (`shards` + epoch vector) into the WAL
/// base directory.
fn write_manifest(base: &Path, shards: usize, epochs: &[u64]) -> Result<()> {
    std::fs::create_dir_all(base)?;
    write_manifest_file(&base.join(MANIFEST_FILE), shards, epochs)
}

/// Durably writes a manifest to an explicit file path — the WAL-base
/// `MANIFEST` or a snapshot set's sibling `<path>.manifest`.
fn write_manifest_file(file: &Path, shards: usize, epochs: &[u64]) -> Result<()> {
    let mut text = String::from("insightnotes-shard-manifest v1\n");
    text.push_str(&format!("shards {shards}\n"));
    for (k, e) in epochs.iter().enumerate() {
        text.push_str(&format!("epoch {k} {e}\n"));
    }
    crate::persist::write_durable(file, text.as_bytes())
}

/// Reads the WAL-base manifest, if present.
pub(crate) fn read_manifest(base: &Path) -> Result<Option<(usize, Vec<u64>)>> {
    read_manifest_file(&base.join(MANIFEST_FILE))
}

/// Reads a manifest file, if present: `(shard count, epoch vector)`.
fn read_manifest_file(path: &Path) -> Result<Option<(usize, Vec<u64>)>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let corrupt = |what: &str| {
        Error::Execution(format!(
            "shard manifest at {} is corrupt: {what}",
            path.display()
        ))
    };
    let mut lines = text.lines();
    if lines.next() != Some("insightnotes-shard-manifest v1") {
        return Err(corrupt("bad header"));
    }
    let shards: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("shards "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| corrupt("missing shard count"))?;
    let mut epochs = Vec::with_capacity(shards);
    for (k, line) in lines.enumerate() {
        let epoch = line
            .strip_prefix(&format!("epoch {k} "))
            .and_then(|e| e.parse::<u64>().ok())
            .ok_or_else(|| corrupt("bad epoch line"))?;
        epochs.push(epoch);
    }
    if epochs.len() != shards {
        return Err(corrupt("epoch vector length mismatch"));
    }
    Ok(Some((shards, epochs)))
}

/// Builds router state over freshly opened shards: the id/tick
/// allocator resumes past the maximum any shard has durably seen.
fn build_router(config: &DbConfig, shards: &[Arc<RwLock<Database>>]) -> Result<RouterState> {
    let cache_dir = config.cache_dir.as_ref().map_or_else(
        || {
            std::env::temp_dir().join(format!(
                "insightnotes-router-{}-{}",
                std::process::id(),
                ROUTER_COUNTER.fetch_add(1, Ordering::Relaxed)
            ))
        },
        |d| d.join("router"),
    );
    let cache = DiskCache::new(cache_dir, config.cache_budget, config.policy.build())?;
    let mut next_id = 0u64;
    let mut clock = 0u64;
    for shard in shards {
        let guard = shard.read();
        next_id = next_id.max(guard.store().last_id());
        clock = clock.max(guard.clock_now());
    }
    Ok(RouterState {
        alloc: Mutex::new(StampAlloc { next_id, clock }).with_class(lock_class::ALLOC),
        zoom: Mutex::new(ZoomRegistry::new(cache)).with_class(lock_class::ZOOM),
        broadcast: Mutex::new(()).with_class(lock_class::BROADCAST),
        prepare_rr: AtomicU64::new(0),
        parallelism: config.parallelism,
        wal_base: config.wal_dir.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_deterministic_and_single_shard_collapses() {
        let t = TableId::new(3);
        for r in 1..100u64 {
            let row = RowId::new(r);
            assert_eq!(shard_of(t, row, 1), 0);
            assert_eq!(shard_of(t, row, 4), shard_of(t, row, 4));
            assert!(shard_of(t, row, 4) < 4);
        }
    }

    #[test]
    fn shard_of_spreads_rows() {
        let t = TableId::new(1);
        let mut hit = [0usize; 4];
        for r in 1..=400u64 {
            hit[shard_of(t, RowId::new(r), 4)] += 1;
        }
        for (k, &h) in hit.iter().enumerate() {
            assert!(h > 40, "shard {k} starved: {h}/400");
        }
    }

    #[test]
    fn manifest_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("insightnotes-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(read_manifest(&dir).unwrap(), None);
        write_manifest(&dir, 4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), Some((4, vec![1, 2, 3, 4])));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_create_rejects_unsharded_wal() {
        let dir = std::env::temp_dir().join(format!(
            "insightnotes-shardlayout-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(crate::wal::WAL_FILE), b"").unwrap();
        let config = DbConfig {
            wal_dir: Some(dir.clone()),
            ..DbConfig::default()
        };
        let err = ShardedDatabase::create(config, 4).unwrap_err();
        assert!(err.to_string().contains("unsharded"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
