//! Zoom-in query processing (Figure 3).
//!
//! Every executed query gets a QID and its result (tuples + summary
//! objects) is offered to the disk cache. A later `ZOOMIN REFERENCE QID n
//! WHERE … ON instance INDEX i` selects tuples from that result, opens
//! the named summary object's i-th component, and resolves it to the raw
//! annotations behind it. On a cache hit the result is deserialized from
//! disk; on a miss (evicted) the original plan is re-executed — the
//! latency gap between the two paths is exactly what experiment E4
//! measures.

use crate::annotated::AnnotatedRow;
use crate::cache::DiskCache;
use crate::exec::Executor;
use crate::plan::logical::LogicalPlan;
use insightnotes_common::{codec::Encodable, Error, Qid, Result};
use insightnotes_storage::{Catalog, Schema};
use insightnotes_summaries::SummaryRegistry;
use std::collections::HashMap;

/// Retained metadata for one executed query (small; kept in memory even
/// after the result's bytes are evicted from the disk cache).
#[derive(Debug, Clone)]
pub struct ResultInfo {
    /// The query id.
    pub qid: Qid,
    /// Output schema (zoom-in predicates bind against it).
    pub schema: Schema,
    /// The executed plan (re-run on cache miss).
    pub plan: LogicalPlan,
    /// Planner cost estimate (the RCO complexity factor).
    pub complexity: f64,
}

/// QID allocation, per-query metadata, and the result cache.
#[derive(Debug)]
pub struct ZoomRegistry {
    next_qid: u64,
    infos: HashMap<Qid, ResultInfo>,
    cache: DiskCache,
}

impl ZoomRegistry {
    /// Creates a registry over a disk cache.
    pub fn new(cache: DiskCache) -> Self {
        Self {
            // QIDs start at 100 so they read like the paper's examples.
            next_qid: 100,
            infos: HashMap::new(),
            cache,
        }
    }

    /// Registers a query result: allocates its QID, retains its metadata,
    /// and offers the serialized rows to the cache.
    pub fn register(
        &mut self,
        schema: Schema,
        plan: LogicalPlan,
        rows: &[AnnotatedRow],
        complexity: f64,
    ) -> Result<Qid> {
        self.next_qid += 1;
        let qid = Qid::new(self.next_qid);
        self.infos.insert(
            qid,
            ResultInfo {
                qid,
                schema,
                plan,
                complexity,
            },
        );
        let payload = encode_rows(rows);
        self.cache.put(qid, &payload, complexity)?;
        Ok(qid)
    }

    /// Metadata for a QID.
    pub fn info(&self, qid: Qid) -> Result<&ResultInfo> {
        self.infos
            .get(&qid)
            .ok_or_else(|| Error::ZoomIn(format!("unknown QID {qid}")))
    }

    /// Fetches the result rows of a QID: from cache when present,
    /// otherwise by re-executing the retained plan. Returns the rows and
    /// whether they came from the cache.
    pub fn fetch_rows(
        &mut self,
        qid: Qid,
        catalog: &Catalog,
        registry: &SummaryRegistry,
    ) -> Result<(Vec<AnnotatedRow>, bool)> {
        self.fetch_rows_with(qid, catalog, registry, registry)
    }

    /// [`ZoomRegistry::fetch_rows`] with an explicit summary-object
    /// source for the re-execution path — the shard router passes its
    /// cross-shard facade here so a cache miss re-reads every row's
    /// objects from the owning shard.
    pub fn fetch_rows_with(
        &mut self,
        qid: Qid,
        catalog: &Catalog,
        registry: &SummaryRegistry,
        objects: &(dyn crate::exec::ObjectSource + Sync),
    ) -> Result<(Vec<AnnotatedRow>, bool)> {
        if let Some(rows) = self.cached_rows(qid)? {
            return Ok((rows, true));
        }
        // Cache miss: re-execute and (re-)offer to the cache.
        let plan = self.info(qid)?.plan.clone();
        let rows = Executor::new(catalog, registry)
            .with_objects(objects)
            .execute(&plan)?;
        self.reoffer(qid, &rows)?;
        Ok((rows, false))
    }

    /// The cached result rows of a QID, if resident (`None` on a cache
    /// miss; an error only for an unknown QID). Unlike
    /// [`ZoomRegistry::fetch_rows_with`] this never re-executes, so a
    /// caller that must not hold engine locks across the (potentially
    /// expensive) re-execution can probe the cache first, recompute
    /// under whatever locks the plan needs, and hand the rows back via
    /// [`ZoomRegistry::reoffer`] — the shard router's stall-free
    /// zoom-in path.
    pub fn cached_rows(&mut self, qid: Qid) -> Result<Option<Vec<AnnotatedRow>>> {
        self.info(qid)?;
        match self.cache.get(qid)? {
            Some(bytes) => Ok(Some(decode_rows(&bytes)?)),
            None => Ok(None),
        }
    }

    /// Re-offers externally re-executed rows of a known QID to the
    /// cache: the write half of the [`ZoomRegistry::cached_rows`] miss
    /// path. Returns whether the cache admitted the entry.
    pub fn reoffer(&mut self, qid: Qid, rows: &[AnnotatedRow]) -> Result<bool> {
        let complexity = self.info(qid)?.complexity;
        let payload = encode_rows(rows);
        self.cache.put(qid, &payload, complexity)
    }

    /// Drops every cached result payload while retaining the per-QID
    /// metadata. Cached rows embed the summary objects they were computed
    /// with, so once an annotation is deleted, retracted, or corrected,
    /// those bytes describe a state that no longer exists — serving them
    /// would resurrect dropped snippets and stale counts. After
    /// invalidation the next fetch of any QID re-executes its retained
    /// plan against the current registry and re-admits the fresh result.
    pub fn invalidate_results(&mut self) {
        for qid in self.infos.keys().copied().collect::<Vec<_>>() {
            let _ = self.cache.remove(qid);
        }
    }

    /// The underlying cache (stats, policy inspection).
    pub fn cache(&self) -> &DiskCache {
        &self.cache
    }

    /// Mutable access to the underlying cache.
    pub fn cache_mut(&mut self) -> &mut DiskCache {
        &mut self.cache
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.infos.len()
    }
}

fn encode_rows(rows: &[AnnotatedRow]) -> Vec<u8> {
    let mut enc = insightnotes_common::codec::Encoder::with_capacity(1024);
    enc.varint(rows.len() as u64);
    for r in rows {
        r.encode(&mut enc);
    }
    enc.finish()
}

fn decode_rows(bytes: &[u8]) -> Result<Vec<AnnotatedRow>> {
    let mut dec = insightnotes_common::codec::Decoder::new(bytes);
    let n = dec.varint()? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        rows.push(AnnotatedRow::decode(&mut dec)?);
    }
    dec.expect_end()?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Rco;
    use insightnotes_storage::{Column, DataType, Row, Value};

    fn temp_cache(tag: &str, budget: u64) -> DiskCache {
        let dir = std::env::temp_dir().join(format!(
            "insightnotes-zoom-test-{}-{tag}",
            std::process::id()
        ));
        DiskCache::new(dir, budget, Box::new(Rco::default())).unwrap()
    }

    fn setup_catalog() -> (Catalog, insightnotes_common::TableId) {
        let mut cat = Catalog::new();
        let id = cat
            .create_table("t", Schema::new(vec![Column::new("x", DataType::Int)]))
            .unwrap();
        for i in 0..3 {
            cat.table_mut(id)
                .unwrap()
                .insert(Row::new(vec![Value::Int(i)]))
                .unwrap();
        }
        (cat, id)
    }

    fn scan_plan(id: insightnotes_common::TableId, cat: &Catalog) -> LogicalPlan {
        LogicalPlan::Scan {
            table: id,
            binding: "t".into(),
            schema: cat.table(id).unwrap().schema().qualify("t"),
        }
    }

    #[test]
    fn register_assigns_distinct_qids() {
        let (cat, id) = setup_catalog();
        let mut zr = ZoomRegistry::new(temp_cache("qids", 1 << 20));
        let plan = scan_plan(id, &cat);
        let a = zr
            .register(plan.schema().clone(), plan.clone(), &[], 1.0)
            .unwrap();
        let b = zr.register(plan.schema().clone(), plan, &[], 1.0).unwrap();
        assert_ne!(a, b);
        assert!(a.raw() > 100);
        assert_eq!(zr.query_count(), 2);
        assert!(zr.info(Qid(9999)).is_err());
    }

    #[test]
    fn fetch_serves_from_cache_then_reexecutes_after_eviction() {
        let (cat, id) = setup_catalog();
        let reg = SummaryRegistry::new();
        let plan = scan_plan(id, &cat);
        let rows = Executor::new(&cat, &reg).execute(&plan).unwrap();

        let mut zr = ZoomRegistry::new(temp_cache("fetch", 1 << 20));
        let qid = zr
            .register(plan.schema().clone(), plan, &rows, 10.0)
            .unwrap();
        let (got, from_cache) = zr.fetch_rows(qid, &cat, &reg).unwrap();
        assert!(from_cache);
        assert_eq!(got, rows);

        // Force eviction, then fetch must re-execute.
        zr.cache_mut().remove(qid).unwrap();
        let (got2, from_cache2) = zr.fetch_rows(qid, &cat, &reg).unwrap();
        assert!(!from_cache2);
        assert_eq!(got2, rows);
        // Re-execution re-admitted the result.
        assert!(zr.cache().contains(qid));
    }
}
