//! The `Database` facade: catalog + annotation store + summary registry +
//! query engine + zoom-in cache behind one `execute_sql` entry point.
//!
//! This is the public API a downstream user adopts:
//!
//! ```
//! use insightnotes_engine::Database;
//!
//! let mut db = Database::new();
//! db.execute_sql("CREATE TABLE birds (name TEXT, weight FLOAT)").unwrap();
//! db.execute_sql("INSERT INTO birds VALUES ('Swan Goose', 3.2)").unwrap();
//! db.execute_sql(
//!     "CREATE SUMMARY INSTANCE ClassBird1 TYPE CLASSIFIER \
//!      LABELS ('Behavior', 'Other') \
//!      TRAIN ('Behavior': 'eating stonewort near shore', 'Other': 'see reference')",
//! )
//! .unwrap();
//! db.execute_sql("LINK SUMMARY ClassBird1 TO birds").unwrap();
//! db.execute_sql("ADD ANNOTATION 'found eating stonewort' ON birds").unwrap();
//! let result = db.query("SELECT name FROM birds").unwrap();
//! assert_eq!(result.rows.len(), 1);
//! assert_eq!(result.rows[0].summaries.len(), 1);
//! ```

use crate::annotated::AnnotatedRow;
use crate::cache::{DiskCache, Lfu, Lru, Rco, ReplacementPolicy};
use crate::exec::{trace::render_row_resolved, Executor, TraceLog};
use crate::expr::SExpr;
use crate::plan::{estimate_cost, LogicalPlan, Planner};
use crate::raw::{RawExecutor, RawRow};
use crate::wal::{SyncPolicy, Wal, WalRecord, WalRowAnnotation, WalStampedAnnotation};
use crate::zoomin::ZoomRegistry;
use insightnotes_annotations::{AnnotationBody, AnnotationStore, ColSig, LifecycleEvent, Target};
use insightnotes_common::{
    AnnotationId, ColumnId, Error, InstanceId, LogicalClock, Qid, Result, RowId, TableId,
};
use insightnotes_sql::{
    parse, parse_one, quote_str, CreateInstanceStmt, Expr, Literal, SelectStmt, Statement,
    StatementClass, ZoomComponent, ZoomInStmt,
};
use insightnotes_storage::{Catalog, Column, DataType, Row, Schema, Value};
use insightnotes_summaries::{
    rebuild_row_from_store, refresh_after_add, InstanceDef, InstanceProperties, MaintenanceMode,
    MaintenanceStats, SummaryRegistry,
};
use insightnotes_text::{ClusterConfig, NaiveBayes, SnippetConfig};
use parking_lot::witness::class as lock_class;
use parking_lot::{Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DB_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Cache replacement policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's Recency-Complexity-Overhead policy.
    Rco,
    /// Least-recently-used baseline.
    Lru,
    /// Least-frequently-used baseline.
    Lfu,
}

impl PolicyKind {
    pub(crate) fn build(self) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Rco => Box::new(Rco::default()),
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::Lfu => Box::new(Lfu),
        }
    }
}

/// Database construction options.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Zoom-in cache directory (`None` = a fresh temp directory).
    pub cache_dir: Option<PathBuf>,
    /// Zoom-in cache byte budget.
    pub cache_budget: u64,
    /// Cache replacement policy.
    pub policy: PolicyKind,
    /// Summary maintenance strategy.
    pub maintenance: MaintenanceMode,
    /// Query-execution worker threads (`None` = serial). Traced queries
    /// (demo scenario 3) always run serially regardless, so their
    /// per-operator output stays deterministic.
    pub parallelism: Option<usize>,
    /// Write-ahead log directory. `None` (the default) disables logging
    /// entirely — writes live in memory until an explicit
    /// [`Database::save`], exactly as before. When set, every write is
    /// appended to the log before it executes, and
    /// [`Database::recover`] replays the log tail on restart.
    pub wal_dir: Option<PathBuf>,
    /// When logged records are fsynced (ignored unless `wal_dir` is set).
    pub wal_sync: SyncPolicy,
}

impl Default for DbConfig {
    fn default() -> Self {
        Self {
            cache_dir: None,
            cache_budget: 16 << 20,
            policy: PolicyKind::Rco,
            maintenance: MaintenanceMode::Incremental,
            parallelism: None,
            wal_dir: None,
            wal_sync: SyncPolicy::Batch,
        }
    }
}

/// A parsed statement that still carries its source text. The
/// write-ahead log stores logical writes as SQL text (replay simply
/// re-executes them), so WAL-enabled write entry points need both forms;
/// pairing them in one value lets the server parse once at the session
/// layer and hand the committer something it can both log and execute.
#[derive(Debug, Clone)]
pub struct SqlStatement {
    /// The statement's source text (what the WAL records).
    pub sql: String,
    /// The parsed form (what the executor runs). Invariant: this is the
    /// parse of `sql`.
    pub stmt: Statement,
}

impl SqlStatement {
    /// Parses one statement, keeping its source text alongside.
    pub fn parse(sql: impl Into<String>) -> Result<Self> {
        let sql = sql.into();
        let stmt = parse_one(&sql)?;
        Ok(Self { sql, stmt })
    }
}

/// What [`Database::recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot file existed and was loaded.
    pub snapshot_loaded: bool,
    /// Write-ahead log records re-executed on top of the snapshot.
    pub records_replayed: usize,
    /// Bytes cut off the log's torn tail (unacked writes lost mid-append).
    pub bytes_truncated: u64,
    /// Whether a pre-checkpoint log (every record already covered by the
    /// snapshot) was discarded instead of replayed.
    pub stale_wal_discarded: bool,
    /// Whether a stale snapshot temp file from a crashed save was swept.
    pub tmp_removed: bool,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "snapshot {}; {} WAL record(s) replayed; {} torn byte(s) truncated{}{}",
            if self.snapshot_loaded {
                "loaded"
            } else {
                "absent"
            },
            self.records_replayed,
            self.bytes_truncated,
            if self.stale_wal_discarded {
                "; stale pre-checkpoint WAL discarded"
            } else {
                ""
            },
            if self.tmp_removed {
                "; stale snapshot temp file removed"
            } else {
                ""
            },
        )
    }
}

/// One query's result: QID, output schema, and annotated rows.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result's QID (referenced by `ZOOMIN`).
    pub qid: Qid,
    /// Output schema.
    pub schema: Schema,
    /// Result tuples with their propagated summary objects.
    pub rows: Vec<AnnotatedRow>,
}

/// One raw annotation returned by a zoom-in.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoomedAnnotation {
    /// Annotation id.
    pub id: AnnotationId,
    /// Free text.
    pub text: String,
    /// Attached document, if any.
    pub document: Option<String>,
    /// Curator.
    pub author: String,
}

/// The outcome of a `ZOOMIN` command.
#[derive(Debug, Clone)]
pub struct ZoomInResult {
    /// The raw annotations behind the expanded component.
    pub annotations: Vec<ZoomedAnnotation>,
    /// Whether the referenced result was served from the disk cache.
    pub from_cache: bool,
    /// How many result tuples matched the refinement predicate.
    pub matched_rows: usize,
}

/// One item of a typed [`Database::annotate_rows_batch`] call: an
/// annotation and the explicit rows it attaches to.
#[derive(Debug, Clone)]
pub struct RowAnnotation {
    /// Target table name.
    pub table: String,
    /// Explicit target row ids.
    pub rows: Vec<RowId>,
    /// Covered columns.
    pub cols: ColSig,
    /// The annotation itself (`created` is stamped at staging time).
    pub body: AnnotationBody,
}

/// A [`RowAnnotation`] whose id and clock tick were allocated up front
/// by the shard router. Sharded ingestion stamps `(id, tick)` once at
/// the router so every shard stores the same annotation under the same
/// identity a serial single-database run would have produced.
#[derive(Debug, Clone)]
pub struct StampedRowAnnotation {
    /// Router-allocated annotation id.
    pub id: u64,
    /// Router-allocated logical-clock tick (becomes `body.created`).
    pub tick: u64,
    /// The annotation and its explicit targets.
    pub item: RowAnnotation,
}

/// The result of executing one statement.
#[derive(Debug)]
pub enum ExecOutcome {
    /// `CREATE TABLE` succeeded.
    TableCreated(String),
    /// `DROP TABLE` succeeded.
    TableDropped(String),
    /// `INSERT` succeeded.
    Inserted {
        /// Target table.
        table: String,
        /// Rows inserted.
        rows: usize,
    },
    /// `ADD ANNOTATION` succeeded.
    Annotated {
        /// The new annotation's id.
        annotation: AnnotationId,
        /// Number of target rows.
        targets: usize,
        /// Maintenance work performed.
        maintenance: MaintenanceStats,
    },
    /// `CREATE SUMMARY INSTANCE` succeeded.
    InstanceCreated {
        /// Instance name.
        name: String,
        /// Assigned id.
        id: InstanceId,
    },
    /// `DROP SUMMARY INSTANCE` succeeded.
    InstanceDropped(String),
    /// `LINK SUMMARY` succeeded.
    Linked {
        /// Instance name.
        instance: String,
        /// Table name.
        table: String,
        /// Annotated rows caught up by rebuild.
        rows_rebuilt: usize,
    },
    /// `UNLINK SUMMARY` succeeded.
    Unlinked {
        /// Instance name.
        instance: String,
        /// Table name.
        table: String,
    },
    /// A SELECT produced a result.
    Query(QueryResult),
    /// A ZOOMIN produced raw annotations.
    ZoomIn(ZoomInResult),
    /// An EXPLAIN produced a plan rendering.
    Explain(String),
    /// `CREATE INDEX` / `DROP INDEX` succeeded.
    IndexChanged {
        /// Target table.
        table: String,
        /// Indexed column.
        column: String,
        /// True for CREATE, false for DROP.
        created: bool,
    },
    /// `DELETE FROM` removed rows (and their annotations / summaries).
    RowsDeleted {
        /// Target table.
        table: String,
        /// Rows removed.
        rows: usize,
    },
    /// `DELETE ANNOTATION` removed an annotation and refreshed summaries.
    AnnotationDeleted {
        /// The removed annotation.
        annotation: AnnotationId,
        /// Rows whose summaries were rebuilt.
        rows_refreshed: usize,
    },
    /// `RETRACT ANNOTATION` tombstoned an annotation and removed its
    /// summary contribution.
    AnnotationRetracted {
        /// The retracted annotation.
        annotation: AnnotationId,
        /// Rows whose summaries were refreshed.
        rows_refreshed: usize,
    },
    /// `CORRECT ANNOTATION` superseded an annotation with a replacement.
    AnnotationCorrected {
        /// The superseded (now tombstoned) annotation.
        annotation: AnnotationId,
        /// The replacement annotation's id.
        successor: AnnotationId,
        /// Rows whose summaries were refreshed.
        rows_refreshed: usize,
    },
    /// `FLAG ANNOTATION` marked an annotation as disputed.
    AnnotationFlagged {
        /// The flagged annotation.
        annotation: AnnotationId,
    },
    /// `HISTORY` replayed an annotation's lifecycle timeline.
    History {
        /// The inspected annotation.
        annotation: AnnotationId,
        /// Its lifecycle events, oldest first (creation included).
        events: Vec<LifecycleEvent>,
    },
}

/// An InsightNotes database instance.
///
/// The API is split into a **read path** (`&self`: [`Database::query`],
/// [`Database::zoom_in`], [`Database::execute_read`], …) and a **write
/// path** (`&mut self`: [`Database::execute`] for DDL / INSERT /
/// ADD ANNOTATION / registry changes). Session-local state that even
/// read-only queries touch — QID assignment and the zoom-in result
/// cache — lives behind an interior [`Mutex`], so many sessions can run
/// queries concurrently under one shared lock (`RwLock<Database>` in
/// `insightd`) while writers take the exclusive side.
#[derive(Debug)]
pub struct Database {
    catalog: Catalog,
    store: AnnotationStore,
    registry: SummaryRegistry,
    zoom: Mutex<ZoomRegistry>,
    clock: LogicalClock,
    config: DbConfig,
    /// Checkpoint epoch: bumped by [`Database::checkpoint`], stamped into
    /// snapshots and the WAL header so recovery can tell a log that
    /// extends the snapshot from one the snapshot already covers.
    epoch: u64,
    /// The write-ahead log, when [`DbConfig::wal_dir`] is set. Interior
    /// mutability so [`Database::wal_sync`] works from `&self` (the
    /// server syncs under its shared lock after releasing the writer).
    wal: Option<Mutex<Wal>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Creates a database with default configuration (RCO cache in a
    /// fresh temp directory).
    pub fn new() -> Self {
        Self::with_config(DbConfig::default()).expect("default database construction")
    }

    /// Creates a database with explicit configuration. When the
    /// configuration names a WAL directory, a fresh (empty) log is
    /// created; if one already exists this **fails** — an existing log
    /// holds writes that must be replayed, so go through
    /// [`Database::recover`] instead.
    pub fn with_config(config: DbConfig) -> Result<Self> {
        let mut db = Self::with_config_detached(config)?;
        if let Some(dir) = db.config.wal_dir.clone() {
            let w = Wal::create(&dir, db.epoch, db.config.wal_sync)?;
            db.wal = Some(Mutex::new(w).with_class(lock_class::WAL));
        }
        Ok(db)
    }

    /// Builds the database without touching the WAL directory; recovery
    /// attaches the log itself after replaying it.
    fn with_config_detached(config: DbConfig) -> Result<Self> {
        let dir = config.cache_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "insightnotes-db-{}-{}",
                std::process::id(),
                DB_COUNTER.fetch_add(1, Ordering::Relaxed)
            ))
        });
        let cache = DiskCache::new(dir, config.cache_budget, config.policy.build())?;
        Ok(Self {
            catalog: Catalog::new(),
            store: AnnotationStore::new(),
            registry: SummaryRegistry::new(),
            zoom: Mutex::new(ZoomRegistry::new(cache)).with_class(lock_class::ZOOM),
            clock: LogicalClock::new(),
            config,
            epoch: 0,
            wal: None,
        })
    }

    /// Swaps in restored durable state (snapshot open path), resuming
    /// the checkpoint epoch and logical clock where the snapshot left
    /// off. Session state (QIDs, caches) starts fresh.
    pub(crate) fn replace_state(
        &mut self,
        catalog: Catalog,
        store: AnnotationStore,
        registry: SummaryRegistry,
        epoch: u64,
        clock: u64,
    ) {
        self.catalog = catalog;
        self.store = store;
        self.registry = registry;
        self.epoch = epoch;
        self.clock.advance_to(clock);
    }

    /// Opens a database with full crash recovery: sweeps a stale
    /// snapshot temp file, loads the snapshot if one exists (a missing
    /// file means a fresh database — the first checkpoint creates it),
    /// then replays the write-ahead log tail on top, truncating the log
    /// at its first torn or corrupt record. Replay re-executes each
    /// logged statement through the normal execution paths, so the
    /// recovered state is byte-identical to a serial re-run of the
    /// logged prefix; records that failed originally fail identically
    /// again (the log is written before execution) and are skipped.
    ///
    /// Without a configured [`DbConfig::wal_dir`] this degrades to
    /// [`Database::open_with_config`] semantics plus temp-file sweeping.
    pub fn recover(snapshot: Option<&Path>, config: DbConfig) -> Result<(Self, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let mut db = Self::with_config_detached(config)?;
        if let Some(path) = snapshot {
            report.tmp_removed = crate::persist::remove_stale_tmp(path);
            if path.exists() {
                let bytes = std::fs::read(path)?;
                let (catalog, store, registry, epoch, clock) = crate::persist::restore(&bytes)?;
                db.replace_state(catalog, store, registry, epoch, clock);
                report.snapshot_loaded = true;
            }
        }
        let Some(dir) = db.config.wal_dir.clone() else {
            return Ok((db, report));
        };
        let policy = db.config.wal_sync;
        match Wal::open(&dir, policy)? {
            None => {
                db.wal = Some(
                    Mutex::new(Wal::create(&dir, db.epoch, policy)?).with_class(lock_class::WAL),
                );
            }
            Some(scan) => {
                report.bytes_truncated = scan.truncated_bytes;
                match scan.wal.epoch().cmp(&db.epoch) {
                    std::cmp::Ordering::Less => {
                        // The crash hit between a checkpoint's snapshot
                        // rename and its log rotation: every logged
                        // record is already in the snapshot, so finish
                        // the rotation instead of double-applying.
                        report.stale_wal_discarded = true;
                        let mut w = scan.wal;
                        w.rotate(db.epoch)?;
                        db.wal = Some(Mutex::new(w).with_class(lock_class::WAL));
                    }
                    std::cmp::Ordering::Greater => {
                        return Err(Error::Execution(format!(
                            "write-ahead log epoch {} is ahead of snapshot epoch {}; \
                             the snapshot is stale or belongs to another database",
                            scan.wal.epoch(),
                            db.epoch
                        )));
                    }
                    std::cmp::Ordering::Equal => {
                        // Replay before attaching the log, so replayed
                        // statements run through the public write paths
                        // without being appended a second time.
                        report.records_replayed = scan.records.len();
                        for record in &scan.records {
                            db.replay(record);
                        }
                        db.wal = Some(Mutex::new(scan.wal).with_class(lock_class::WAL));
                    }
                }
            }
        }
        Ok((db, report))
    }

    /// Re-executes one logged record. Errors are deliberately swallowed:
    /// the log is appended *before* execution, so a record whose
    /// statement failed originally (unknown table, empty target set)
    /// re-fails identically here — that re-failure is the correct
    /// recovered state, not a recovery problem.
    fn replay(&mut self, record: &WalRecord) {
        debug_assert!(
            self.wal.is_none(),
            "replay must run before the log attaches"
        );
        match record {
            WalRecord::Script { sql } => {
                let _ = self.execute_sql(sql);
            }
            WalRecord::Batch { statements } => {
                let stmts: Vec<Statement> = statements
                    .iter()
                    .filter_map(|s| parse_one(s).ok())
                    .collect();
                let _ = self.annotate_batch(stmts);
            }
            WalRecord::Rows { items } => {
                let items: Vec<RowAnnotation> = items
                    .iter()
                    .map(|i| RowAnnotation {
                        table: i.table.clone(),
                        rows: i.rows.iter().map(|&r| RowId::new(r)).collect(),
                        cols: ColSig::from_bits(i.cols),
                        body: replay_body(&i.text, &i.document, &i.author),
                    })
                    .collect();
                let _ = self.annotate_rows_batch(items);
            }
            WalRecord::Stamped { items } => {
                let items: Vec<StampedRowAnnotation> = items
                    .iter()
                    .map(|s| StampedRowAnnotation {
                        id: s.id,
                        tick: s.tick,
                        item: RowAnnotation {
                            table: s.item.table.clone(),
                            rows: s.item.rows.iter().map(|&r| RowId::new(r)).collect(),
                            cols: ColSig::from_bits(s.item.cols),
                            body: replay_body(&s.item.text, &s.item.document, &s.item.author),
                        },
                    })
                    .collect();
                let _ = self.annotate_rows_batch_stamped(items);
            }
            WalRecord::Targets {
                targets,
                text,
                document,
                author,
            } => {
                let targets: Vec<(TableId, RowId, ColSig)> = targets
                    .iter()
                    .map(|&(t, r, c)| (TableId::new(t), RowId::new(r), ColSig::from_bits(c)))
                    .collect();
                let _ = self.annotate_targets(targets, replay_body(text, document, author));
            }
        }
    }

    /// Checkpoints: writes a durable snapshot stamped with the next
    /// epoch, then rotates the write-ahead log down to an empty header.
    /// A crash anywhere in between is safe — recovery either sees the
    /// old snapshot with a matching log (replays it) or the new snapshot
    /// with a stale log (discards it). Without a WAL this is just
    /// [`Database::save`].
    pub fn checkpoint(&mut self, path: impl AsRef<Path>) -> Result<()> {
        if self.wal.is_none() {
            return self.save(path);
        }
        self.epoch += 1;
        match self.save(path.as_ref()) {
            Ok(()) => {
                self.wal
                    .as_ref()
                    .expect("checked above")
                    .lock()
                    .rotate(self.epoch)?;
                Ok(())
            }
            Err(e) => {
                self.epoch -= 1;
                Err(e)
            }
        }
    }

    // -- write-ahead log ---------------------------------------------------

    /// Whether writes are being logged.
    pub fn wal_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// Forces every logged-but-buffered record to disk. This is the
    /// group-commit point under [`SyncPolicy::Batch`]: the server calls
    /// it once per drained batch and releases acks only afterwards. A
    /// no-op when the WAL is off, under [`SyncPolicy::Off`], or when
    /// nothing is pending.
    pub fn wal_sync(&self) -> Result<()> {
        if let Some(w) = &self.wal {
            w.lock().sync()?;
        }
        Ok(())
    }

    /// `(appends, fsyncs)` performed by the log, if one is attached.
    pub fn wal_io_stats(&self) -> Option<(u64, u64)> {
        self.wal.as_ref().map(|w| w.lock().io_stats())
    }

    /// The log's durable watermark — its current byte length, every bit
    /// of which survives a crash once [`Database::wal_sync`] returns.
    /// Fault-injection tests snapshot this after each sync to know which
    /// acked prefix must be recoverable.
    pub fn wal_len(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.lock().len())
    }

    fn wal_append(&self, record: &WalRecord) -> Result<()> {
        if let Some(w) = &self.wal {
            w.lock().append(record)?;
        }
        Ok(())
    }

    /// The log's committed watermark `(epoch, offset)` — the prefix that
    /// is safe to ship to replicas: fsynced under [`SyncPolicy::Always`]
    /// / [`SyncPolicy::Batch`], everything appended under
    /// [`SyncPolicy::Off`]. `None` when no log is attached.
    pub fn wal_committed(&self) -> Option<(u64, u64)> {
        self.wal.as_ref().map(|w| {
            let w = w.lock();
            (w.epoch(), w.committed_len())
        })
    }

    /// The log file's path, if a log is attached. Replication tails the
    /// committed prefix of this file through an independent read handle.
    pub fn wal_path(&self) -> Option<std::path::PathBuf> {
        self.wal.as_ref().map(|w| w.lock().path().to_path_buf())
    }

    // -- replication -------------------------------------------------------

    /// Applies one shipped log record through the normal write paths —
    /// the replica apply point. Semantics match recovery replay exactly
    /// (same id / clock / vocabulary determinism; a record whose
    /// statement fails is the correct applied state, not an error).
    /// Only valid on a database without an attached log: a replica's
    /// mirrored log is managed by the replication subsystem, so applying
    /// here must not append a second copy.
    pub fn apply_wal_record(&mut self, record: &WalRecord) -> Result<()> {
        if self.wal.is_some() {
            return Err(Error::Execution(
                "apply_wal_record is a replica-side path; this database has its own \
                 write-ahead log attached"
                    .into(),
            ));
        }
        self.replay(record);
        Ok(())
    }

    /// Serializes the full logical state (catalog, annotations,
    /// summaries, epoch, clock) — the payload a primary streams to a
    /// bootstrapping replica. Byte-identical to what
    /// [`Database::save`] would write for the same state.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        crate::persist::snapshot_with(
            &self.catalog,
            &self.store,
            &self.registry,
            self.epoch,
            self.clock.now(),
        )
    }

    /// Installs serialized state received from a primary's snapshot
    /// bootstrap (the bytes of [`Database::snapshot_bytes`]), replacing
    /// all local logical state. Session state (QIDs, caches) resets.
    pub fn install_replica_state(&mut self, bytes: &[u8]) -> Result<()> {
        let (catalog, store, registry, epoch, clock) = crate::persist::restore(bytes)?;
        self.replace_state(catalog, store, registry, epoch, clock);
        Ok(())
    }

    // -- component access ------------------------------------------------

    /// The table catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The raw annotation store.
    pub fn store(&self) -> &AnnotationStore {
        &self.store
    }

    /// The summary registry.
    pub fn registry(&self) -> &SummaryRegistry {
        &self.registry
    }

    /// Mutable summary registry (ablation switches live here).
    pub fn registry_mut(&mut self) -> &mut SummaryRegistry {
        &mut self.registry
    }

    /// The zoom-in registry (cache statistics). The returned guard holds
    /// the registry's session lock; drop it before issuing queries.
    pub fn zoom(&self) -> MutexGuard<'_, ZoomRegistry> {
        self.zoom.lock()
    }

    /// Evicts one result from the zoom-in cache (experiment hook; the
    /// cache normally evicts on its own under budget pressure).
    pub fn zoom_cache_evict(&self, qid: Qid) -> bool {
        self.zoom.lock().cache_mut().remove(qid).unwrap_or(false)
    }

    /// The active maintenance mode.
    pub fn maintenance_mode(&self) -> MaintenanceMode {
        self.config.maintenance
    }

    /// The current checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The logical clock's latest issued tick (persisted in snapshots so
    /// recovery resumes past it).
    pub fn clock_now(&self) -> u64 {
        self.clock.now()
    }

    /// Switches the maintenance strategy (experiment E1).
    pub fn set_maintenance_mode(&mut self, mode: MaintenanceMode) {
        self.config.maintenance = mode;
    }

    // -- statement execution ----------------------------------------------

    /// Parses and executes a string of `;`-separated statements.
    ///
    /// With a write-ahead log attached, the script's source text is
    /// appended (and, under [`SyncPolicy::Always`], fsynced) **before**
    /// anything executes, whenever the script contains at least one
    /// write. Execution stops at the first failing statement, exactly as
    /// before — and replay reproduces that same partial execution, which
    /// is why logging the text up front is sound.
    pub fn execute_sql(&mut self, sql: &str) -> Result<Vec<ExecOutcome>> {
        let stmts = parse(sql)?;
        if self.wal.is_some() && stmts.iter().any(|s| s.class() == StatementClass::Write) {
            self.wal_append(&WalRecord::Script {
                sql: sql.to_string(),
            })?;
        }
        stmts
            .into_iter()
            .map(|stmt| {
                if stmt.class() == StatementClass::Read {
                    self.execute_read(stmt)
                } else {
                    self.apply_stmt(stmt)
                }
            })
            .collect()
    }

    /// Executes one Read-class statement (SELECT / ZOOMIN / EXPLAIN /
    /// HISTORY) from a shared reference. This is the entry point
    /// `insightd` uses under its shared lock: durable state is only read;
    /// the session-local QID and result-cache updates go through the
    /// interior zoom lock. Write-class statements are rejected — route
    /// them through [`Database::execute`].
    pub fn execute_read(&self, stmt: Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::Select(sel) => Ok(ExecOutcome::Query(self.run_select(&sel, false)?.0)),
            Statement::ZoomIn(z) => Ok(ExecOutcome::ZoomIn(self.zoom_in(&z)?)),
            Statement::Explain(sel) => {
                let plan = Planner::new(&self.catalog, &self.registry).plan_select(&sel)?;
                Ok(ExecOutcome::Explain(plan.explain()))
            }
            Statement::HistoryAnnotation { id } => self.history(AnnotationId::new(id)),
            _ => Err(Error::Execution(
                "write-class statement requires exclusive database access".into(),
            )),
        }
    }

    /// Executes one parsed statement.
    ///
    /// On a WAL-enabled database, write-class statements are rejected
    /// here: a parsed [`Statement`] no longer carries its source text,
    /// so accepting it would execute a write the log never saw — an
    /// acked-but-unlogged write is precisely the bug the WAL exists to
    /// rule out. Route writes through [`Database::execute_sql`] (or the
    /// typed annotation APIs, which log typed records) instead.
    pub fn execute(&mut self, stmt: Statement) -> Result<ExecOutcome> {
        if stmt.class() == StatementClass::Read {
            return self.execute_read(stmt);
        }
        if self.wal.is_some() {
            return Err(Error::Execution(
                "write-ahead logging records statements by source text; execute writes \
                 through execute_sql / annotate_batch_sql on a WAL-enabled database"
                    .into(),
            ));
        }
        self.apply_stmt(stmt)
    }

    /// Executes one parsed write-class statement (post-logging).
    fn apply_stmt(&mut self, stmt: Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let cols = columns
                    .into_iter()
                    .map(|(n, ty)| Ok(Column::new(n, DataType::parse(&ty)?)))
                    .collect::<Result<Vec<_>>>()?;
                if cols.len() > ColSig::MAX_COLUMNS as usize {
                    return Err(Error::Catalog(format!(
                        "tables are limited to {} columns",
                        ColSig::MAX_COLUMNS
                    )));
                }
                self.catalog.create_table(&name, Schema::new(cols))?;
                Ok(ExecOutcome::TableCreated(name.to_ascii_lowercase()))
            }
            Statement::DropTable { name } => {
                let id = self.catalog.table_id(&name)?;
                // Unlink summaries and drop the rows' annotations first.
                for inst in self.registry.linked_instances(id).to_vec() {
                    self.registry.unlink(inst, id)?;
                }
                for rid in self.store.annotated_rows(id) {
                    self.store.clear_row(id, rid);
                    self.registry.clear_row(id, rid);
                }
                self.catalog.drop_table(&name)?;
                self.invalidate_zoom_results();
                Ok(ExecOutcome::TableDropped(name.to_ascii_lowercase()))
            }
            Statement::Insert { table, rows } => {
                let id = self.catalog.table_id(&table)?;
                let t = self.catalog.table_mut(id)?;
                let n = rows.len();
                for lits in rows {
                    let values: Vec<Value> = lits.into_iter().map(literal_value).collect();
                    t.insert(Row::new(values))?;
                }
                Ok(ExecOutcome::Inserted {
                    table: table.to_ascii_lowercase(),
                    rows: n,
                })
            }
            Statement::AddAnnotation {
                text,
                document,
                author,
                table,
                columns,
                where_clause,
            } => self.add_annotation_stmt(text, document, author, &table, &columns, where_clause),
            Statement::CreateInstance(ci) => self.create_instance_stmt(ci),
            Statement::DropInstance { name } => {
                let id = self.registry.instance_id(&name)?;
                self.registry.drop_instance(id)?;
                Ok(ExecOutcome::InstanceDropped(name))
            }
            Statement::LinkSummary { instance, table } => {
                let inst = self.registry.instance_id(&instance)?;
                let tid = self.catalog.table_id(&table)?;
                self.registry.link(inst, tid)?;
                // Catch-up: absorb annotations that predate the link.
                let rows = self.store.annotated_rows(tid);
                let n = rows.len();
                let catalog = &self.catalog;
                let store = &self.store;
                let registry = &mut self.registry;
                for rid in rows {
                    rebuild_row_from_store(registry, store, tid, rid, &|t, r| {
                        tuple_context(catalog, t, r)
                    })?;
                }
                Ok(ExecOutcome::Linked {
                    instance,
                    table,
                    rows_rebuilt: n,
                })
            }
            Statement::UnlinkSummary { instance, table } => {
                let inst = self.registry.instance_id(&instance)?;
                let tid = self.catalog.table_id(&table)?;
                self.registry.unlink(inst, tid)?;
                Ok(ExecOutcome::Unlinked { instance, table })
            }
            Statement::DeleteRows {
                table,
                where_clause,
            } => self.delete_rows_stmt(&table, where_clause),
            Statement::DeleteAnnotation { id } => {
                // Already logged as part of the surrounding script.
                self.delete_annotation_inner(AnnotationId::new(id))
            }
            Statement::RetractAnnotation { id } => {
                // Already logged as part of the surrounding script.
                self.retract_annotation_inner(AnnotationId::new(id))
            }
            Statement::CorrectAnnotation {
                id,
                text,
                document,
                author,
                stamp,
            } => {
                self.correct_annotation_inner(AnnotationId::new(id), text, document, author, stamp)
            }
            Statement::FlagAnnotation { id, note } => {
                self.flag_annotation_inner(AnnotationId::new(id), note)
            }
            Statement::CreateIndex { table, column } => {
                let tid = self.catalog.table_id(&table)?;
                let col = self.catalog.table(tid)?.schema().resolve(None, &column)? as u16;
                self.catalog.table_mut(tid)?.create_index(col)?;
                Ok(ExecOutcome::IndexChanged {
                    table: table.to_ascii_lowercase(),
                    column: column.to_ascii_lowercase(),
                    created: true,
                })
            }
            Statement::DropIndex { table, column } => {
                let tid = self.catalog.table_id(&table)?;
                let col = self.catalog.table(tid)?.schema().resolve(None, &column)? as u16;
                if !self.catalog.table_mut(tid)?.drop_index(col) {
                    return Err(Error::Catalog(format!(
                        "no index on `{table}` (`{column}`)"
                    )));
                }
                Ok(ExecOutcome::IndexChanged {
                    table: table.to_ascii_lowercase(),
                    column: column.to_ascii_lowercase(),
                    created: false,
                })
            }
            Statement::Select(_)
            | Statement::ZoomIn(_)
            | Statement::Explain(_)
            | Statement::HistoryAnnotation { .. } => {
                unreachable!("read-class statements are dispatched to execute_read")
            }
        }
    }

    fn delete_rows_stmt(&mut self, table: &str, where_clause: Option<Expr>) -> Result<ExecOutcome> {
        let tid = self.catalog.table_id(table)?;
        let qualified = self.catalog.table(tid)?.schema().qualify(table);
        let predicate = where_clause
            .map(|w| Planner::new(&self.catalog, &self.registry).bind_expr(&w, &qualified))
            .transpose()?;
        let victims = self.matching_rows(tid, predicate.as_ref())?;
        for rid in &victims {
            self.catalog.table_mut(tid)?.delete(*rid);
            self.store.clear_row(tid, *rid);
            self.registry.clear_row(tid, *rid);
        }
        if !victims.is_empty() {
            self.invalidate_zoom_results();
        }
        Ok(ExecOutcome::RowsDeleted {
            table: table.to_ascii_lowercase(),
            rows: victims.len(),
        })
    }

    /// Removes one annotation and refreshes the summaries of every row it
    /// was attached to. Under [`MaintenanceMode::Incremental`] the
    /// contribution is subtracted decrementally (O(1) per object, exact
    /// for classifier/snippet; cluster membership exact, centroids remain
    /// a bounded sketch); under [`MaintenanceMode::Rebuild`] the affected
    /// rows are re-summarized from the store, which also re-canonicalizes
    /// cluster centroids.
    pub fn delete_annotation(&mut self, id: AnnotationId) -> Result<ExecOutcome> {
        // The deletion has a trivial, lossless SQL rendering, so the
        // typed API logs it as a script record.
        if self.wal.is_some() {
            self.wal_append(&WalRecord::Script {
                sql: format!("DELETE ANNOTATION {}", id.raw()),
            })?;
        }
        self.delete_annotation_inner(id)
    }

    fn delete_annotation_inner(&mut self, id: AnnotationId) -> Result<ExecOutcome> {
        let removed = self.store.remove(id)?;
        self.invalidate_zoom_results();
        let rows_refreshed = self.refresh_after_remove(id, &removed.targets)?;
        Ok(ExecOutcome::AnnotationDeleted {
            annotation: id,
            rows_refreshed,
        })
    }

    /// Removes one (already detached) annotation's effect from the
    /// summary registry. Under [`MaintenanceMode::Incremental`] the
    /// contribution is subtracted in O(objects); under
    /// [`MaintenanceMode::Rebuild`] every target row is re-summarized
    /// from the store. The rebuild loop is deterministic across **all**
    /// targets even when one fails: the remaining rows still rebuild (no
    /// mid-loop abort leaving the registry partially refreshed), and the
    /// returned count reflects only rows actually refreshed.
    fn refresh_after_remove(&mut self, id: AnnotationId, targets: &[Target]) -> Result<usize> {
        match self.config.maintenance {
            MaintenanceMode::Incremental => {
                self.registry.remove_annotation(id, targets);
                Ok(targets.len())
            }
            MaintenanceMode::Rebuild => {
                let catalog = &self.catalog;
                let store = &self.store;
                let registry = &mut self.registry;
                let mut refreshed = 0usize;
                let mut first_err: Option<Error> = None;
                for target in targets {
                    let rebuilt = rebuild_row_from_store(
                        registry,
                        store,
                        target.table,
                        target.row,
                        &|t, r| tuple_context(catalog, t, r),
                    );
                    match rebuilt {
                        Ok(_) => refreshed += 1,
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                        }
                    }
                }
                match first_err {
                    None => Ok(refreshed),
                    Some(e) => Err(Error::Summary(format!(
                        "summary rebuild failed on {} of {} target row(s); the other \
                         {refreshed} refreshed (first error: {e})",
                        targets.len() - refreshed,
                        targets.len(),
                    ))),
                }
            }
        }
    }

    /// Drops every cached zoom-in result payload. Called on any
    /// annotation-removing write: cached rows embed summary objects, so
    /// serving them after a removal would resurrect dropped snippets.
    fn invalidate_zoom_results(&self) {
        self.zoom.lock().invalidate_results();
    }

    /// `RETRACT ANNOTATION`: tombstones the annotation — its summary
    /// contribution is removed exactly as a deletion's would be, but the
    /// version itself and its timeline survive for `HISTORY` / `AS OF`.
    pub fn retract_annotation(&mut self, id: AnnotationId) -> Result<ExecOutcome> {
        if self.wal.is_some() {
            self.wal_append(&WalRecord::Script {
                sql: format!("RETRACT ANNOTATION {}", id.raw()),
            })?;
        }
        self.retract_annotation_inner(id)
    }

    fn retract_annotation_inner(&mut self, id: AnnotationId) -> Result<ExecOutcome> {
        // The tick is consumed before validation so a failing retract
        // replays identically (same clock trajectory) from the WAL.
        let at = self.clock.tick();
        let removed = self.store.retract(id, at)?;
        self.invalidate_zoom_results();
        let rows_refreshed = self.refresh_after_remove(id, &removed.targets)?;
        Ok(ExecOutcome::AnnotationRetracted {
            annotation: id,
            rows_refreshed,
        })
    }

    /// `CORRECT ANNOTATION`: supersedes `id` with a replacement that
    /// inherits its targets. The predecessor becomes a tombstone linked
    /// to the successor; the summary engine decrementally removes the old
    /// contribution and absorbs the new one in O(annotation) under
    /// [`MaintenanceMode::Incremental`].
    pub fn correct_annotation(
        &mut self,
        id: AnnotationId,
        text: String,
        document: Option<String>,
        author: Option<String>,
    ) -> Result<ExecOutcome> {
        if self.wal.is_some() {
            self.wal_append(&WalRecord::Script {
                sql: render_correct_sql(
                    id.raw(),
                    &text,
                    document.as_deref(),
                    author.as_deref(),
                    None,
                ),
            })?;
        }
        self.correct_annotation_inner(id, text, document, author, None)
    }

    /// Router path of `CORRECT ANNOTATION`: the successor's `(id, tick)`
    /// was pre-allocated at the shard router so every owner shard commits
    /// a byte-identical replacement. The logged statement carries the
    /// stamp (`WITH ID … AT …`), so per-shard WAL replay re-creates the
    /// same successor identity the router handed out.
    pub(crate) fn correct_annotation_stamped(
        &mut self,
        id: AnnotationId,
        text: String,
        document: Option<String>,
        author: Option<String>,
        stamp: (u64, u64),
    ) -> Result<ExecOutcome> {
        if self.wal.is_some() {
            self.wal_append(&WalRecord::Script {
                sql: render_correct_sql(
                    id.raw(),
                    &text,
                    document.as_deref(),
                    author.as_deref(),
                    Some(stamp),
                ),
            })?;
        }
        self.correct_annotation_inner(id, text, document, author, Some(stamp))
    }

    fn correct_annotation_inner(
        &mut self,
        id: AnnotationId,
        text: String,
        document: Option<String>,
        author: Option<String>,
        stamp: Option<(u64, u64)>,
    ) -> Result<ExecOutcome> {
        // Validate the predecessor up front — before any identity is
        // allocated — so a correction of a tombstone fails cleanly with
        // its lifecycle status.
        if !self.store.is_live(id) {
            let status = self.store.status(id)?;
            return Err(Error::Annotation(format!(
                "annotation {id} is already {status}"
            )));
        }
        let old = self.store.get(id)?;
        let targets = old.targets.clone();
        let author = author.unwrap_or_else(|| old.body.author.clone());
        // The router pre-allocates `(successor id, tick)` in sharded
        // mode so every owner shard commits an identical replacement;
        // serial execution allocates both locally.
        let tick = match stamp {
            Some((_, t)) => {
                self.clock.advance_to(t);
                t
            }
            None => self.clock.tick(),
        };
        let mut body = AnnotationBody::text(text, author);
        if let Some(d) = document {
            body = body.with_document(d);
        }
        body.created = tick;
        let successor = match stamp {
            Some((sid, _)) => self
                .store
                .add_at(AnnotationId::new(sid), body, targets.clone())?,
            None => self.store.add(body, targets.clone())?,
        };
        self.store.correct(id, successor, tick)?;
        self.invalidate_zoom_results();
        // Subtract the predecessor, then absorb the successor. Under
        // Rebuild the store already holds the final annotation set (the
        // predecessor's index entries are detached), so the single
        // deterministic rebuild pass inside refresh_after_remove covers
        // both halves at once.
        let rows_refreshed = self.refresh_after_remove(id, &targets)?;
        if matches!(self.config.maintenance, MaintenanceMode::Incremental) {
            let catalog = &self.catalog;
            let store = &self.store;
            let registry = &mut self.registry;
            refresh_after_add(
                registry,
                store,
                successor,
                &|t, r| tuple_context(catalog, t, r),
                MaintenanceMode::Incremental,
            )?;
        }
        Ok(ExecOutcome::AnnotationCorrected {
            annotation: id,
            successor,
            rows_refreshed,
        })
    }

    /// `FLAG ANNOTATION`: marks an annotation as disputed. The
    /// annotation stays live — its summary contribution is untouched —
    /// but the flag (and optional reviewer note) lands on its timeline.
    pub fn flag_annotation(
        &mut self,
        id: AnnotationId,
        note: Option<String>,
    ) -> Result<ExecOutcome> {
        if self.wal.is_some() {
            let mut sql = format!("FLAG ANNOTATION {}", id.raw());
            if let Some(n) = &note {
                sql.push(' ');
                sql.push_str(&quote_str(n));
            }
            self.wal_append(&WalRecord::Script { sql })?;
        }
        self.flag_annotation_inner(id, note)
    }

    fn flag_annotation_inner(
        &mut self,
        id: AnnotationId,
        note: Option<String>,
    ) -> Result<ExecOutcome> {
        let at = self.clock.tick();
        self.store.flag(id, note, at)?;
        Ok(ExecOutcome::AnnotationFlagged { annotation: id })
    }

    /// `HISTORY <id>`: the annotation's lifecycle timeline, oldest event
    /// first (creation synthesized from its stamped tick). Works on live
    /// and tombstoned annotations alike; hard-deleted ids are unknown.
    pub fn history(&self, id: AnnotationId) -> Result<ExecOutcome> {
        Ok(ExecOutcome::History {
            annotation: id,
            events: self.store.history(id)?,
        })
    }

    /// Convenience: executes a single SELECT and returns its result.
    /// Shared access suffices: queries never touch durable state.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        match self.execute_read(single_select(sql)?)? {
            ExecOutcome::Query(q) => Ok(q),
            _ => unreachable!("select statements produce query outcomes"),
        }
    }

    /// Executes a SELECT *without* registering the result for zoom-in
    /// (no QID, no cache write). Benchmarks use this to isolate pure
    /// propagation cost; interactive callers should prefer
    /// [`Database::query`]. The returned QID is 0 and not zoomable.
    pub fn query_uncached(&self, sql: &str) -> Result<QueryResult> {
        let Statement::Select(sel) = single_select(sql)? else {
            unreachable!("single_select returns selects only")
        };
        let plan = Planner::new(&self.catalog, &self.registry).plan_select(&sel)?;
        let mut executor = match self.config.parallelism {
            Some(threads) => Executor::with_parallelism(&self.catalog, &self.registry, threads),
            None => Executor::new(&self.catalog, &self.registry),
        };
        let rows = executor.execute(&plan)?;
        Ok(QueryResult {
            qid: Qid::new(0),
            schema: plan.schema().clone(),
            rows,
        })
    }

    /// Executes a SELECT with per-operator tracing (demo scenario 3).
    pub fn query_traced(&self, sql: &str) -> Result<(QueryResult, TraceLog)> {
        let Statement::Select(sel) = single_select(sql)? else {
            unreachable!("single_select returns selects only")
        };
        let (result, trace) = self.run_select(&sel, true)?;
        Ok((result, trace.expect("tracing requested")))
    }

    /// Plans a SELECT without executing it (`EXPLAIN`, benches).
    pub fn plan_sql(&self, sql: &str) -> Result<LogicalPlan> {
        let Statement::Select(sel) = single_select(sql)? else {
            unreachable!("single_select returns selects only")
        };
        Planner::new(&self.catalog, &self.registry).plan_select(&sel)
    }

    /// Executes a SELECT through the raw-propagation baseline engine
    /// (experiment E2). Raw annotations (content included) travel with
    /// every tuple.
    pub fn query_raw(&self, sql: &str) -> Result<Vec<RawRow>> {
        let plan = self.plan_sql(sql)?;
        RawExecutor::new(&self.catalog, &self.store).execute(&plan)
    }

    /// Renders a result set (rows + summary objects) in the paper's
    /// notation, one line per tuple.
    pub fn render_result(&self, result: &QueryResult) -> String {
        let mut out = String::new();
        let cols: Vec<String> = result
            .schema
            .columns()
            .iter()
            .map(Column::display_name)
            .collect();
        out.push_str(&format!("QID {} | {}\n", result.qid, cols.join(", ")));
        for r in &result.rows {
            out.push_str(&render_row_resolved(r, &self.registry, Some(&self.store)));
            out.push('\n');
        }
        out
    }

    fn run_select(
        &self,
        sel: &SelectStmt,
        traced: bool,
    ) -> Result<(QueryResult, Option<TraceLog>)> {
        if let Some(t) = sel.as_of {
            if traced {
                return Err(Error::Execution(
                    "AS OF queries run against an ephemeral summary view and cannot be traced"
                        .into(),
                ));
            }
            return self.run_select_as_of(sel, t);
        }
        let plan = Planner::new(&self.catalog, &self.registry).plan_select(sel)?;
        let complexity = estimate_cost(&plan, &self.catalog).cost;
        let mut executor = if traced {
            Executor::with_trace(&self.catalog, &self.registry)
        } else {
            match self.config.parallelism {
                Some(threads) => Executor::with_parallelism(&self.catalog, &self.registry, threads),
                None => Executor::new(&self.catalog, &self.registry),
            }
        };
        let rows = executor.execute(&plan)?;
        let schema = plan.schema().clone();
        // Only the QID/result-cache registration needs the session lock;
        // planning and execution above run fully concurrently.
        let qid = self
            .zoom
            .lock()
            .register(schema.clone(), plan, &rows, complexity)?;
        Ok((QueryResult { qid, schema, rows }, executor.trace))
    }

    /// `SELECT ... AS OF <tick>`: runs the query against an ephemeral
    /// summary view reconstructed from the annotation set as it existed
    /// at logical tick `t` — live annotations created by then plus
    /// tombstones retired after it. Rows and schema are current (data
    /// time travel is out of scope; the annotation timeline is the
    /// paper's axis), and the result is not registered for zoom-in
    /// (QID 0): a cached plan re-executed later could not reproduce the
    /// historical view.
    fn run_select_as_of(
        &self,
        sel: &SelectStmt,
        t: u64,
    ) -> Result<(QueryResult, Option<TraceLog>)> {
        let registry = self.registry_as_of(t)?;
        let plan = Planner::new(&self.catalog, &registry).plan_select(sel)?;
        let mut executor = Executor::new(&self.catalog, &registry);
        let rows = executor.execute(&plan)?;
        Ok((
            QueryResult {
                qid: Qid::new(0),
                schema: plan.schema().clone(),
                rows,
            },
            None,
        ))
    }

    /// Reconstructs an ephemeral summary registry reflecting the
    /// annotation timeline at tick `t`. The registry is deep-copied
    /// through its snapshot codec (instances, links, and digest state
    /// travel; shared live objects stay untouched), then every row that
    /// is annotated now *or* was annotated at `t` is rebuilt from the
    /// as-of annotation list — rows that gained annotations after `t`
    /// shed them, retracted ones reappear.
    fn registry_as_of(&self, t: u64) -> Result<SummaryRegistry> {
        use insightnotes_common::codec::{Decoder, Encodable, Encoder};
        let mut enc = Encoder::with_capacity(4096);
        self.registry.encode(&mut enc);
        let bytes = enc.finish();
        let mut registry = SummaryRegistry::decode(&mut Decoder::new(&bytes))?;

        let past = self.store.as_of(t);
        type RowAnns<'a> = Vec<(AnnotationId, ColSig, &'a AnnotationBody)>;
        let mut by_row: BTreeMap<(TableId, RowId), RowAnns> = BTreeMap::new();
        for (id, ann) in &past {
            for tgt in &ann.targets {
                by_row
                    .entry((tgt.table, tgt.row))
                    .or_default()
                    .push((*id, tgt.cols, &ann.body));
            }
        }
        let mut rows: std::collections::BTreeSet<(TableId, RowId)> =
            by_row.keys().copied().collect();
        for (_, ann) in self.store.as_of(u64::MAX) {
            for tgt in &ann.targets {
                rows.insert((tgt.table, tgt.row));
            }
        }
        let catalog = &self.catalog;
        for (table, row) in rows {
            let anns = by_row.get(&(table, row)).map_or(&[][..], Vec::as_slice);
            registry.rebuild_row(table, row, anns, &|t, r| tuple_context(catalog, t, r))?;
        }
        Ok(registry)
    }

    // -- annotations -------------------------------------------------------

    fn add_annotation_stmt(
        &mut self,
        text: String,
        document: Option<String>,
        author: Option<String>,
        table: &str,
        columns: &[String],
        where_clause: Option<Expr>,
    ) -> Result<ExecOutcome> {
        let (id, targets) =
            self.stage_annotation(text, document, author, table, columns, where_clause)?;
        let catalog = &self.catalog;
        let store = &self.store;
        let registry = &mut self.registry;
        let maintenance = refresh_after_add(
            registry,
            store,
            id,
            &|t, r| tuple_context(catalog, t, r),
            self.config.maintenance,
        )?;
        Ok(ExecOutcome::Annotated {
            annotation: id,
            targets,
            maintenance,
        })
    }

    /// Stages one `ADD ANNOTATION`: resolves the covered columns and
    /// target rows, ticks the logical clock, and inserts into the store —
    /// everything short of refreshing summaries, which single-statement
    /// execution does immediately and [`Database::annotate_batch`] defers
    /// to one amortized pass. Returns the new id and its target count.
    fn stage_annotation(
        &mut self,
        text: String,
        document: Option<String>,
        author: Option<String>,
        table: &str,
        columns: &[String],
        where_clause: Option<Expr>,
    ) -> Result<(AnnotationId, usize)> {
        let (tid, cols, rows) = resolve_annotation_targets(
            &self.catalog,
            &self.registry,
            &self.registry,
            table,
            columns,
            where_clause,
        )?;
        let targets: Vec<Target> = rows
            .into_iter()
            .map(|rid| Target::new(tid, rid, cols))
            .collect();
        let n = targets.len();

        let mut body = AnnotationBody::text(text, author.unwrap_or_else(|| "anonymous".into()));
        body.created = self.clock.tick();
        if let Some(doc) = document {
            body = body.with_document(doc);
        }
        let id = self.store.add(body, targets)?;
        Ok((id, n))
    }

    /// Executes a batch of `ADD ANNOTATION` statements under **one**
    /// exclusive-lock acquisition with amortized maintenance. Every item
    /// gets its own result — a failing statement (unknown table, empty
    /// target set) does not abort the rest of the batch.
    ///
    /// Staging (predicate resolution, clock ticks, store inserts) runs
    /// item by item exactly as [`Database::execute`] would, so the
    /// resulting store and snapshot bytes are identical to a serial
    /// replay. Maintenance then runs once over the whole batch, grouped
    /// by `(table, row)`: one summary-object unshare per touched
    /// `(row, instance)` pair and one tuple-context rendering per row,
    /// instead of one of each per annotation. Within a batch, `WHERE`
    /// predicates over summary components observe the summary state as
    /// of batch start (maintenance is deferred to the end).
    pub fn annotate_batch(&mut self, stmts: Vec<Statement>) -> Vec<Result<ExecOutcome>> {
        if self.wal.is_some() {
            let err = || {
                Err(Error::Execution(
                    "write-ahead logging records statements by source text; submit \
                     annotation batches through annotate_batch_sql on a WAL-enabled database"
                        .into(),
                ))
            };
            return stmts.iter().map(|_| err()).collect();
        }
        self.annotate_batch_inner(stmts)
    }

    /// [`Database::annotate_batch`] with source texts attached: on a
    /// WAL-enabled database the whole batch is appended as **one** log
    /// record before any item stages — the group-commit unit the server's
    /// committer fsyncs once per drained queue. If the append itself
    /// fails, no item executes and every item reports the failure.
    pub fn annotate_batch_sql(&mut self, stmts: Vec<SqlStatement>) -> Vec<Result<ExecOutcome>> {
        let (texts, parsed): (Vec<String>, Vec<Statement>) =
            stmts.into_iter().map(|s| (s.sql, s.stmt)).unzip();
        if self.wal.is_some() {
            if let Err(e) = self.wal_append(&WalRecord::Batch { statements: texts }) {
                let msg = format!("write-ahead log append failed: {e}");
                return parsed
                    .iter()
                    .map(|_| Err(Error::Execution(msg.clone())))
                    .collect();
            }
        }
        self.annotate_batch_inner(parsed)
    }

    fn annotate_batch_inner(&mut self, stmts: Vec<Statement>) -> Vec<Result<ExecOutcome>> {
        let mut results: Vec<Option<Result<ExecOutcome>>> = Vec::new();
        results.resize_with(stmts.len(), || None);
        let mut staged: Vec<(usize, AnnotationId, usize)> = Vec::new();
        for (i, stmt) in stmts.into_iter().enumerate() {
            match stmt {
                Statement::AddAnnotation {
                    text,
                    document,
                    author,
                    table,
                    columns,
                    where_clause,
                } => match self.stage_annotation(
                    text,
                    document,
                    author,
                    &table,
                    &columns,
                    where_clause,
                ) {
                    Ok((id, targets)) => staged.push((i, id, targets)),
                    Err(e) => results[i] = Some(Err(e)),
                },
                _ => {
                    results[i] = Some(Err(Error::Execution(
                        "annotation batches accept only ADD ANNOTATION statements".into(),
                    )));
                }
            }
        }
        let ids: Vec<AnnotationId> = staged.iter().map(|&(_, id, _)| id).collect();
        match self.batch_refresh(&ids) {
            Ok(mut per_ann) => {
                for (i, id, targets) in staged {
                    results[i] = Some(Ok(ExecOutcome::Annotated {
                        annotation: id,
                        targets,
                        maintenance: per_ann.remove(&id).unwrap_or_default(),
                    }));
                }
            }
            Err(e) => {
                let msg = format!("batch maintenance failed: {e}");
                for (i, _, _) in staged {
                    results[i] = Some(Err(Error::Summary(msg.clone())));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch item resolved"))
            .collect()
    }

    /// Typed batch ingestion: the [`Database::annotate_rows`] equivalent
    /// of [`Database::annotate_batch`]. Items are staged in order (same
    /// clock ticks and annotation ids as one-by-one calls), then
    /// summaries refresh in one amortized pass.
    pub fn annotate_rows_batch(&mut self, items: Vec<RowAnnotation>) -> Vec<Result<AnnotationId>> {
        if self.wal.is_some() {
            let record = WalRecord::Rows {
                items: items.iter().map(wal_row_item).collect(),
            };
            if let Err(e) = self.wal_append(&record) {
                let msg = format!("write-ahead log append failed: {e}");
                return items
                    .iter()
                    .map(|_| Err(Error::Execution(msg.clone())))
                    .collect();
            }
        }
        let mut results: Vec<Option<Result<AnnotationId>>> = Vec::new();
        results.resize_with(items.len(), || None);
        let mut staged: Vec<(usize, AnnotationId)> = Vec::new();
        for (i, item) in items.into_iter().enumerate() {
            match self.stage_row_annotation(item) {
                Ok(id) => staged.push((i, id)),
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        let ids: Vec<AnnotationId> = staged.iter().map(|&(_, id)| id).collect();
        match self.batch_refresh(&ids) {
            Ok(_) => {
                for (i, id) in staged {
                    results[i] = Some(Ok(id));
                }
            }
            Err(e) => {
                let msg = format!("batch maintenance failed: {e}");
                for (i, _) in staged {
                    results[i] = Some(Err(Error::Summary(msg.clone())));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch item resolved"))
            .collect()
    }

    fn stage_row_annotation(&mut self, item: RowAnnotation) -> Result<AnnotationId> {
        let tid = self.catalog.table_id(&item.table)?;
        let mut body = item.body;
        body.created = self.clock.tick();
        let targets: Vec<Target> = item
            .rows
            .iter()
            .map(|&r| Target::new(tid, r, item.cols))
            .collect();
        self.store.add(body, targets)
    }

    /// Pre-stamped batch ingestion for the shard router: like
    /// [`Database::annotate_rows_batch`], but each item carries the
    /// annotation id and clock tick the router already allocated, so
    /// every shard that stores (a slice of) the same annotation agrees
    /// on its identity and timestamp. On a WAL-enabled database the
    /// whole batch is logged as one [`WalRecord::Stamped`] record before
    /// any item stages.
    ///
    /// Failure semantics mirror serial staging: an unknown table fails
    /// before the tick is consumed; an empty target list consumes the
    /// tick (the clock advances past it) but stores nothing.
    pub fn annotate_rows_batch_stamped(
        &mut self,
        items: Vec<StampedRowAnnotation>,
    ) -> Vec<Result<ExecOutcome>> {
        if self.wal.is_some() {
            let record = WalRecord::Stamped {
                items: items.iter().map(wal_stamped_item).collect(),
            };
            if let Err(e) = self.wal_append(&record) {
                let msg = format!("write-ahead log append failed: {e}");
                return items
                    .iter()
                    .map(|_| Err(Error::Execution(msg.clone())))
                    .collect();
            }
        }
        let mut results: Vec<Option<Result<ExecOutcome>>> = Vec::new();
        results.resize_with(items.len(), || None);
        let mut staged: Vec<(usize, AnnotationId, usize)> = Vec::new();
        for (i, s) in items.into_iter().enumerate() {
            match self.stage_stamped(s) {
                Ok((id, targets)) => staged.push((i, id, targets)),
                Err(e) => results[i] = Some(Err(e)),
            }
        }
        let ids: Vec<AnnotationId> = staged.iter().map(|&(_, id, _)| id).collect();
        match self.batch_refresh(&ids) {
            Ok(mut per_ann) => {
                for (i, id, targets) in staged {
                    results[i] = Some(Ok(ExecOutcome::Annotated {
                        annotation: id,
                        targets,
                        maintenance: per_ann.remove(&id).unwrap_or_default(),
                    }));
                }
            }
            Err(e) => {
                let msg = format!("batch maintenance failed: {e}");
                for (i, _, _) in staged {
                    results[i] = Some(Err(Error::Summary(msg.clone())));
                }
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every batch item resolved"))
            .collect()
    }

    /// Stages one pre-stamped annotation: advances the clock to the
    /// router-allocated tick, then stores under the router-allocated id.
    ///
    /// Target rows are re-validated against the (replicated) table:
    /// the router resolved them under shard read guards that were
    /// dropped before this shard's write lock was taken, so a
    /// replicated `DELETE FROM` broadcast may have removed rows in
    /// between — attaching to them would fabricate a state no serial
    /// schedule produces. Vanished rows are skipped; an annotation
    /// whose every target vanished fails (tick consumed, nothing
    /// stored), matching the serial schedule in which the delete
    /// committed first. The filter reads only this shard's own state,
    /// so WAL replay of the stamped record re-derives the identical
    /// target set.
    fn stage_stamped(&mut self, s: StampedRowAnnotation) -> Result<(AnnotationId, usize)> {
        let tid = self.catalog.table_id(&s.item.table)?;
        self.clock.advance_to(s.tick);
        let mut body = s.item.body;
        body.created = s.tick;
        let table = self.catalog.table(tid)?;
        let targets: Vec<Target> = s
            .item
            .rows
            .iter()
            .filter(|&&r| table.get(r).is_some())
            .map(|&r| Target::new(tid, r, s.item.cols))
            .collect();
        if targets.is_empty() && !s.item.rows.is_empty() {
            return Err(Error::Annotation(format!(
                "annotation {} targets only rows deleted before it committed",
                s.id
            )));
        }
        let n = targets.len();
        let id = self.store.add_at(AnnotationId::new(s.id), body, targets)?;
        Ok((id, n))
    }

    /// One maintenance pass over a batch of freshly stored annotations.
    /// Returns per-annotation maintenance counters that match what a
    /// serial one-by-one replay would have reported for each annotation.
    /// Under [`MaintenanceMode::Incremental`] work is grouped by
    /// `(table, row)`; under [`MaintenanceMode::Rebuild`] each
    /// annotation re-summarizes its target rows from the rows' history
    /// up to that annotation — exactly the serial sequence, so both the
    /// resulting state and the per-annotation attribution coincide with
    /// serial replay.
    fn batch_refresh(
        &mut self,
        ids: &[AnnotationId],
    ) -> Result<HashMap<AnnotationId, MaintenanceStats>> {
        let mut per_ann: HashMap<AnnotationId, MaintenanceStats> = ids
            .iter()
            .map(|&id| (id, MaintenanceStats::default()))
            .collect();
        if ids.is_empty() {
            return Ok(per_ann);
        }
        let mut by_row: BTreeMap<(TableId, RowId), Vec<(AnnotationId, ColSig)>> = BTreeMap::new();
        let mut bodies: HashMap<AnnotationId, &AnnotationBody> = HashMap::new();
        let mut in_order: Vec<(AnnotationId, &AnnotationBody, &[Target])> =
            Vec::with_capacity(ids.len());
        for &id in ids {
            let ann = self.store.get(id)?;
            bodies.insert(id, &ann.body);
            in_order.push((id, &ann.body, ann.targets.as_slice()));
            for t in &ann.targets {
                by_row
                    .entry((t.table, t.row))
                    .or_default()
                    .push((id, t.cols));
            }
        }
        let catalog = &self.catalog;
        let store = &self.store;
        let registry = &mut self.registry;
        match self.config.maintenance {
            MaintenanceMode::Incremental => {
                // Digest in arrival order before any row-grouped work:
                // digesting interns cluster-vocabulary terms, whose ids
                // must be assigned in the order a serial replay would
                // assign them for the batch to stay byte-identical to
                // one-by-one ingest.
                registry.warm_digests(&in_order, &|t, r| tuple_context(catalog, t, r))?;
                registry.apply_annotations_batch(
                    &by_row,
                    &bodies,
                    &|t, r| tuple_context(catalog, t, r),
                    &mut per_ann,
                )?;
            }
            MaintenanceMode::Rebuild => {
                // Serial replay rebuilds each target row once per added
                // annotation, seeing only annotations up to and
                // including it. Replicating that sequence (rather than
                // one final rebuild per row) keeps both the digest /
                // vocabulary order and the per-annotation stats
                // attribution identical to serial ingest; no warm-up
                // pass is needed because this *is* the serial order.
                for &(id, _, targets) in &in_order {
                    for t in targets {
                        let on_row = store.on_row(t.table, t.row).to_vec();
                        let mut anns: Vec<(AnnotationId, ColSig, &AnnotationBody)> =
                            Vec::with_capacity(on_row.len());
                        for (aid, cols) in &on_row {
                            if *aid > id {
                                continue;
                            }
                            anns.push((*aid, *cols, &store.get(*aid)?.body));
                        }
                        let stats = registry.rebuild_row(t.table, t.row, &anns, &|t, r| {
                            tuple_context(catalog, t, r)
                        })?;
                        per_ann.entry(id).or_default().absorb(stats);
                    }
                }
            }
        }
        Ok(per_ann)
    }

    /// Row ids of `table` satisfying `predicate` (`None` = all rows).
    fn matching_rows(&self, table: TableId, predicate: Option<&SExpr>) -> Result<Vec<RowId>> {
        matching_rows_with(&self.catalog, &self.registry, table, predicate)
    }

    /// Typed annotation API (used by the workload loader): attaches one
    /// annotation to explicit row ids.
    pub fn annotate_rows(
        &mut self,
        table: &str,
        rows: &[RowId],
        cols: ColSig,
        body: AnnotationBody,
    ) -> Result<AnnotationId> {
        if self.wal.is_some() {
            self.wal_append(&WalRecord::Rows {
                items: vec![WalRowAnnotation {
                    table: table.to_string(),
                    rows: rows.iter().map(|r| r.raw()).collect(),
                    cols: cols.bits(),
                    text: body.text.clone(),
                    document: body.document.clone(),
                    author: body.author.clone(),
                }],
            })?;
        }
        let tid = self.catalog.table_id(table)?;
        let mut body = body;
        body.created = self.clock.tick();
        let targets: Vec<Target> = rows.iter().map(|&r| Target::new(tid, r, cols)).collect();
        let id = self.store.add(body, targets)?;
        let catalog = &self.catalog;
        let store = &self.store;
        let registry = &mut self.registry;
        refresh_after_add(
            registry,
            store,
            id,
            &|t, r| tuple_context(catalog, t, r),
            self.config.maintenance,
        )?;
        Ok(id)
    }

    /// Typed annotation API: attaches one annotation to targets that may
    /// span tables (the paper's "same annotation attached to both tuples
    /// r and s" case behind join-merge double-count avoidance).
    pub fn annotate_targets(
        &mut self,
        targets: Vec<(TableId, RowId, ColSig)>,
        body: AnnotationBody,
    ) -> Result<AnnotationId> {
        if self.wal.is_some() {
            self.wal_append(&WalRecord::Targets {
                targets: targets
                    .iter()
                    .map(|&(t, r, c)| (t.raw(), r.raw(), c.bits()))
                    .collect(),
                text: body.text.clone(),
                document: body.document.clone(),
                author: body.author.clone(),
            })?;
        }
        let mut body = body;
        body.created = self.clock.tick();
        let targets: Vec<Target> = targets
            .into_iter()
            .map(|(t, r, c)| Target::new(t, r, c))
            .collect();
        let id = self.store.add(body, targets)?;
        let catalog = &self.catalog;
        let store = &self.store;
        let registry = &mut self.registry;
        refresh_after_add(
            registry,
            store,
            id,
            &|t, r| tuple_context(catalog, t, r),
            self.config.maintenance,
        )?;
        Ok(id)
    }

    // -- summary instances ---------------------------------------------------

    fn create_instance_stmt(&mut self, ci: CreateInstanceStmt) -> Result<ExecOutcome> {
        let name = ci.name().to_string();
        let def = match ci {
            CreateInstanceStmt::Classifier {
                name,
                labels,
                training,
                annotation_invariant,
                data_invariant,
            } => {
                let mut model = NaiveBayes::new(labels);
                for (label, text) in &training {
                    let ix = model.label_index(label).ok_or_else(|| {
                        Error::Summary(format!("training pair uses unknown label `{label}`"))
                    })?;
                    model.train(ix, text);
                }
                InstanceDef::Classifier {
                    name,
                    model,
                    properties: InstanceProperties {
                        annotation_invariant,
                        data_invariant,
                    },
                }
            }
            CreateInstanceStmt::Cluster { name, threshold } => InstanceDef::Cluster {
                name,
                config: ClusterConfig {
                    threshold: threshold as f32,
                    ..ClusterConfig::default()
                },
                properties: InstanceProperties::default(),
            },
            CreateInstanceStmt::Snippet {
                name,
                max_sentences,
                max_chars,
                min_source,
            } => InstanceDef::Snippet {
                name,
                config: SnippetConfig {
                    max_sentences: max_sentences as usize,
                    max_chars: max_chars as usize,
                    ..SnippetConfig::default()
                },
                min_source_bytes: min_source as usize,
                properties: InstanceProperties::default(),
            },
        };
        let id = self.registry.create_instance(def)?;
        Ok(ExecOutcome::InstanceCreated { name, id })
    }

    // -- zoom-in ------------------------------------------------------------

    /// Executes a zoom-in command (Figure 3). Shared access suffices;
    /// cache reads / re-executions serialize on the interior zoom lock.
    pub fn zoom_in(&self, stmt: &ZoomInStmt) -> Result<ZoomInResult> {
        let qid = Qid::new(stmt.qid);
        let info_schema = self.zoom.lock().info(qid)?.schema.clone();
        let planner = Planner::new(&self.catalog, &self.registry);
        let predicate = stmt
            .where_clause
            .as_ref()
            .map(|w| planner.bind_expr(w, &info_schema))
            .transpose()?;
        let instance = self.registry.instance_id(&stmt.instance)?;
        let component = match &stmt.component {
            ZoomComponent::Index(i) => {
                if *i == 0 {
                    return Err(Error::ZoomIn("component INDEX is 1-based".into()));
                }
                (*i - 1) as usize
            }
            ZoomComponent::Label(name) => match planner.resolve_component(instance, name)? {
                crate::expr::ComponentSel::Label(i) | crate::expr::ComponentSel::Group(i) => i,
            },
        };

        let (rows, from_cache) = self
            .zoom
            .lock()
            .fetch_rows(qid, &self.catalog, &self.registry)?;
        let mut ids = insightnotes_common::IdSet::new();
        let mut matched = 0usize;
        for r in &rows {
            let ok = match &predicate {
                Some(p) => p.satisfied(r)?,
                None => true,
            };
            if !ok {
                continue;
            }
            matched += 1;
            if let Some(obj) = r.summary(instance) {
                if component < obj.component_count() {
                    ids = ids.union(&obj.zoom_ids(component)?);
                }
            }
        }

        let mut annotations = Vec::with_capacity(ids.len());
        for id in ids.iter() {
            let ann = self.store.get(AnnotationId::new(id))?;
            annotations.push(ZoomedAnnotation {
                id: AnnotationId::new(id),
                text: ann.body.text.clone(),
                document: ann.body.document.clone(),
                author: ann.body.author.clone(),
            });
        }
        Ok(ZoomInResult {
            annotations,
            from_cache,
            matched_rows: matched,
        })
    }
}

/// Row ids of `table` satisfying `predicate` (`None` = all rows), with
/// summary-component predicate parts read from an explicit
/// [`crate::exec::ObjectSource`] — the shard router passes its
/// cross-shard facade so predicates over summaries see each row's
/// owning shard. A top-level `col = const` conjunct on an indexed
/// column probes the hash index instead of scanning; the full predicate
/// is still verified per candidate.
pub(crate) fn matching_rows_with(
    catalog: &Catalog,
    objects: &(dyn crate::exec::ObjectSource + Sync),
    table: TableId,
    predicate: Option<&SExpr>,
) -> Result<Vec<RowId>> {
    let t = catalog.table(table)?;
    let mut out = Vec::new();
    let probe = predicate.and_then(|p| {
        let mut conjuncts = Vec::new();
        flatten_and(p, &mut conjuncts);
        conjuncts.into_iter().find_map(|c| match c {
            SExpr::Cmp(insightnotes_storage::CmpOp::Eq, l, r) => match (&*l, &*r) {
                (SExpr::Column(col), SExpr::Literal(v))
                | (SExpr::Literal(v), SExpr::Column(col))
                    if !v.is_null() && t.has_index(*col as u16) =>
                {
                    Some((*col as u16, v.clone()))
                }
                _ => None,
            },
            _ => None,
        })
    });
    if let Some((col, value)) = probe {
        let rids: Vec<RowId> = t
            .index_lookup(col, &value)
            .expect("has_index checked")
            .to_vec();
        for rid in rids {
            let row = t.get(rid).expect("index points at live rows");
            let ok = match predicate {
                Some(p) => p.satisfied_parts(row, objects.objects_on(table, rid))?,
                None => true,
            };
            if ok {
                out.push(rid);
            }
        }
    } else {
        for (rid, row) in t.scan() {
            let ok = match predicate {
                Some(p) => p.satisfied_parts(row, objects.objects_on(table, rid))?,
                None => true,
            };
            if ok {
                out.push(rid);
            }
        }
    }
    Ok(out)
}

/// Resolves one `ADD ANNOTATION`'s covered columns and target rows —
/// the read-only half of staging, shared between serial staging and the
/// shard router (which resolves under read guards, stamps, then routes
/// each target row to its owning shard). Errors exactly as serial
/// staging would: unknown table / column first, then an empty match set.
pub(crate) fn resolve_annotation_targets(
    catalog: &Catalog,
    registry: &SummaryRegistry,
    objects: &(dyn crate::exec::ObjectSource + Sync),
    table: &str,
    columns: &[String],
    where_clause: Option<Expr>,
) -> Result<(TableId, ColSig, Vec<RowId>)> {
    let tid = catalog.table_id(table)?;
    let schema = catalog.table(tid)?.schema().clone();
    let qualified = schema.qualify(table);

    // Resolve covered columns (empty list = whole row).
    let cols = if columns.is_empty() {
        ColSig::whole_row(schema.arity())
    } else {
        let mut ids = Vec::with_capacity(columns.len());
        for c in columns {
            ids.push(ColumnId::new(schema.resolve(None, c)? as u16));
        }
        ColSig::of_columns(&ids)
    };

    // Find target rows (through an index when the predicate allows).
    let predicate = where_clause
        .map(|w| Planner::new(catalog, registry).bind_expr(&w, &qualified))
        .transpose()?;
    let rows = matching_rows_with(catalog, objects, tid, predicate.as_ref())?;
    if rows.is_empty() {
        return Err(Error::Annotation(
            "annotation matched no rows; nothing attached".into(),
        ));
    }
    Ok((tid, cols, rows))
}

/// Splits a conjunction into its top-level conjuncts.
fn flatten_and(e: &SExpr, out: &mut Vec<SExpr>) {
    match e {
        SExpr::And(l, r) => {
            flatten_and(l, out);
            flatten_and(r, out);
        }
        other => out.push(other.clone()),
    }
}

/// Renders a lossless `CORRECT ANNOTATION` statement (string fields
/// quoted with `''` doubling) — what the typed API and the shard router
/// log / route.
pub(crate) fn render_correct_sql(
    id: u64,
    text: &str,
    document: Option<&str>,
    author: Option<&str>,
    stamp: Option<(u64, u64)>,
) -> String {
    let mut sql = format!("CORRECT ANNOTATION {id} {}", quote_str(text));
    if let Some(d) = document {
        sql.push_str(" DOCUMENT ");
        sql.push_str(&quote_str(d));
    }
    if let Some(a) = author {
        sql.push_str(" AUTHOR ");
        sql.push_str(&quote_str(a));
    }
    if let Some((sid, tick)) = stamp {
        sql.push_str(&format!(" WITH ID {sid} AT {tick}"));
    }
    sql
}

/// Projects a typed batch item into its log form (`created` excluded:
/// replay re-stamps it from the replayed clock).
fn wal_row_item(item: &RowAnnotation) -> WalRowAnnotation {
    WalRowAnnotation {
        table: item.table.clone(),
        rows: item.rows.iter().map(|r| r.raw()).collect(),
        cols: item.cols.bits(),
        text: item.body.text.clone(),
        document: item.body.document.clone(),
        author: item.body.author.clone(),
    }
}

/// Projects one pre-stamped batch item into its log form.
fn wal_stamped_item(s: &StampedRowAnnotation) -> WalStampedAnnotation {
    WalStampedAnnotation {
        id: s.id,
        tick: s.tick,
        item: wal_row_item(&s.item),
    }
}

/// Rebuilds an annotation body from its logged fields.
fn replay_body(text: &str, document: &Option<String>, author: &str) -> AnnotationBody {
    let mut body = AnnotationBody::text(text.to_string(), author.to_string());
    if let Some(d) = document {
        body = body.with_document(d.clone());
    }
    body
}

/// Renders a tuple's text content for data-variant summary instances.
fn tuple_context(catalog: &Catalog, table: TableId, row: RowId) -> Option<String> {
    let t = catalog.table(table).ok()?;
    let r = t.get(row)?;
    let mut out = String::new();
    for v in r.values() {
        if let Value::Text(s) = v {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(s);
        }
    }
    Some(out)
}

fn literal_value(lit: Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Int(v) => Value::Int(v),
        Literal::Float(v) => Value::Float(v),
        Literal::Str(s) => Value::Text(s),
        Literal::Bool(b) => Value::Bool(b),
    }
}

fn single_select(sql: &str) -> Result<Statement> {
    let stmt = insightnotes_sql::parse_one(sql)?;
    match stmt {
        Statement::Select(_) => Ok(stmt),
        other => Err(Error::Parse(format!(
            "expected a SELECT statement, found {other:?}"
        ))),
    }
}

impl std::fmt::Display for ExecOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecOutcome::TableCreated(n) => write!(f, "table `{n}` created"),
            ExecOutcome::TableDropped(n) => write!(f, "table `{n}` dropped"),
            ExecOutcome::Inserted { table, rows } => {
                write!(f, "{rows} row(s) inserted into `{table}`")
            }
            ExecOutcome::Annotated {
                annotation,
                targets,
                maintenance,
            } => write!(
                f,
                "annotation {annotation} attached to {targets} row(s) \
                 ({} digests, {} cache hits, {} object updates)",
                maintenance.digests_computed, maintenance.cache_hits, maintenance.objects_updated
            ),
            ExecOutcome::InstanceCreated { name, id } => {
                write!(f, "summary instance `{name}` created ({id})")
            }
            ExecOutcome::InstanceDropped(n) => write!(f, "summary instance `{n}` dropped"),
            ExecOutcome::Linked {
                instance,
                table,
                rows_rebuilt,
            } => write!(
                f,
                "summary `{instance}` linked to `{table}` ({rows_rebuilt} rows caught up)"
            ),
            ExecOutcome::Unlinked { instance, table } => {
                write!(f, "summary `{instance}` unlinked from `{table}`")
            }
            ExecOutcome::Query(q) => write!(f, "{} row(s), QID {}", q.rows.len(), q.qid),
            ExecOutcome::ZoomIn(z) => write!(
                f,
                "{} annotation(s) from {} matching row(s){}",
                z.annotations.len(),
                z.matched_rows,
                if z.from_cache {
                    " [cache]"
                } else {
                    " [re-executed]"
                }
            ),
            ExecOutcome::Explain(plan) => write!(f, "{plan}"),
            ExecOutcome::IndexChanged {
                table,
                column,
                created,
            } => write!(
                f,
                "index on `{table}` (`{column}`) {}",
                if *created { "created" } else { "dropped" }
            ),
            ExecOutcome::RowsDeleted { table, rows } => {
                write!(f, "{rows} row(s) deleted from `{table}`")
            }
            ExecOutcome::AnnotationDeleted {
                annotation,
                rows_refreshed,
            } => write!(
                f,
                "annotation {annotation} deleted; {rows_refreshed} row summaries rebuilt"
            ),
            ExecOutcome::AnnotationRetracted {
                annotation,
                rows_refreshed,
            } => write!(
                f,
                "annotation {annotation} retracted; {rows_refreshed} row summaries refreshed"
            ),
            ExecOutcome::AnnotationCorrected {
                annotation,
                successor,
                rows_refreshed,
            } => write!(
                f,
                "annotation {annotation} corrected by {successor}; \
                 {rows_refreshed} row summaries refreshed"
            ),
            ExecOutcome::AnnotationFlagged { annotation } => {
                write!(f, "annotation {annotation} flagged")
            }
            ExecOutcome::History { annotation, events } => {
                write!(f, "annotation {annotation}:")?;
                for e in events {
                    write!(f, " [{} at tick {}", e.kind, e.at)?;
                    if let Some(n) = &e.note {
                        write!(f, " ({n})")?;
                    }
                    if let Some(s) = e.successor {
                        write!(f, " -> {s}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
        }
    }
}
