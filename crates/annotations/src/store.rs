//! The annotation store: id allocation, bodies, and the attachment index.

use crate::index::AttachmentIndex;
use crate::model::{Annotation, AnnotationBody, ColSig, Target};
use insightnotes_common::{codec, AnnotationId, Error, Result, RowId, TableId};
use std::collections::HashMap;

/// Aggregate statistics, consumed by the compression experiment (F1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of stored annotations.
    pub count: usize,
    /// Total content bytes (text + documents).
    pub content_bytes: usize,
    /// Total `(row, annotation)` attachment pairs.
    pub attachments: usize,
}

/// Owns every raw annotation in a database instance.
#[derive(Debug, Default)]
pub struct AnnotationStore {
    annotations: HashMap<AnnotationId, Annotation>,
    index: AttachmentIndex,
    next_id: u64,
    content_bytes: usize,
}

impl AnnotationStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores an annotation with its targets, returning the new id.
    ///
    /// Fails if `targets` is empty (an unattached annotation is
    /// unreachable) or if any target has an empty column signature.
    pub fn add(&mut self, body: AnnotationBody, targets: Vec<Target>) -> Result<AnnotationId> {
        if targets.is_empty() {
            return Err(Error::Annotation(
                "annotation must have at least one target".into(),
            ));
        }
        if targets.iter().any(|t| t.cols.is_empty()) {
            return Err(Error::Annotation(
                "annotation target must cover at least one column".into(),
            ));
        }
        self.next_id += 1;
        let id = AnnotationId::new(self.next_id);
        self.content_bytes += body.content_bytes();
        for t in &targets {
            self.index.attach(t.table, t.row, id, t.cols);
        }
        self.annotations.insert(id, Annotation { body, targets });
        Ok(id)
    }

    /// Stores an annotation under a caller-chosen id, advancing the
    /// allocator past it. The sharded engine routes annotations whose
    /// ids were allocated once at the router, so every shard's store
    /// must accept the same `(id, body, targets)` triple verbatim.
    ///
    /// Same validation as [`AnnotationStore::add`], plus a duplicate-id
    /// check; `next_id` is bumped to at least `id` so snapshot encoding
    /// (which requires every id ≤ `next_id`) stays valid and later
    /// [`AnnotationStore::add`] calls never collide.
    pub fn add_at(
        &mut self,
        id: AnnotationId,
        body: AnnotationBody,
        targets: Vec<Target>,
    ) -> Result<AnnotationId> {
        if targets.is_empty() {
            return Err(Error::Annotation(
                "annotation must have at least one target".into(),
            ));
        }
        if targets.iter().any(|t| t.cols.is_empty()) {
            return Err(Error::Annotation(
                "annotation target must cover at least one column".into(),
            ));
        }
        if self.annotations.contains_key(&id) {
            return Err(Error::Annotation(format!(
                "annotation id {id} already in use"
            )));
        }
        self.next_id = self.next_id.max(id.raw());
        self.content_bytes += body.content_bytes();
        for t in &targets {
            self.index.attach(t.table, t.row, id, t.cols);
        }
        self.annotations.insert(id, Annotation { body, targets });
        Ok(id)
    }

    /// The highest id the allocator has handed out (0 when empty). The
    /// shard router seeds its global id allocator from the max across
    /// shards after recovery.
    pub fn last_id(&self) -> u64 {
        self.next_id
    }

    /// Fetches an annotation by id.
    pub fn get(&self, id: AnnotationId) -> Result<&Annotation> {
        self.annotations
            .get(&id)
            .ok_or_else(|| Error::Annotation(format!("unknown annotation {id}")))
    }

    /// Fetches several annotations, preserving order. Unknown ids error.
    pub fn get_many(
        &self,
        ids: impl IntoIterator<Item = AnnotationId>,
    ) -> Result<Vec<&Annotation>> {
        ids.into_iter().map(|id| self.get(id)).collect()
    }

    /// Removes an annotation everywhere.
    pub fn remove(&mut self, id: AnnotationId) -> Result<Annotation> {
        let ann = self
            .annotations
            .remove(&id)
            .ok_or_else(|| Error::Annotation(format!("unknown annotation {id}")))?;
        self.content_bytes -= ann.body.content_bytes();
        for t in &ann.targets {
            self.index.detach(t.table, t.row, id);
        }
        Ok(ann)
    }

    /// Attachments on a row: `(annotation id, column signature)` pairs in
    /// attachment order.
    pub fn on_row(&self, table: TableId, row: RowId) -> &[(AnnotationId, ColSig)] {
        self.index.on_row(table, row)
    }

    /// Number of annotations attached to a row.
    pub fn count_on_row(&self, table: TableId, row: RowId) -> usize {
        self.index.count_on_row(table, row)
    }

    /// Drops all attachments for a deleted row; annotations attached
    /// *only* to that row are removed entirely.
    pub fn clear_row(&mut self, table: TableId, row: RowId) {
        for (id, _) in self.index.clear_row(table, row) {
            if let Some(ann) = self.annotations.get_mut(&id) {
                ann.targets.retain(|t| !(t.table == table && t.row == row));
                if ann.targets.is_empty() {
                    let ann = self.annotations.remove(&id).expect("present");
                    self.content_bytes -= ann.body.content_bytes();
                }
            }
        }
    }

    /// Rows of `table` carrying at least one annotation.
    pub fn annotated_rows(&self, table: TableId) -> Vec<RowId> {
        let mut rows: Vec<RowId> = self.index.annotated_rows(table).collect();
        rows.sort_unstable();
        rows
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            count: self.annotations.len(),
            content_bytes: self.content_bytes,
            attachments: self.index.total_attachments(),
        }
    }
}

impl codec::Encodable for AnnotationStore {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.varint(self.next_id);
        // Annotations in id order for deterministic snapshots.
        let mut ids: Vec<AnnotationId> = self.annotations.keys().copied().collect();
        ids.sort_unstable();
        enc.varint(ids.len() as u64);
        for id in ids {
            enc.varint(id.raw());
            self.annotations[&id].encode(enc);
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let next_id = dec.varint()?;
        let n = dec.varint()? as usize;
        let mut store = AnnotationStore {
            next_id,
            ..AnnotationStore::default()
        };
        for _ in 0..n {
            let id = AnnotationId::new(dec.varint()?);
            if id.raw() > next_id {
                return Err(Error::Codec(format!(
                    "annotation id {id} above next_id {next_id}"
                )));
            }
            let ann = Annotation::decode(dec)?;
            // Rebuild the attachment index and byte stats from targets.
            store.content_bytes += ann.body.content_bytes();
            for t in &ann.targets {
                store.index.attach(t.table, t.row, id, t.cols);
            }
            if store.annotations.insert(id, ann).is_some() {
                return Err(Error::Codec(format!("duplicate annotation {id}")));
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(1);

    fn target(row: u64, arity: usize) -> Target {
        Target::new(T, RowId(row), ColSig::whole_row(arity))
    }

    #[test]
    fn add_get_remove() {
        let mut store = AnnotationStore::new();
        let id = store
            .add(
                AnnotationBody::text("size seems wrong", "alice"),
                vec![target(1, 3)],
            )
            .unwrap();
        assert_eq!(store.get(id).unwrap().body.text, "size seems wrong");
        assert_eq!(store.stats().count, 1);
        assert_eq!(store.stats().content_bytes, "size seems wrong".len());
        store.remove(id).unwrap();
        assert!(store.get(id).is_err());
        assert_eq!(store.stats().count, 0);
        assert_eq!(store.stats().content_bytes, 0);
    }

    #[test]
    fn unattached_annotations_rejected() {
        let mut store = AnnotationStore::new();
        assert!(store.add(AnnotationBody::text("x", "a"), vec![]).is_err());
        assert!(store
            .add(
                AnnotationBody::text("x", "a"),
                vec![Target::new(T, RowId(1), ColSig::EMPTY)]
            )
            .is_err());
    }

    #[test]
    fn multi_target_annotation_visible_on_every_row() {
        let mut store = AnnotationStore::new();
        let id = store
            .add(
                AnnotationBody::text("shared provenance note", "bob"),
                vec![target(1, 3), target(2, 3)],
            )
            .unwrap();
        assert_eq!(store.on_row(T, RowId(1))[0].0, id);
        assert_eq!(store.on_row(T, RowId(2))[0].0, id);
        assert_eq!(store.stats().attachments, 2);
    }

    #[test]
    fn clear_row_removes_orphaned_annotations_only() {
        let mut store = AnnotationStore::new();
        let shared = store
            .add(
                AnnotationBody::text("shared", "a"),
                vec![target(1, 2), target(2, 2)],
            )
            .unwrap();
        let solo = store
            .add(AnnotationBody::text("solo", "a"), vec![target(1, 2)])
            .unwrap();
        store.clear_row(T, RowId(1));
        assert!(store.get(solo).is_err(), "orphaned annotation removed");
        let kept = store.get(shared).unwrap();
        assert_eq!(
            kept.targets.len(),
            1,
            "shared annotation keeps other target"
        );
        assert_eq!(store.count_on_row(T, RowId(1)), 0);
        assert_eq!(store.count_on_row(T, RowId(2)), 1);
    }

    #[test]
    fn get_many_preserves_order() {
        let mut store = AnnotationStore::new();
        let a = store
            .add(AnnotationBody::text("first", "x"), vec![target(1, 1)])
            .unwrap();
        let b = store
            .add(AnnotationBody::text("second", "x"), vec![target(1, 1)])
            .unwrap();
        let got = store.get_many([b, a]).unwrap();
        assert_eq!(got[0].body.text, "second");
        assert_eq!(got[1].body.text, "first");
        assert!(store.get_many([AnnotationId(99)]).is_err());
    }

    #[test]
    fn annotated_rows_sorted() {
        let mut store = AnnotationStore::new();
        store
            .add(AnnotationBody::text("x", "a"), vec![target(5, 1)])
            .unwrap();
        store
            .add(AnnotationBody::text("y", "a"), vec![target(2, 1)])
            .unwrap();
        assert_eq!(store.annotated_rows(T), vec![RowId(2), RowId(5)]);
    }
}
