//! The annotation store: id allocation, bodies, and the attachment index.

use crate::index::AttachmentIndex;
use crate::model::{
    Annotation, AnnotationBody, AnnotationStatus, ColSig, LifecycleEvent, LifecycleKind, Target,
};
use insightnotes_common::{codec, AnnotationId, Error, Result, RowId, TableId};
use std::collections::HashMap;

/// Aggregate statistics, consumed by the compression experiment (F1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of stored (live) annotations.
    pub count: usize,
    /// Total live content bytes (text + documents).
    pub content_bytes: usize,
    /// Total live `(row, annotation)` attachment pairs.
    pub attachments: usize,
    /// Number of tombstoned (retracted/corrected) annotations.
    pub retired: usize,
}

/// Owns every raw annotation in a database instance.
///
/// Annotations are either **live** (indexed, visible to queries and
/// summaries) or **tombstoned** (retracted or corrected: detached from
/// the attachment index and from summary maintenance, but their bodies
/// and targets are retained so `HISTORY` and `AS OF` can replay the
/// timeline). `DELETE ANNOTATION` remains the destructive path: it
/// erases the annotation *and* its timeline.
#[derive(Debug, Default)]
pub struct AnnotationStore {
    annotations: HashMap<AnnotationId, Annotation>,
    /// Bodies of retracted/corrected annotations, keyed by id. Disjoint
    /// from `annotations` — a tombstoned id is never live again.
    tombstones: HashMap<AnnotationId, Annotation>,
    /// Lifecycle timelines, in event order. Only annotations a curator
    /// flagged/retracted/corrected have an entry (creation is recorded
    /// by the body's `created` tick).
    events: HashMap<AnnotationId, Vec<LifecycleEvent>>,
    index: AttachmentIndex,
    next_id: u64,
    content_bytes: usize,
}

impl AnnotationStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores an annotation with its targets, returning the new id.
    ///
    /// Fails if `targets` is empty (an unattached annotation is
    /// unreachable) or if any target has an empty column signature.
    pub fn add(&mut self, body: AnnotationBody, targets: Vec<Target>) -> Result<AnnotationId> {
        if targets.is_empty() {
            return Err(Error::Annotation(
                "annotation must have at least one target".into(),
            ));
        }
        if targets.iter().any(|t| t.cols.is_empty()) {
            return Err(Error::Annotation(
                "annotation target must cover at least one column".into(),
            ));
        }
        self.next_id += 1;
        let id = AnnotationId::new(self.next_id);
        self.content_bytes += body.content_bytes();
        for t in &targets {
            self.index.attach(t.table, t.row, id, t.cols);
        }
        self.annotations.insert(id, Annotation { body, targets });
        Ok(id)
    }

    /// Stores an annotation under a caller-chosen id, advancing the
    /// allocator past it. The sharded engine routes annotations whose
    /// ids were allocated once at the router, so every shard's store
    /// must accept the same `(id, body, targets)` triple verbatim.
    ///
    /// Same validation as [`AnnotationStore::add`], plus a duplicate-id
    /// check; `next_id` is bumped to at least `id` so snapshot encoding
    /// (which requires every id ≤ `next_id`) stays valid and later
    /// [`AnnotationStore::add`] calls never collide.
    pub fn add_at(
        &mut self,
        id: AnnotationId,
        body: AnnotationBody,
        targets: Vec<Target>,
    ) -> Result<AnnotationId> {
        if targets.is_empty() {
            return Err(Error::Annotation(
                "annotation must have at least one target".into(),
            ));
        }
        if targets.iter().any(|t| t.cols.is_empty()) {
            return Err(Error::Annotation(
                "annotation target must cover at least one column".into(),
            ));
        }
        if self.annotations.contains_key(&id) || self.tombstones.contains_key(&id) {
            return Err(Error::Annotation(format!(
                "annotation id {id} already in use"
            )));
        }
        self.next_id = self.next_id.max(id.raw());
        self.content_bytes += body.content_bytes();
        for t in &targets {
            self.index.attach(t.table, t.row, id, t.cols);
        }
        self.annotations.insert(id, Annotation { body, targets });
        Ok(id)
    }

    /// The highest id the allocator has handed out (0 when empty). The
    /// shard router seeds its global id allocator from the max across
    /// shards after recovery.
    pub fn last_id(&self) -> u64 {
        self.next_id
    }

    /// Fetches an annotation by id.
    pub fn get(&self, id: AnnotationId) -> Result<&Annotation> {
        self.annotations
            .get(&id)
            .ok_or_else(|| Error::Annotation(format!("unknown annotation {id}")))
    }

    /// Fetches several annotations, preserving order. Unknown ids error.
    pub fn get_many(
        &self,
        ids: impl IntoIterator<Item = AnnotationId>,
    ) -> Result<Vec<&Annotation>> {
        ids.into_iter().map(|id| self.get(id)).collect()
    }

    /// Removes an annotation everywhere, timeline included (the
    /// destructive path behind `DELETE ANNOTATION` — for the recoverable
    /// alternative see [`AnnotationStore::retract`]).
    pub fn remove(&mut self, id: AnnotationId) -> Result<Annotation> {
        let ann = self
            .annotations
            .remove(&id)
            .ok_or_else(|| Error::Annotation(format!("unknown annotation {id}")))?;
        self.content_bytes -= ann.body.content_bytes();
        for t in &ann.targets {
            self.index.detach(t.table, t.row, id);
        }
        self.events.remove(&id);
        Ok(ann)
    }

    /// Flags a live annotation for review at tick `at`. The annotation
    /// stays live — a flag is a curator marker, not a removal.
    pub fn flag(&mut self, id: AnnotationId, note: Option<String>, at: u64) -> Result<()> {
        self.require_live(id)?;
        self.events.entry(id).or_default().push(LifecycleEvent {
            kind: LifecycleKind::Flagged,
            at,
            note,
            successor: None,
        });
        Ok(())
    }

    /// Retracts a live annotation at tick `at`: it leaves the attachment
    /// index (queries and summary maintenance stop seeing it) but its
    /// body, targets, and timeline persist as a tombstone. Returns a
    /// clone of the annotation so the caller can decrementally remove
    /// its summary effects.
    pub fn retract(&mut self, id: AnnotationId, at: u64) -> Result<Annotation> {
        self.retire(
            id,
            LifecycleEvent {
                kind: LifecycleKind::Retracted,
                at,
                note: None,
                successor: None,
            },
        )
    }

    /// Tombstones a live annotation as superseded by `successor` at tick
    /// `at`. Mechanically a retract, but the timeline records the
    /// supersession link so `HISTORY` can walk correction chains.
    pub fn correct(
        &mut self,
        id: AnnotationId,
        successor: AnnotationId,
        at: u64,
    ) -> Result<Annotation> {
        self.retire(
            id,
            LifecycleEvent {
                kind: LifecycleKind::Corrected,
                at,
                note: None,
                successor: Some(successor),
            },
        )
    }

    fn retire(&mut self, id: AnnotationId, event: LifecycleEvent) -> Result<Annotation> {
        self.require_live(id)?;
        let ann = self.annotations.remove(&id).expect("checked live");
        self.content_bytes -= ann.body.content_bytes();
        for t in &ann.targets {
            self.index.detach(t.table, t.row, id);
        }
        self.events.entry(id).or_default().push(event);
        self.tombstones.insert(id, ann.clone());
        Ok(ann)
    }

    fn require_live(&self, id: AnnotationId) -> Result<()> {
        if self.annotations.contains_key(&id) {
            return Ok(());
        }
        if let Some(status) = self.tombstone_status(id) {
            return Err(Error::Annotation(format!(
                "annotation {id} is already {status}"
            )));
        }
        Err(Error::Annotation(format!("unknown annotation {id}")))
    }

    /// The annotation's current lifecycle state; errors only for ids the
    /// store has never seen (or that were hard-deleted).
    pub fn status(&self, id: AnnotationId) -> Result<AnnotationStatus> {
        if self.annotations.contains_key(&id) {
            let flagged = self
                .events
                .get(&id)
                .is_some_and(|evs| evs.iter().any(|e| e.kind == LifecycleKind::Flagged));
            return Ok(if flagged {
                AnnotationStatus::Flagged
            } else {
                AnnotationStatus::Active
            });
        }
        self.tombstone_status(id)
            .ok_or_else(|| Error::Annotation(format!("unknown annotation {id}")))
    }

    fn tombstone_status(&self, id: AnnotationId) -> Option<AnnotationStatus> {
        if !self.tombstones.contains_key(&id) {
            return None;
        }
        let corrected = self
            .events
            .get(&id)
            .is_some_and(|evs| evs.iter().any(|e| e.kind == LifecycleKind::Corrected));
        Some(if corrected {
            AnnotationStatus::Corrected
        } else {
            AnnotationStatus::Retracted
        })
    }

    /// The annotation's full timeline: a synthesized `Created` event
    /// (from the body's `created` tick), then every recorded lifecycle
    /// event in order. Works for live and tombstoned annotations alike.
    pub fn history(&self, id: AnnotationId) -> Result<Vec<LifecycleEvent>> {
        let ann = self.get_any(id)?;
        let mut out = vec![LifecycleEvent {
            kind: LifecycleKind::Created,
            at: ann.body.created,
            note: None,
            successor: None,
        }];
        if let Some(evs) = self.events.get(&id) {
            out.extend(evs.iter().cloned());
        }
        Ok(out)
    }

    /// Fetches an annotation whether live or tombstoned — the `HISTORY`
    /// and `AS OF` paths, which must read retracted bodies.
    pub fn get_any(&self, id: AnnotationId) -> Result<&Annotation> {
        self.annotations
            .get(&id)
            .or_else(|| self.tombstones.get(&id))
            .ok_or_else(|| Error::Annotation(format!("unknown annotation {id}")))
    }

    /// Whether `id` names a live (non-tombstoned) annotation.
    pub fn is_live(&self, id: AnnotationId) -> bool {
        self.annotations.contains_key(&id)
    }

    /// The tick at which `id` was retracted/corrected, if it was.
    pub fn retired_at(&self, id: AnnotationId) -> Option<u64> {
        self.events.get(&id).and_then(|evs| {
            evs.iter()
                .find(|e| matches!(e.kind, LifecycleKind::Retracted | LifecycleKind::Corrected))
                .map(|e| e.at)
        })
    }

    /// Every annotation visible at logical tick `t`: created at or
    /// before `t` and not yet retired at `t`. Hard-deleted annotations
    /// are gone from history entirely (documented `DELETE` semantics).
    /// Sorted by id for deterministic reconstruction.
    pub fn as_of(&self, t: u64) -> Vec<(AnnotationId, &Annotation)> {
        let mut out: Vec<(AnnotationId, &Annotation)> = self
            .annotations
            .iter()
            .chain(self.tombstones.iter())
            .filter(|(id, ann)| {
                ann.body.created <= t && self.retired_at(**id).is_none_or(|r| r > t)
            })
            .map(|(id, ann)| (*id, ann))
            .collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Attachments on a row: `(annotation id, column signature)` pairs in
    /// attachment order.
    pub fn on_row(&self, table: TableId, row: RowId) -> &[(AnnotationId, ColSig)] {
        self.index.on_row(table, row)
    }

    /// Number of annotations attached to a row.
    pub fn count_on_row(&self, table: TableId, row: RowId) -> usize {
        self.index.count_on_row(table, row)
    }

    /// Drops all attachments for a deleted row; annotations attached
    /// *only* to that row are removed entirely.
    pub fn clear_row(&mut self, table: TableId, row: RowId) {
        for (id, _) in self.index.clear_row(table, row) {
            if let Some(ann) = self.annotations.get_mut(&id) {
                ann.targets.retain(|t| !(t.table == table && t.row == row));
                if ann.targets.is_empty() {
                    let ann = self.annotations.remove(&id).expect("present");
                    self.content_bytes -= ann.body.content_bytes();
                }
            }
        }
    }

    /// Rows of `table` carrying at least one annotation.
    pub fn annotated_rows(&self, table: TableId) -> Vec<RowId> {
        let mut rows: Vec<RowId> = self.index.annotated_rows(table).collect();
        rows.sort_unstable();
        rows
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            count: self.annotations.len(),
            content_bytes: self.content_bytes,
            attachments: self.index.total_attachments(),
            retired: self.tombstones.len(),
        }
    }
}

impl codec::Encodable for AnnotationStore {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.varint(self.next_id);
        // Annotations in id order for deterministic snapshots.
        let mut ids: Vec<AnnotationId> = self.annotations.keys().copied().collect();
        ids.sort_unstable();
        enc.varint(ids.len() as u64);
        for id in ids {
            enc.varint(id.raw());
            self.annotations[&id].encode(enc);
        }
        // Tombstones and timelines, id-sorted for the same determinism.
        let mut ids: Vec<AnnotationId> = self.tombstones.keys().copied().collect();
        ids.sort_unstable();
        enc.varint(ids.len() as u64);
        for id in ids {
            enc.varint(id.raw());
            self.tombstones[&id].encode(enc);
        }
        let mut ids: Vec<AnnotationId> = self.events.keys().copied().collect();
        ids.sort_unstable();
        enc.varint(ids.len() as u64);
        for id in ids {
            enc.varint(id.raw());
            enc.seq(&self.events[&id], |e, ev| ev.encode(e));
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let next_id = dec.varint()?;
        let n = dec.varint()? as usize;
        let mut store = AnnotationStore {
            next_id,
            ..AnnotationStore::default()
        };
        for _ in 0..n {
            let id = AnnotationId::new(dec.varint()?);
            if id.raw() > next_id {
                return Err(Error::Codec(format!(
                    "annotation id {id} above next_id {next_id}"
                )));
            }
            let ann = Annotation::decode(dec)?;
            // Rebuild the attachment index and byte stats from targets.
            store.content_bytes += ann.body.content_bytes();
            for t in &ann.targets {
                store.index.attach(t.table, t.row, id, t.cols);
            }
            if store.annotations.insert(id, ann).is_some() {
                return Err(Error::Codec(format!("duplicate annotation {id}")));
            }
        }
        let n = dec.varint()? as usize;
        for _ in 0..n {
            let id = AnnotationId::new(dec.varint()?);
            if id.raw() > next_id {
                return Err(Error::Codec(format!(
                    "tombstone id {id} above next_id {next_id}"
                )));
            }
            if store.annotations.contains_key(&id) {
                return Err(Error::Codec(format!(
                    "annotation {id} is both live and tombstoned"
                )));
            }
            let ann = Annotation::decode(dec)?;
            if store.tombstones.insert(id, ann).is_some() {
                return Err(Error::Codec(format!("duplicate tombstone {id}")));
            }
        }
        let n = dec.varint()? as usize;
        for _ in 0..n {
            let id = AnnotationId::new(dec.varint()?);
            let evs: Vec<LifecycleEvent> = dec.seq(LifecycleEvent::decode)?;
            if store.events.insert(id, evs).is_some() {
                return Err(Error::Codec(format!("duplicate timeline for {id}")));
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(1);

    fn target(row: u64, arity: usize) -> Target {
        Target::new(T, RowId(row), ColSig::whole_row(arity))
    }

    #[test]
    fn add_get_remove() {
        let mut store = AnnotationStore::new();
        let id = store
            .add(
                AnnotationBody::text("size seems wrong", "alice"),
                vec![target(1, 3)],
            )
            .unwrap();
        assert_eq!(store.get(id).unwrap().body.text, "size seems wrong");
        assert_eq!(store.stats().count, 1);
        assert_eq!(store.stats().content_bytes, "size seems wrong".len());
        store.remove(id).unwrap();
        assert!(store.get(id).is_err());
        assert_eq!(store.stats().count, 0);
        assert_eq!(store.stats().content_bytes, 0);
    }

    #[test]
    fn unattached_annotations_rejected() {
        let mut store = AnnotationStore::new();
        assert!(store.add(AnnotationBody::text("x", "a"), vec![]).is_err());
        assert!(store
            .add(
                AnnotationBody::text("x", "a"),
                vec![Target::new(T, RowId(1), ColSig::EMPTY)]
            )
            .is_err());
    }

    #[test]
    fn multi_target_annotation_visible_on_every_row() {
        let mut store = AnnotationStore::new();
        let id = store
            .add(
                AnnotationBody::text("shared provenance note", "bob"),
                vec![target(1, 3), target(2, 3)],
            )
            .unwrap();
        assert_eq!(store.on_row(T, RowId(1))[0].0, id);
        assert_eq!(store.on_row(T, RowId(2))[0].0, id);
        assert_eq!(store.stats().attachments, 2);
    }

    #[test]
    fn clear_row_removes_orphaned_annotations_only() {
        let mut store = AnnotationStore::new();
        let shared = store
            .add(
                AnnotationBody::text("shared", "a"),
                vec![target(1, 2), target(2, 2)],
            )
            .unwrap();
        let solo = store
            .add(AnnotationBody::text("solo", "a"), vec![target(1, 2)])
            .unwrap();
        store.clear_row(T, RowId(1));
        assert!(store.get(solo).is_err(), "orphaned annotation removed");
        let kept = store.get(shared).unwrap();
        assert_eq!(
            kept.targets.len(),
            1,
            "shared annotation keeps other target"
        );
        assert_eq!(store.count_on_row(T, RowId(1)), 0);
        assert_eq!(store.count_on_row(T, RowId(2)), 1);
    }

    #[test]
    fn get_many_preserves_order() {
        let mut store = AnnotationStore::new();
        let a = store
            .add(AnnotationBody::text("first", "x"), vec![target(1, 1)])
            .unwrap();
        let b = store
            .add(AnnotationBody::text("second", "x"), vec![target(1, 1)])
            .unwrap();
        let got = store.get_many([b, a]).unwrap();
        assert_eq!(got[0].body.text, "second");
        assert_eq!(got[1].body.text, "first");
        assert!(store.get_many([AnnotationId(99)]).is_err());
    }

    #[test]
    fn retract_tombstones_and_preserves_history() {
        let mut store = AnnotationStore::new();
        let mut body = AnnotationBody::text("sighting", "alice");
        body.created = 5;
        let id = store.add(body, vec![target(1, 2)]).unwrap();
        assert_eq!(store.status(id).unwrap(), AnnotationStatus::Active);

        store.flag(id, Some("needs review".into()), 7).unwrap();
        assert_eq!(store.status(id).unwrap(), AnnotationStatus::Flagged);
        assert!(store.is_live(id), "flag keeps the annotation live");
        assert_eq!(store.count_on_row(T, RowId(1)), 1);

        let retracted = store.retract(id, 9).unwrap();
        assert_eq!(retracted.body.text, "sighting");
        assert_eq!(store.status(id).unwrap(), AnnotationStatus::Retracted);
        assert!(!store.is_live(id));
        assert_eq!(store.count_on_row(T, RowId(1)), 0, "detached from index");
        assert_eq!(store.stats().count, 0);
        assert_eq!(store.stats().retired, 1);
        assert_eq!(store.stats().content_bytes, 0);
        assert_eq!(store.get_any(id).unwrap().body.text, "sighting");

        let history = store.history(id).unwrap();
        let kinds: Vec<LifecycleKind> = history.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                LifecycleKind::Created,
                LifecycleKind::Flagged,
                LifecycleKind::Retracted
            ]
        );
        assert_eq!(history[0].at, 5);
        assert_eq!(history[1].note.as_deref(), Some("needs review"));
        assert_eq!(history[2].at, 9);

        // Double retract, flag-after-retract, and re-use are rejected.
        assert!(store.retract(id, 10).is_err());
        assert!(store.flag(id, None, 10).is_err());
        assert!(store
            .add_at(id, AnnotationBody::text("x", "a"), vec![target(1, 2)])
            .is_err());
    }

    #[test]
    fn correct_links_successor_and_as_of_replays_the_timeline() {
        let mut store = AnnotationStore::new();
        let mut body = AnnotationBody::text("weight 3.2", "alice");
        body.created = 1;
        let old = store.add(body, vec![target(1, 2)]).unwrap();
        let mut body = AnnotationBody::text("weight 2.3 (typo fixed)", "alice");
        body.created = 4;
        let new = store.add(body, vec![target(1, 2)]).unwrap();
        store.correct(old, new, 4).unwrap();

        assert_eq!(store.status(old).unwrap(), AnnotationStatus::Corrected);
        let history = store.history(old).unwrap();
        assert_eq!(history.last().unwrap().successor, Some(new));
        assert_eq!(store.retired_at(old), Some(4));
        assert_eq!(store.retired_at(new), None);

        // At tick 1..3 only the predecessor is visible; from 4 only the
        // correction.
        let at = |t: u64| -> Vec<AnnotationId> {
            store.as_of(t).into_iter().map(|(id, _)| id).collect()
        };
        assert_eq!(at(0), Vec::<AnnotationId>::new());
        assert_eq!(at(1), vec![old]);
        assert_eq!(at(3), vec![old]);
        assert_eq!(at(4), vec![new]);
        assert_eq!(at(99), vec![new]);
    }

    #[test]
    fn hard_delete_erases_the_timeline() {
        let mut store = AnnotationStore::new();
        let id = store
            .add(AnnotationBody::text("x", "a"), vec![target(1, 1)])
            .unwrap();
        store.flag(id, None, 2).unwrap();
        store.remove(id).unwrap();
        assert!(store.history(id).is_err());
        assert!(store.status(id).is_err());
        assert!(store.as_of(99).is_empty());
    }

    #[test]
    fn lifecycle_state_round_trips_through_the_codec() {
        use insightnotes_common::codec::{Decoder, Encodable, Encoder};
        let mut store = AnnotationStore::new();
        let mut body = AnnotationBody::text("keep", "a");
        body.created = 1;
        let keep = store.add(body, vec![target(1, 2)]).unwrap();
        let mut body = AnnotationBody::text("drop", "b");
        body.created = 2;
        let gone = store.add(body, vec![target(2, 2)]).unwrap();
        store.flag(keep, Some("check".into()), 3).unwrap();
        store.retract(gone, 4).unwrap();

        let mut enc = Encoder::with_capacity(256);
        store.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let back = AnnotationStore::decode(&mut dec).unwrap();
        assert_eq!(back.stats(), store.stats());
        assert_eq!(back.status(keep).unwrap(), AnnotationStatus::Flagged);
        assert_eq!(back.status(gone).unwrap(), AnnotationStatus::Retracted);
        assert_eq!(back.history(gone).unwrap(), store.history(gone).unwrap());
        assert_eq!(back.get_any(gone).unwrap().body.text, "drop");

        // Round-tripped bytes are identical (deterministic encode).
        let mut enc = Encoder::with_capacity(256);
        back.encode(&mut enc);
        assert_eq!(enc.finish(), bytes);
    }

    #[test]
    fn annotated_rows_sorted() {
        let mut store = AnnotationStore::new();
        store
            .add(AnnotationBody::text("x", "a"), vec![target(5, 1)])
            .unwrap();
        store
            .add(AnnotationBody::text("y", "a"), vec![target(2, 1)])
            .unwrap();
        assert_eq!(store.annotated_rows(T), vec![RowId(2), RowId(5)]);
    }
}
