//! Annotation data model: bodies, targets, and column signatures.

use insightnotes_common::{codec, ColumnId, Result, RowId, TableId};
use std::fmt;

/// A set of columns within one table, as a 64-bit mask over column
/// ordinals. Tables are limited to 64 columns (checked at attachment
/// time) — far beyond the paper's workloads — in exchange for O(1)
/// signature algebra on the query hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColSig(u64);

impl ColSig {
    /// Maximum representable column ordinal (exclusive).
    pub const MAX_COLUMNS: u16 = 64;

    /// The empty signature.
    pub const EMPTY: ColSig = ColSig(0);

    /// Signature covering every column of a table with `arity` columns
    /// (a whole-row annotation).
    pub fn whole_row(arity: usize) -> ColSig {
        debug_assert!(arity <= Self::MAX_COLUMNS as usize);
        if arity >= 64 {
            ColSig(u64::MAX)
        } else {
            ColSig((1u64 << arity) - 1)
        }
    }

    /// Signature of a single column.
    pub fn single(col: ColumnId) -> ColSig {
        debug_assert!(col.raw() < Self::MAX_COLUMNS);
        ColSig(1u64 << col.raw())
    }

    /// Signature of a set of columns.
    pub fn of_columns(cols: &[ColumnId]) -> ColSig {
        let mut mask = 0u64;
        for c in cols {
            debug_assert!(c.raw() < Self::MAX_COLUMNS);
            mask |= 1u64 << c.raw();
        }
        ColSig(mask)
    }

    /// Raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Constructs from a raw bitmask.
    pub fn from_bits(bits: u64) -> ColSig {
        ColSig(bits)
    }

    /// Set intersection.
    pub fn intersect(self, other: ColSig) -> ColSig {
        ColSig(self.0 & other.0)
    }

    /// Set union.
    pub fn union(self, other: ColSig) -> ColSig {
        ColSig(self.0 | other.0)
    }

    /// True when no columns are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when `col` is in the set.
    pub fn contains(self, col: ColumnId) -> bool {
        col.raw() < Self::MAX_COLUMNS && self.0 & (1u64 << col.raw()) != 0
    }

    /// Number of columns in the set.
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Iterates the member column ordinals in increasing order.
    pub fn iter(self) -> impl Iterator<Item = ColumnId> {
        (0..64u16).filter_map(move |i| {
            if self.0 & (1u64 << i) != 0 {
                Some(ColumnId::new(i))
            } else {
                None
            }
        })
    }

    /// Remaps column ordinals through `map` (old → new ordinal, or `None`
    /// to drop). Used when an operator reorders or removes columns.
    pub fn remap(self, map: &dyn Fn(u16) -> Option<u16>) -> ColSig {
        let mut out = 0u64;
        for c in self.iter() {
            if let Some(n) = map(c.raw()) {
                debug_assert!(n < Self::MAX_COLUMNS);
                out |= 1u64 << n;
            }
        }
        ColSig(out)
    }
}

impl fmt::Display for ColSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self.iter().map(|c| c.raw().to_string()).collect();
        write!(f, "{{{}}}", cols.join(","))
    }
}

/// The content of an annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationBody {
    /// Free-text observation / comment.
    pub text: String,
    /// Optional attached large object (article, report). This is what the
    /// Snippet summary type compresses.
    pub document: Option<String>,
    /// Curator identity.
    pub author: String,
    /// Logical creation tick (deterministic stand-in for a timestamp).
    pub created: u64,
}

impl AnnotationBody {
    /// Creates a plain text annotation.
    pub fn text(text: impl Into<String>, author: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            document: None,
            author: author.into(),
            created: 0,
        }
    }

    /// Attaches a document to the annotation.
    pub fn with_document(mut self, document: impl Into<String>) -> Self {
        self.document = Some(document.into());
        self
    }

    /// Total content size in bytes (text + document), used by the
    /// compression experiment.
    pub fn content_bytes(&self) -> usize {
        self.text.len() + self.document.as_ref().map_or(0, String::len)
    }
}

/// One attachment point of an annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target {
    /// Host table.
    pub table: TableId,
    /// Host row.
    pub row: RowId,
    /// Columns covered on that row.
    pub cols: ColSig,
}

impl Target {
    /// Creates a target.
    pub fn new(table: TableId, row: RowId, cols: ColSig) -> Self {
        Self { table, row, cols }
    }
}

/// A stored annotation: body plus all of its targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The annotation content.
    pub body: AnnotationBody,
    /// Everywhere the annotation is attached.
    pub targets: Vec<Target>,
}

/// What happened to an annotation at one point of its timeline.
///
/// `Created` is never stored — the body's `created` tick already records
/// it, and `AnnotationStore::history` synthesizes the event — so the
/// store only materializes timelines for annotations a curator touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleKind {
    /// The annotation was added (synthesized from `body.created`).
    Created,
    /// A curator flagged the annotation for review; it stays live.
    Flagged,
    /// The annotation was retracted: tombstoned, removed from summaries.
    Retracted,
    /// The annotation was superseded by a correction (its successor).
    Corrected,
}

impl fmt::Display for LifecycleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LifecycleKind::Created => "created",
            LifecycleKind::Flagged => "flagged",
            LifecycleKind::Retracted => "retracted",
            LifecycleKind::Corrected => "corrected",
        })
    }
}

/// One entry of an annotation's lifecycle timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// What happened.
    pub kind: LifecycleKind,
    /// Logical-clock tick of the event (the `AS OF` axis).
    pub at: u64,
    /// Free-text reason (the optional `FLAG ... 'reason'` argument).
    pub note: Option<String>,
    /// The superseding annotation, for [`LifecycleKind::Corrected`].
    pub successor: Option<insightnotes_common::AnnotationId>,
}

/// An annotation's current lifecycle state, derived from its liveness
/// and timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnotationStatus {
    /// Live, never touched by a lifecycle statement.
    Active,
    /// Live, but carrying at least one flag.
    Flagged,
    /// Tombstoned by `RETRACT ANNOTATION`.
    Retracted,
    /// Tombstoned by `CORRECT ANNOTATION` (a successor replaced it).
    Corrected,
}

impl fmt::Display for AnnotationStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AnnotationStatus::Active => "active",
            AnnotationStatus::Flagged => "flagged",
            AnnotationStatus::Retracted => "retracted",
            AnnotationStatus::Corrected => "corrected",
        })
    }
}

impl codec::Encodable for AnnotationBody {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.str(&self.text);
        enc.option(&self.document, |e, d| e.str(d));
        enc.str(&self.author);
        enc.varint(self.created);
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        Ok(AnnotationBody {
            text: dec.str()?,
            document: dec.option(insightnotes_common::Decoder::str)?,
            author: dec.str()?,
            created: dec.varint()?,
        })
    }
}

impl codec::Encodable for Target {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.u32(self.table.raw());
        enc.varint(self.row.raw());
        enc.u64(self.cols.bits());
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        Ok(Target {
            table: TableId::new(dec.u32()?),
            row: RowId::new(dec.varint()?),
            cols: ColSig::from_bits(dec.u64()?),
        })
    }
}

impl codec::Encodable for LifecycleEvent {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.u8(match self.kind {
            LifecycleKind::Created => 0,
            LifecycleKind::Flagged => 1,
            LifecycleKind::Retracted => 2,
            LifecycleKind::Corrected => 3,
        });
        enc.varint(self.at);
        enc.option(&self.note, |e, n| e.str(n));
        enc.option(&self.successor, |e, s| e.varint(s.raw()));
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let kind = match dec.u8()? {
            0 => LifecycleKind::Created,
            1 => LifecycleKind::Flagged,
            2 => LifecycleKind::Retracted,
            3 => LifecycleKind::Corrected,
            tag => {
                return Err(insightnotes_common::Error::Codec(format!(
                    "unknown lifecycle event tag {tag}"
                )))
            }
        };
        Ok(LifecycleEvent {
            kind,
            at: dec.varint()?,
            note: dec.option(insightnotes_common::Decoder::str)?,
            successor: dec
                .option(insightnotes_common::Decoder::varint)?
                .map(insightnotes_common::AnnotationId::new),
        })
    }
}

impl codec::Encodable for Annotation {
    fn encode(&self, enc: &mut codec::Encoder) {
        self.body.encode(enc);
        enc.seq(&self.targets, |e, t| t.encode(e));
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        Ok(Annotation {
            body: AnnotationBody::decode(dec)?,
            targets: dec.seq(Target::decode)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_row_masks() {
        assert_eq!(ColSig::whole_row(0).bits(), 0);
        assert_eq!(ColSig::whole_row(3).bits(), 0b111);
        assert_eq!(ColSig::whole_row(64).bits(), u64::MAX);
    }

    #[test]
    fn signature_algebra() {
        let a = ColSig::of_columns(&[ColumnId::new(0), ColumnId::new(2)]);
        let b = ColSig::of_columns(&[ColumnId::new(2), ColumnId::new(3)]);
        assert_eq!(a.intersect(b), ColSig::single(ColumnId::new(2)));
        assert_eq!(a.union(b).count(), 3);
        assert!(a.contains(ColumnId::new(0)));
        assert!(!a.contains(ColumnId::new(3)));
        assert!(ColSig::EMPTY.is_empty());
        assert!(a.intersect(ColSig::EMPTY).is_empty());
    }

    #[test]
    fn iter_and_display() {
        let sig = ColSig::of_columns(&[ColumnId::new(5), ColumnId::new(1)]);
        let cols: Vec<u16> = sig.iter().map(insightnotes_common::ColumnId::raw).collect();
        assert_eq!(cols, vec![1, 5]);
        assert_eq!(sig.to_string(), "{1,5}");
    }

    #[test]
    fn remap_drops_and_moves_columns() {
        let sig = ColSig::of_columns(&[ColumnId::new(1), ColumnId::new(3)]);
        // Drop column 3, move column 1 to position 0.
        let out = sig.remap(&|c| if c == 1 { Some(0) } else { None });
        assert_eq!(out, ColSig::single(ColumnId::new(0)));
    }

    #[test]
    fn body_bytes_count_document() {
        let plain = AnnotationBody::text("note", "alice");
        assert_eq!(plain.content_bytes(), 4);
        let doc = plain.clone().with_document("long article body");
        assert_eq!(doc.content_bytes(), 4 + 17);
    }
}
