#![warn(missing_docs)]
//! # insightnotes-annotations
//!
//! The raw-annotation repository: the data that InsightNotes summarizes.
//!
//! An annotation is free text (a scientist's observation, a comment, a
//! provenance note) with an optional attached document (an article, an
//! experiment report), written by some curator. It attaches to one or more
//! *targets*: `(table, row, column set)` triples. Attaching to several
//! targets is first-class because the paper's join-merge semantics hinge on
//! the same annotation being attached to both join sides without being
//! double-counted.
//!
//! Column sets are represented as a 64-bit [`ColSig`] bitmask — the
//! *column signature* that summary objects bucket contributions by, which
//! is what makes projection ("remove the effect of annotations attached
//! only to projected-out columns") an exact, raw-annotation-free operation.

pub mod index;
pub mod model;
pub mod store;

pub use index::AttachmentIndex;
pub use model::{
    Annotation, AnnotationBody, AnnotationStatus, ColSig, LifecycleEvent, LifecycleKind, Target,
};
pub use store::{AnnotationStore, StoreStats};
