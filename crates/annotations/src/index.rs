//! The attachment index: `(table, row) → [(annotation, column signature)]`.
//!
//! Both summary maintenance (which annotations does this tuple carry?) and
//! zoom-in (resolve a summary component's ids to raw annotations on a
//! specific tuple) hit this index, so it is kept as a flat hash map with
//! per-row vectors in attachment order.

use crate::model::ColSig;
use insightnotes_common::{AnnotationId, RowId, TableId};
use std::collections::HashMap;

/// Per-row attachment lists.
#[derive(Debug, Default, Clone)]
pub struct AttachmentIndex {
    by_row: HashMap<(TableId, RowId), Vec<(AnnotationId, ColSig)>>,
}

impl AttachmentIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an attachment. If the annotation is already attached to the
    /// row, its column signature is widened (union) instead of duplicated.
    pub fn attach(&mut self, table: TableId, row: RowId, id: AnnotationId, cols: ColSig) {
        let list = self.by_row.entry((table, row)).or_default();
        if let Some(entry) = list.iter_mut().find(|(a, _)| *a == id) {
            entry.1 = entry.1.union(cols);
        } else {
            list.push((id, cols));
        }
    }

    /// Removes one annotation's attachment from a row. Returns whether it
    /// was present.
    pub fn detach(&mut self, table: TableId, row: RowId, id: AnnotationId) -> bool {
        if let Some(list) = self.by_row.get_mut(&(table, row)) {
            let before = list.len();
            list.retain(|(a, _)| *a != id);
            let removed = list.len() != before;
            if list.is_empty() {
                self.by_row.remove(&(table, row));
            }
            removed
        } else {
            false
        }
    }

    /// All attachments on a row, in attachment order.
    pub fn on_row(&self, table: TableId, row: RowId) -> &[(AnnotationId, ColSig)] {
        self.by_row.get(&(table, row)).map_or(&[], Vec::as_slice)
    }

    /// Number of annotations attached to a row.
    pub fn count_on_row(&self, table: TableId, row: RowId) -> usize {
        self.on_row(table, row).len()
    }

    /// Drops every attachment on a row (row deletion).
    pub fn clear_row(&mut self, table: TableId, row: RowId) -> Vec<(AnnotationId, ColSig)> {
        self.by_row.remove(&(table, row)).unwrap_or_default()
    }

    /// Total number of `(row, annotation)` attachment pairs.
    pub fn total_attachments(&self) -> usize {
        self.by_row.values().map(Vec::len).sum()
    }

    /// Iterates all rows of a table that carry at least one annotation.
    pub fn annotated_rows(&self, table: TableId) -> impl Iterator<Item = RowId> + '_ {
        self.by_row
            .keys()
            .filter(move |(t, _)| *t == table)
            .map(|(_, r)| *r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::ColumnId;

    const T: TableId = TableId(1);
    const R1: RowId = RowId(1);
    const R2: RowId = RowId(2);

    #[test]
    fn attach_and_lookup() {
        let mut idx = AttachmentIndex::new();
        idx.attach(T, R1, AnnotationId(1), ColSig::whole_row(3));
        idx.attach(T, R1, AnnotationId(2), ColSig::single(ColumnId(0)));
        idx.attach(T, R2, AnnotationId(1), ColSig::whole_row(3));
        assert_eq!(idx.count_on_row(T, R1), 2);
        assert_eq!(idx.count_on_row(T, R2), 1);
        assert_eq!(idx.total_attachments(), 3);
    }

    #[test]
    fn reattach_widens_signature() {
        let mut idx = AttachmentIndex::new();
        idx.attach(T, R1, AnnotationId(1), ColSig::single(ColumnId(0)));
        idx.attach(T, R1, AnnotationId(1), ColSig::single(ColumnId(2)));
        let on = idx.on_row(T, R1);
        assert_eq!(on.len(), 1);
        assert_eq!(on[0].1.count(), 2);
    }

    #[test]
    fn detach_and_clear() {
        let mut idx = AttachmentIndex::new();
        idx.attach(T, R1, AnnotationId(1), ColSig::whole_row(2));
        idx.attach(T, R1, AnnotationId(2), ColSig::whole_row(2));
        assert!(idx.detach(T, R1, AnnotationId(1)));
        assert!(!idx.detach(T, R1, AnnotationId(1)));
        assert_eq!(idx.count_on_row(T, R1), 1);
        let cleared = idx.clear_row(T, R1);
        assert_eq!(cleared.len(), 1);
        assert_eq!(idx.count_on_row(T, R1), 0);
    }

    #[test]
    fn annotated_rows_filters_by_table() {
        let mut idx = AttachmentIndex::new();
        idx.attach(T, R1, AnnotationId(1), ColSig::whole_row(1));
        idx.attach(TableId(2), R2, AnnotationId(2), ColSig::whole_row(1));
        let rows: Vec<RowId> = idx.annotated_rows(T).collect();
        assert_eq!(rows, vec![R1]);
    }
}
