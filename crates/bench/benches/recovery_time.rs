//! WAL write-path overhead and crash-recovery latency (experiment A6,
//! EXPERIMENTS.md).
//!
//! Two groups:
//!
//! * `wal_ingest` — per-statement ingest (one log record each) with a
//!   group fsync every 64 statements — the server committer's cadence
//!   for single-`Annotate` writers — under WAL `off`/`batch`/`always`.
//!   The `off`/`batch` gap is the price of durable acks under group
//!   commit; `always` fsyncs on every append and shows what durability
//!   would cost without it.
//! * `recovery` — `Database::recover` against a prepared directory:
//!   `replay` re-executes a full log of group-committed records,
//!   `checkpoint` loads a snapshot with a rotated (empty) log.
//!
//! Recovery inputs are built once; `Database::recover` only reads (and
//! at most truncates a torn tail, absent here), so iterations reuse the
//! same directory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_engine::{Database, DbConfig, SyncPolicy};
use insightnotes_workload::{ingest_script, IngestConfig};
use std::path::PathBuf;

const BIRDS: usize = 300;
const TOTAL: usize = 512;
const GROUP: usize = 64;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "insightnotes-recbench-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn workload() -> (String, Vec<String>) {
    let script = ingest_script(&IngestConfig {
        writers: 1,
        annotations_per_writer: TOTAL,
        num_birds: BIRDS,
        ..IngestConfig::default()
    });
    (script.setup.join(";\n"), script.clients.concat())
}

fn ingest(db: &mut Database, stream: &[String]) {
    for chunk in stream.chunks(GROUP) {
        for sql in chunk {
            db.execute_sql(sql).expect("ingest statement");
        }
        db.wal_sync().expect("group fsync");
    }
}

fn config_for(dir: &std::path::Path, wal: Option<SyncPolicy>) -> DbConfig {
    DbConfig {
        wal_dir: wal.map(|_| dir.to_path_buf()),
        wal_sync: wal.unwrap_or_default(),
        ..DbConfig::default()
    }
}

fn bench_wal_ingest(c: &mut Criterion) {
    let (setup, stream) = workload();
    let mut group = c.benchmark_group("wal_ingest");
    group.sample_size(10);
    for (label, wal) in [
        ("off", None),
        ("batch", Some(SyncPolicy::Batch)),
        ("always", Some(SyncPolicy::Always)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &stream, |b, stream| {
            b.iter(|| {
                // A fresh directory and seeded database per iteration
                // (a WAL cannot be re-created over a live one); the
                // setup cost is identical across the three policies, so
                // cell deltas still isolate the logging overhead.
                let dir = scratch(&format!("ingest-{label}"));
                let mut db = Database::with_config(config_for(&dir, wal)).expect("config");
                db.execute_sql(&setup).expect("setup");
                ingest(&mut db, stream);
                db
            });
        });
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let (setup, stream) = workload();

    // Replay input: a crash mid-flight — full log, no snapshot.
    let replay_dir = scratch("replay");
    let replay_cfg = config_for(&replay_dir, Some(SyncPolicy::Batch));
    {
        let mut db = Database::with_config(replay_cfg.clone()).expect("config");
        db.execute_sql(&setup).expect("setup");
        ingest(&mut db, &stream);
    }

    // Checkpoint input: same state, but snapshotted with a rotated log.
    let ckpt_dir = scratch("ckpt");
    let ckpt_snap = ckpt_dir.join("db.indb");
    let ckpt_cfg = config_for(&ckpt_dir, Some(SyncPolicy::Batch));
    {
        let mut db = Database::with_config(ckpt_cfg.clone()).expect("config");
        db.execute_sql(&setup).expect("setup");
        ingest(&mut db, &stream);
        db.checkpoint(&ckpt_snap).expect("checkpoint");
    }

    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);
    group.bench_function("replay", |b| {
        b.iter(|| {
            let (db, report) = Database::recover(None, replay_cfg.clone()).expect("recover");
            assert!(report.records_replayed > 0);
            db
        });
    });
    group.bench_function("checkpoint", |b| {
        b.iter(|| {
            let (db, report) =
                Database::recover(Some(&ckpt_snap), ckpt_cfg.clone()).expect("recover");
            assert_eq!(report.records_replayed, 0);
            db
        });
    });
    group.finish();
}

criterion_group!(benches, bench_wal_ingest, bench_recovery);
criterion_main!(benches);
