//! E2: summary-aware propagation vs the raw-propagation baseline on
//! identical SPJ plans, across annotation ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_bench::annotated_db;

const QUERY: &str = "SELECT a.id, a.name, b.name FROM birds a, birds b \
                     WHERE a.region = b.region AND a.weight > 6";

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_propagation");
    group.sample_size(10);
    for ratio in [30u64, 120, 250] {
        let db = annotated_db(40, ratio as f64);
        group.bench_with_input(BenchmarkId::new("summary", ratio), &ratio, |b, _| {
            b.iter(|| db.query_uncached(QUERY).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("raw", ratio), &ratio, |b, _| {
            b.iter(|| db.query_raw(QUERY).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
