//! E7: summary-based predicates (filter on summary content in-pipeline)
//! vs post-filtering raw annotations with query-time classification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_bench::{annotated_db, SEED};
use insightnotes_text::NaiveBayes;
use insightnotes_workload::{BirdGen, ANNOTATION_CLASSES};

fn bench_predicates(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_summary_predicates");
    group.sample_size(10);
    for ratio in [30u64, 120] {
        let db = annotated_db(40, ratio as f64);
        group.bench_with_input(BenchmarkId::new("summary_pred", ratio), &ratio, |b, _| {
            b.iter(|| {
                db.query_uncached(
                    "SELECT id, name, weight, region FROM birds \
                     WHERE SUMMARY_COUNT(ClassBird1, 'Disease') > 3",
                )
                .unwrap()
            });
        });
        // The raw baseline must classify every annotation at query time.
        let mut gen = BirdGen::new(SEED);
        let mut model = NaiveBayes::new(
            ANNOTATION_CLASSES
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        );
        for (class, text) in gen.training_corpus(12) {
            model.train(class, &text);
        }
        let disease = model.label_index("Disease").unwrap();
        group.bench_with_input(BenchmarkId::new("raw_filter", ratio), &ratio, |b, _| {
            b.iter(|| {
                db.query_raw("SELECT id, name, weight, region FROM birds")
                    .unwrap()
                    .into_iter()
                    .filter(|r| {
                        r.anns
                            .iter()
                            .filter(|a| model.classify(&a.text) == disease)
                            .count()
                            > 3
                    })
                    .count()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predicates);
criterion_main!(benches);
