//! Wire-protocol overhead and concurrent-connection throughput against
//! an in-process `insightd` (experiment A4, EXPERIMENTS.md).
//!
//! Two questions: (1) what does a network round-trip add on top of the
//! embedded call for the paper's interactive operations (ping floor,
//! point SELECT, ADD ANNOTATION), and (2) how does a fixed mixed
//! read/write batch scale when split across 1/2/4/8 concurrent client
//! connections contending on the server's reader/writer lock. Streams
//! come from `workload::session_script`, so the mix matches the
//! concurrency integration test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_bench::annotated_db;
use insightnotes_client::Client;
use insightnotes_server::{Server, ServerConfig, ServerHandle};
use insightnotes_workload::{session_script, SessionConfig};
use std::net::SocketAddr;
use std::thread::JoinHandle;

const BIRDS: usize = 2_000;
const RATIO: f64 = 2.0;
/// Total statements per throughput iteration, split across connections.
const BATCH: usize = 64;

struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<JoinHandle<()>>,
}

fn start_server() -> RunningServer {
    let db = annotated_db(BIRDS, RATIO);
    let server =
        Server::bind("127.0.0.1:0", db, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    RunningServer {
        addr,
        handle,
        thread: Some(thread),
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread");
        }
    }
}

/// Round-trip latency floor and per-operation wire costs on a single
/// connection, next to the embedded (in-process, no socket) equivalents.
fn bench_round_trips(c: &mut Criterion) {
    let server = start_server();
    let mut group = c.benchmark_group("net_rtt");
    group.sample_size(20);

    let mut client = Client::connect(server.addr).expect("connect");
    group.bench_function("ping", |b| {
        b.iter(|| client.ping().unwrap());
    });
    group.bench_function("point_select", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let id = (i % BIRDS as u64) + 1;
            client
                .query(&format!("SELECT name, weight FROM birds WHERE id = {id}"))
                .unwrap()
        });
    });
    group.bench_function("add_annotation", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let id = (i % BIRDS as u64) + 1;
            client
                .annotate(&format!(
                    "ADD ANNOTATION 'wire bench observation {i}' AUTHOR 'bench' \
                     ON birds WHERE id = {id}"
                ))
                .unwrap()
        });
    });

    // Embedded baseline for the same point SELECT: engine cost with no
    // socket, framing, or lock-acquisition-over-RwLock in the path.
    let db = annotated_db(BIRDS, RATIO);
    group.bench_function("point_select_embedded", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let id = (i % BIRDS as u64) + 1;
            db.query_uncached(&format!("SELECT name, weight FROM birds WHERE id = {id}"))
                .unwrap()
        });
    });
    group.finish();
}

/// A fixed 64-statement mixed batch (≈30% annotation writes) pushed
/// through 1, 2, 4, or 8 concurrent connections. Per-iteration time is
/// the wall clock for the whole batch; fewer connections mean longer
/// per-connection request chains.
fn bench_concurrent_connections(c: &mut Criterion) {
    let server = start_server();
    let mut group = c.benchmark_group("net_throughput");
    group.sample_size(10);

    for clients in [1usize, 2, 4, 8] {
        // Deterministic streams; setup is skipped (the server database
        // is already seeded by `annotated_db`).
        let script = session_script(&SessionConfig {
            seed: 0xA4,
            clients,
            statements_per_client: BATCH / clients,
            num_birds: BIRDS,
            write_ratio: 0.3,
        });
        let streams = script.clients;
        group.bench_with_input(
            BenchmarkId::new("mixed_batch_64", clients),
            &streams,
            |b, streams| {
                b.iter(|| {
                    std::thread::scope(|scope| {
                        for stream in streams {
                            scope.spawn(move || {
                                let mut client = Client::connect(server.addr).expect("connect");
                                for sql in stream {
                                    client.send_sql(sql).expect("request");
                                }
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_round_trips, bench_concurrent_connections);
criterion_main!(benches);
