//! E1: incremental summary maintenance vs recompute-from-scratch.
//!
//! Measures the cost of absorbing one new annotation into a tuple that
//! already carries N annotations, under both maintenance strategies. The
//! paper's claim: incremental is O(1) in N, rebuild is O(N).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_annotations::{AnnotationBody, ColSig};
use insightnotes_bench::{annotate_one_row, annotated_db, SEED};
use insightnotes_common::RowId;
use insightnotes_summaries::MaintenanceMode;

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_maintenance");
    for existing in [100usize, 400, 1600] {
        for (mode, name) in [
            (MaintenanceMode::Incremental, "incremental"),
            (MaintenanceMode::Rebuild, "rebuild"),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, existing),
                &existing,
                |b, &existing| {
                    let mut db = annotated_db(5, 1.0);
                    annotate_one_row(&mut db, 1, existing, SEED);
                    db.set_maintenance_mode(mode);
                    b.iter(|| {
                        db.annotate_rows(
                            "birds",
                            &[RowId::new(1)],
                            ColSig::whole_row(6),
                            AnnotationBody::text("eating stonewort by the shore", "bench"),
                        )
                        .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_maintenance
}
criterion_main!(benches);
