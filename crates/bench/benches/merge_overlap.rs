//! E3: summary-object merge cost vs the fraction of annotations shared
//! between the two sides (join double-count avoidance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_annotations::ColSig;
use insightnotes_summaries::{object::ClassifierObject, Contribution, SummaryObject};
use std::sync::Arc;

fn classifier_pair(n: usize, overlap: f64) -> (SummaryObject, SummaryObject) {
    let labels: Arc<[String]> = vec!["A".to_string(), "B".to_string()].into();
    let shared = (n as f64 * overlap) as u64;
    let mut left = SummaryObject::Classifier(ClassifierObject::new(labels.clone()));
    let mut right = SummaryObject::Classifier(ClassifierObject::new(labels));
    for id in 0..n as u64 {
        left.apply(
            id,
            ColSig::whole_row(4),
            &Contribution::Label((id % 2) as usize),
        )
        .unwrap();
    }
    // The right side shares the first `shared` ids.
    for id in 0..n as u64 {
        let rid = if id < shared { id } else { id + n as u64 };
        right
            .apply(
                rid,
                ColSig::whole_row(4),
                &Contribution::Label((rid % 2) as usize),
            )
            .unwrap();
    }
    (left, right)
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_merge_overlap");
    for overlap in [0u64, 50, 100] {
        let (left, right) = classifier_pair(5000, overlap as f64 / 100.0);
        group.bench_with_input(
            BenchmarkId::new("classifier_merge", overlap),
            &overlap,
            |b, _| {
                b.iter(|| {
                    let mut l = left.clone();
                    l.merge(&right).unwrap();
                    l
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
