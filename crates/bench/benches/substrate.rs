//! Microbenchmarks of the substrates the system is built on: id-set
//! algebra, the text-mining primitives, and the binary codec. These guard
//! the constants every experiment above depends on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_common::codec::Encodable;
use insightnotes_common::IdSet;
use insightnotes_text::{tokenize, NaiveBayes, SparseVector};

fn bench_idset(c: &mut Criterion) {
    let mut group = c.benchmark_group("idset");
    for n in [1000usize, 10_000] {
        let a: IdSet = (0..n as u64).collect();
        let b: IdSet = ((n / 2) as u64..(n + n / 2) as u64).collect();
        group.bench_with_input(BenchmarkId::new("union_half_overlap", n), &n, |bch, _| {
            bch.iter(|| a.union(&b));
        });
        group.bench_with_input(BenchmarkId::new("subtract", n), &n, |bch, _| {
            bch.iter(|| {
                let mut x = a.clone();
                x.subtract(&b);
                x
            });
        });
        group.bench_with_input(BenchmarkId::new("codec_roundtrip", n), &n, |bch, _| {
            bch.iter(|| IdSet::from_bytes(&a.to_bytes()).unwrap());
        });
    }
    group.finish();
}

fn bench_text(c: &mut Criterion) {
    let mut group = c.benchmark_group("text");
    let sentence = "found eating stonewort near the shore during early morning survey";
    group.bench_function("tokenize", |b| b.iter(|| tokenize(sentence)));

    let mut nb = NaiveBayes::new(vec!["a".into(), "b".into(), "c".into(), "d".into()]);
    for i in 0..40 {
        nb.train(i % 4, sentence);
    }
    group.bench_function("nb_classify", |b| b.iter(|| nb.classify(sentence)));

    let v1 = SparseVector::from_term_ids(&(0..16).collect::<Vec<_>>());
    let v2 = SparseVector::from_term_ids(&(8..24).collect::<Vec<_>>());
    group.bench_function("cosine_16_terms", |b| b.iter(|| v1.cosine(&v2)));
    group.finish();
}

criterion_group!(benches, bench_idset, bench_text);
criterion_main!(benches);
