//! Morsel-driven executor scaling: the same scan → filter → aggregate
//! and self-join pipelines at 1/2/4/8 worker threads against the serial
//! baseline. Results are recorded in `EXPERIMENTS.md` — on a
//! single-core host the parallel curves measure scheduling overhead,
//! not speedup; re-run on a multi-core machine for the scaling numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_bench::annotated_db_parallel;

const BIRDS: usize = 50_000;
const RATIO: f64 = 0.2;

const SCAN_AGG: &str = "SELECT region, COUNT(*) AS n, AVG(weight) AS w \
     FROM birds WHERE weight > 1 GROUP BY region ORDER BY region";
const SELF_JOIN: &str = "SELECT a.id, a.name, b.region FROM birds a JOIN birds b ON a.id = b.id \
     WHERE a.weight > 2";
const DISTINCT_SORT: &str = "SELECT DISTINCT region, name FROM birds ORDER BY region, name";

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_parallel");
    group.sample_size(10);
    for (label, sql) in [
        ("scan_agg", SCAN_AGG),
        ("self_join", SELF_JOIN),
        ("distinct_sort", DISTINCT_SORT),
    ] {
        // Serial baseline: no worker pool at all (parallelism = None).
        group.bench_with_input(BenchmarkId::new(label, "serial"), sql, |b, sql| {
            let db = annotated_db_parallel(BIRDS, RATIO, None);
            b.iter(|| db.query_uncached(sql).unwrap());
        });
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(label, threads),
                &(sql, threads),
                |b, &(sql, threads)| {
                    let db = annotated_db_parallel(BIRDS, RATIO, Some(threads));
                    b.iter(|| db.query_uncached(sql).unwrap());
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
