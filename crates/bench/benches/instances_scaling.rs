//! F4: maintenance and query cost vs the number of linked summary
//! instances (the extensibility axis of Figure 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_annotations::{AnnotationBody, ColSig};
use insightnotes_bench::annotated_db;
use insightnotes_common::RowId;
use insightnotes_engine::Database;

fn with_extra_instances(extra: usize) -> Database {
    let mut db = annotated_db(30, 5.0);
    for i in 0..extra {
        db.execute_sql(&format!(
            "CREATE SUMMARY INSTANCE Extra{i} TYPE CLASSIFIER
               LABELS ('Behavior', 'Other')
               TRAIN ('Behavior': 'eating diving foraging', 'Other': 'reference photo');
             LINK SUMMARY Extra{i} TO birds"
        ))
        .unwrap();
    }
    db
}

fn bench_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("f4_instances");
    group.sample_size(20);
    for extra in [0usize, 4, 12] {
        let total = extra + 3;
        group.bench_with_input(BenchmarkId::new("annotate", total), &extra, |b, &extra| {
            let mut db = with_extra_instances(extra);
            b.iter(|| {
                db.annotate_rows(
                    "birds",
                    &[RowId::new(1)],
                    ColSig::whole_row(6),
                    AnnotationBody::text("eating stonewort near shore", "bench"),
                )
                .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("query", total), &extra, |b, &extra| {
            let db = with_extra_instances(extra);
            b.iter(|| {
                db.query_uncached("SELECT id, name, weight, region FROM birds WHERE weight > 2")
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_instances);
criterion_main!(benches);
