//! E5: the summarize-once (invariant-property) optimization for
//! annotations that attach to many tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_annotations::{AnnotationBody, ColSig};
use insightnotes_bench::annotated_db;
use insightnotes_common::RowId;

fn bench_invariant(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_invariant_opt");
    group.sample_size(20);
    for fanout in [1usize, 8, 32] {
        for (cached, name) in [(true, "summarize_once"), (false, "per_tuple")] {
            group.bench_with_input(BenchmarkId::new(name, fanout), &fanout, |b, &fanout| {
                let mut db = annotated_db(32, 1.0);
                db.registry_mut().use_digest_cache = cached;
                let rows: Vec<RowId> = (1..=fanout as u64).map(RowId::new).collect();
                b.iter(|| {
                    db.annotate_rows(
                        "birds",
                        &rows,
                        ColSig::whole_row(6),
                        AnnotationBody::text("lesions observed on wing near shore", "bench"),
                    )
                    .unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_invariant);
criterion_main!(benches);
