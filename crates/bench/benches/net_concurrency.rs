//! Event-loop concurrency and request pipelining against an in-process
//! `insightd` (experiment A9, EXPERIMENTS.md).
//!
//! Two questions: (1) how much does keeping a window of requests in
//! flight on one connection (wire protocol v2) buy over strict
//! request/response alternation — pipelined writes additionally share
//! group commits with the whole window; and (2) what a burst of
//! simultaneously loaded connections costs end to end on the epoll
//! reactor, where connections are event-loop entries rather than
//! threads. The full 1k/10k-connection grid (with memory accounting)
//! lives in the `report` binary's A9 section; these cells are sized for
//! repeated criterion sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_bench::annotated_db;
use insightnotes_client::PipelinedClient;
use insightnotes_common::wire::{Request, Response};
use insightnotes_server::{Server, ServerConfig, ServerHandle};
use std::net::SocketAddr;
use std::thread::JoinHandle;

const BIRDS: usize = 2_000;
const RATIO: f64 = 2.0;
/// Requests pushed through one connection per pipelining iteration.
const REQUESTS: usize = 64;

struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<JoinHandle<()>>,
}

fn start_server() -> RunningServer {
    let db = annotated_db(BIRDS, RATIO);
    let server =
        Server::bind("127.0.0.1:0", db, ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    RunningServer {
        addr,
        handle,
        thread: Some(thread),
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread");
        }
    }
}

/// Drives `total` copies of `req` through one pipelined connection with
/// at most `depth` in flight, on a windowed schedule: submit a full
/// window as one corked burst, then drain it (so the server sees the
/// window together and can group-commit it in one fsync). Panics on any
/// error response (bench requests are all well-formed).
fn drive_window(
    client: &mut PipelinedClient,
    req_for: impl Fn(u64) -> Request,
    depth: usize,
    total: usize,
) {
    for i in 0..total {
        if client.in_flight() >= depth {
            while client.in_flight() > 0 {
                let (_, resp) = client.recv_any().expect("response");
                assert!(!matches!(resp, Response::Error(_)), "request failed");
            }
        }
        client.submit(&req_for(i as u64)).expect("submit");
    }
    for (_, resp) in client.drain().expect("drain") {
        assert!(!matches!(resp, Response::Error(_)), "request failed");
    }
}

/// One connection, 64 single-row annotation writes, pipeline depth 1
/// vs 16 vs 64. Depth 1 is the serial-protocol baseline: every write
/// pays a full round-trip *and* its own group commit; deeper windows
/// amortize both.
fn bench_pipeline_depth(c: &mut Criterion) {
    let server = start_server();
    let mut group = c.benchmark_group("pipeline_depth");
    group.sample_size(10);

    for depth in [1usize, 16, 64] {
        let mut client = PipelinedClient::connect(server.addr).expect("connect");
        let mut round = 0u64;
        group.bench_with_input(
            BenchmarkId::new("annotate_64", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    round += 1;
                    drive_window(
                        &mut client,
                        |i| Request::Annotate {
                            sql: format!(
                                "ADD ANNOTATION 'depth bench r{round} i{i}' AUTHOR 'bench' \
                                 ON birds WHERE id = {}",
                                (round * REQUESTS as u64 + i) % BIRDS as u64 + 1
                            ),
                        },
                        depth,
                        REQUESTS,
                    );
                });
            },
        );
    }
    group.finish();
}

/// A fleet of simultaneously open pipelined connections, each holding a
/// 16-deep window of pings: the cost of fanning readiness across many
/// event-loop entries. All connections are opened before the timed
/// region; the iteration loads every window, then drains every
/// connection.
fn bench_connection_fanout(c: &mut Criterion) {
    let server = start_server();
    let mut group = c.benchmark_group("conn_fanout");
    group.sample_size(10);

    for conns in [64usize, 256] {
        let mut fleet: Vec<PipelinedClient> = (0..conns)
            .map(|_| PipelinedClient::connect(server.addr).expect("connect"))
            .collect();
        group.bench_with_input(BenchmarkId::new("ping_depth16", conns), &conns, |b, _| {
            b.iter(|| {
                for client in &mut fleet {
                    for _ in 0..16 {
                        client.submit(&Request::Ping).expect("submit");
                    }
                }
                // Corked submits: every window must hit the wire
                // before any connection is drained.
                for client in &mut fleet {
                    client.flush().expect("flush");
                }
                for client in &mut fleet {
                    for (_, resp) in client.drain().expect("drain") {
                        assert!(matches!(resp, Response::Pong { .. }), "expected pong");
                    }
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_depth, bench_connection_fanout);
criterion_main!(benches);
