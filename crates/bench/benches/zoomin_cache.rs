//! E4: zoom-in latency — cache hit vs plan re-execution, and the raw
//! cache put/get machinery under the three replacement policies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_bench::annotated_db;
use insightnotes_common::Qid;
use insightnotes_engine::cache::{DiskCache, Lfu, Lru, Rco, ReplacementPolicy};

fn bench_zoomin_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_zoomin");
    group.sample_size(20);
    let mut db = annotated_db(100, 40.0);
    let result = db.query("SELECT id, name, weight FROM birds").unwrap();
    let qid = result.qid.raw();
    let zoom = format!("ZOOMIN REFERENCE QID {qid} ON ClassBird1 LABEL 'Disease'");

    group.bench_function("cache_hit", |b| {
        b.iter(|| db.execute_sql(&zoom).unwrap());
    });
    group.bench_function("cache_miss_reexecute", |b| {
        b.iter(|| {
            db.zoom_cache_evict(Qid::new(qid));
            db.execute_sql(&zoom).unwrap()
        });
    });
    group.finish();
}

/// Constructor of a boxed policy, for the parameterized sweep.
type PolicyCtor = fn() -> Box<dyn ReplacementPolicy>;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_policy_overhead");
    let policies: Vec<(&str, PolicyCtor)> = vec![
        ("rco", || Box::new(Rco::default())),
        ("lru", || Box::new(Lru)),
        ("lfu", || Box::new(Lfu)),
    ];
    for (name, make) in policies {
        group.bench_with_input(BenchmarkId::new("churn", name), name, |b, _| {
            let dir = std::env::temp_dir().join(format!(
                "insightnotes-bench-cache-{}-{name}",
                std::process::id()
            ));
            let mut cache = DiskCache::new(dir, 64 << 10, make()).unwrap();
            let payload = vec![7u8; 4096];
            let mut q = 0u64;
            b.iter(|| {
                q += 1;
                cache.put(Qid::new(q), &payload, (q % 13) as f64).unwrap();
                cache.get(Qid::new(q.saturating_sub(q % 5))).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_zoomin_paths, bench_policies);
criterion_main!(benches);
