//! Group-commit ingest throughput through the server path (experiment
//! A5, EXPERIMENTS.md).
//!
//! A fixed budget of `ADD ANNOTATION` statements is pushed through
//! `insightd` by 1/8/32 concurrent writer connections, at client batch
//! sizes 1 (one `Annotate` frame per statement), 16, and 256 (one
//! `AnnotateBatch` frame per chunk), while a background analyst load
//! ([`ReaderLoad`]: 8 connections looping a full-table scan with 1 ms
//! think time) keeps the server's shared read lock busy. Batch size 1
//! pays a round-trip, a commit-queue hand-off, and — dominating under
//! reader load — a write-lock acquisition that waits out in-flight
//! scans **per annotation**; larger batches amortize all three across
//! the group, plus the per-row summary-maintenance pass. The sweep runs
//! per engine layout, `shards` ∈ {1, 4}: 1 is the legacy single-lock
//! engine, 4 hash-partitions rows over four locks fed by one committer
//! each, so concurrent writers only serialize when they hit the same
//! shard. Streams come from `workload::ingest_script`, the pure-write
//! counterpart of the A4 mixed session streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use insightnotes_bench::{
    drive_ingest_writer, ReaderLoad, INGEST_READERS, INGEST_READER_SCAN, INGEST_READER_THINK,
};
use insightnotes_client::Client;
use insightnotes_engine::{Database, DbConfig, ShardedDatabase, SyncPolicy};
use insightnotes_server::{Server, ServerConfig, ServerHandle};
use insightnotes_workload::{ingest_script, IngestConfig};
use std::net::SocketAddr;
use std::thread::JoinHandle;

const BIRDS: usize = 500;
/// Total annotations per throughput iteration, split across writers.
const TOTAL: usize = 512;

struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<JoinHandle<()>>,
}

/// Boots a fresh server and replays the ingest setup phase (DDL, index,
/// summary instances, links, row inserts) over one connection, so every
/// annotation statement in the sweep finds its target row and linked
/// summary instances.
fn start_server(shards: usize) -> RunningServer {
    let db =
        ShardedDatabase::create(DbConfig::default(), shards).expect("sharded in-memory engine");
    start_server_on(db)
}

fn start_server_on(db: impl Into<ShardedDatabase>) -> RunningServer {
    let server = Server::bind_sharded("127.0.0.1:0", db.into(), ServerConfig::default())
        .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    let script = ingest_script(&IngestConfig {
        num_birds: BIRDS,
        ..IngestConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect for setup");
    for stmt in &script.setup {
        client.execute(stmt).expect("setup statement");
    }
    RunningServer {
        addr,
        handle,
        thread: Some(thread),
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread");
        }
    }
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_throughput");
    group.sample_size(10);

    for shards in [1usize, 4] {
        let server = start_server(shards);
        for writers in [1usize, 8, 32] {
            let script = ingest_script(&IngestConfig {
                writers,
                annotations_per_writer: TOTAL / writers,
                num_birds: BIRDS,
                ..IngestConfig::default()
            });
            let streams = script.clients;
            // Persistent connections, one per writer, reused across
            // iterations: timed regions measure ingest, not accept
            // latency.
            let mut conns: Vec<Client> = (0..writers)
                .map(|_| Client::connect(server.addr).expect("connect"))
                .collect();
            // Background analysts contend on the read locks for the
            // whole writer group (dropped, and joined, at scope end).
            let _readers = ReaderLoad::start(
                server.addr,
                INGEST_READERS,
                INGEST_READER_SCAN,
                INGEST_READER_THINK,
            );
            for batch in [1usize, 16, 256] {
                group.bench_with_input(
                    BenchmarkId::new(&format!("shards_{shards}_writers_{writers}"), batch),
                    &streams,
                    |b, streams| {
                        b.iter(|| {
                            std::thread::scope(|scope| {
                                let workers: Vec<_> = conns
                                    .drain(..)
                                    .zip(streams)
                                    .map(|(mut conn, stream)| {
                                        scope.spawn(move || {
                                            drive_ingest_writer(&mut conn, stream, batch);
                                            conn
                                        })
                                    })
                                    .collect();
                                conns
                                    .extend(workers.into_iter().map(|w| w.join().expect("writer")));
                            });
                        });
                    },
                );
            }
        }
    }
    group.finish();
}

/// The same writer sweep with the server's write-ahead log on: every
/// group commit appends one log record and fsyncs before acks release.
/// Compared against the `off` cell (identical conditions, WAL disabled)
/// this isolates the durability overhead on the server path; the A6
/// report covers the engine-level breakdown.
fn bench_ingest_wal(c: &mut Criterion) {
    const WRITERS: usize = 8;
    let script = ingest_script(&IngestConfig {
        writers: WRITERS,
        annotations_per_writer: TOTAL / WRITERS,
        num_birds: BIRDS,
        ..IngestConfig::default()
    });
    let streams = &script.clients;

    let mut group = c.benchmark_group("ingest_wal");
    group.sample_size(10);
    for (label, wal) in [("off", None), ("batch", Some(SyncPolicy::Batch))] {
        let db = match wal {
            None => Database::new(),
            Some(policy) => {
                let dir = std::env::temp_dir().join(format!(
                    "insightnotes-ingestwal-{}-{label}",
                    std::process::id()
                ));
                let _ = std::fs::remove_dir_all(&dir);
                std::fs::create_dir_all(&dir).expect("wal dir");
                Database::with_config(DbConfig {
                    wal_dir: Some(dir),
                    wal_sync: policy,
                    ..DbConfig::default()
                })
                .expect("config")
            }
        };
        let server = start_server_on(db);
        let mut conns: Vec<Client> = (0..WRITERS)
            .map(|_| Client::connect(server.addr).expect("connect"))
            .collect();
        let _readers = ReaderLoad::start(
            server.addr,
            INGEST_READERS,
            INGEST_READER_SCAN,
            INGEST_READER_THINK,
        );
        for batch in [1usize, 256] {
            group.bench_with_input(
                BenchmarkId::new(&format!("wal_{label}"), batch),
                streams,
                |b, streams| {
                    b.iter(|| {
                        std::thread::scope(|scope| {
                            let workers: Vec<_> = conns
                                .drain(..)
                                .zip(streams)
                                .map(|(mut conn, stream)| {
                                    scope.spawn(move || {
                                        drive_ingest_writer(&mut conn, stream, batch);
                                        conn
                                    })
                                })
                                .collect();
                            conns.extend(workers.into_iter().map(|w| w.join().expect("writer")));
                        });
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_ingest_wal);
criterion_main!(benches);
